"""FaultInjector: validation at attach, injection/recovery mid-run, and
each fault class's observable contract in the metrics store."""

from __future__ import annotations

import pytest

from repro.errors import FaultError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.heron.metrics import MetricNames
from repro.heron.simulation import HeronSimulation, SimulationConfig
from repro.heron.wordcount import WordCountParams, build_word_count
from repro.timeseries.store import MetricsStore

M = 1e6


def _sim(plan=None, seed=0):
    params = WordCountParams(splitter_parallelism=2, counter_parallelism=4)
    topology, packing, logic = build_word_count(params)
    store = MetricsStore()
    sim = HeronSimulation(
        topology, packing, logic, store, SimulationConfig(seed=seed),
        faults=plan,
    )
    sim.set_source_rate("sentence-spout", 16 * M)
    return sim, store


class TestAttachValidation:
    def _attach(self, event):
        sim, _ = _sim()
        FaultInjector(FaultPlan(events=(event,))).attach(sim)

    def test_unknown_component(self):
        with pytest.raises(FaultError, match="unknown component"):
            self._attach(FaultEvent(at_seconds=0, kind="crash",
                                    component="parser", index=0,
                                    duration_seconds=60))

    def test_index_out_of_range(self):
        with pytest.raises(FaultError, match="no instance index"):
            self._attach(FaultEvent(at_seconds=0, kind="crash",
                                    component="splitter", index=9,
                                    duration_seconds=60))

    def test_straggler_on_spout(self):
        with pytest.raises(FaultError, match="spout"):
            self._attach(FaultEvent(at_seconds=0, kind="straggler",
                                    component="sentence-spout", index=0,
                                    duration_seconds=60, factor=0.5))

    def test_unknown_container(self):
        with pytest.raises(FaultError, match="unknown container"):
            self._attach(FaultEvent(at_seconds=0, kind="stmgr_stall",
                                    container=99, duration_seconds=60))


class TestInjectionLifecycle:
    def test_log_and_recovery_times(self):
        plan = FaultPlan(events=(
            FaultEvent(at_seconds=120, kind="crash", component="splitter",
                       index=0, duration_seconds=60),
        ))
        sim, _ = _sim(plan)
        sim.run(5)
        entries = [(t, action) for t, action, _ in sim.fault_log]
        assert (120.0, "inject") in entries
        assert (180.0, "recover") in entries
        assert not sim.instance_down("splitter", 0)

    def test_permanent_crash_never_recovers(self):
        plan = FaultPlan(events=(
            FaultEvent(at_seconds=120, kind="crash", component="splitter",
                       index=1),
        ))
        sim, _ = _sim(plan)
        sim.run(5)
        assert sim.instance_down("splitter", 1)
        assert [a for _, a, _ in sim.fault_log] == ["inject"]

    def test_crash_blacks_out_instance_minutes(self):
        plan = FaultPlan(events=(
            FaultEvent(at_seconds=120, kind="crash", component="splitter",
                       index=0, duration_seconds=120),
        ))
        sim, store = _sim(plan)
        sim.run(6)
        down = store.aggregate(
            MetricNames.EXECUTE_COUNT,
            {"component": "splitter", "instance": "splitter_0"},
        )
        up = store.aggregate(
            MetricNames.EXECUTE_COUNT,
            {"component": "splitter", "instance": "splitter_1"},
        )
        missing = set(up.timestamps.tolist()) - set(down.timestamps.tolist())
        assert missing == {120, 180}

    def test_crash_spikes_backpressure(self):
        plan = FaultPlan(events=(
            FaultEvent(at_seconds=120, kind="crash", component="splitter",
                       index=0, duration_seconds=120),
        ))
        sim, store = _sim(plan)
        sim.run(6)
        bp = store.get(
            MetricNames.TOPOLOGY_BACKPRESSURE_TIME_MS,
            {"topology": "word-count"},
        )
        by_minute = dict(zip(bp.timestamps.tolist(), bp.values.tolist()))
        assert by_minute[60] == 0.0  # healthy before the crash
        assert max(by_minute[120], by_minute[180]) > 10_000

    def test_straggler_dips_throughput(self):
        plan = FaultPlan(events=(
            FaultEvent(at_seconds=120, kind="straggler",
                       component="splitter", index=0,
                       duration_seconds=120, factor=0.2),
        ))
        sim, store = _sim(plan)
        sim.run(6)
        series = store.aggregate(
            MetricNames.EXECUTE_COUNT,
            {"component": "splitter", "instance": "splitter_0"},
        )
        by_minute = dict(zip(series.timestamps.tolist(), series.values.tolist()))
        assert by_minute[120] < 0.5 * by_minute[60]
        assert sim.instance_capacity_factors("splitter")[0] == 1.0

    def test_stall_spikes_backpressure_but_keeps_metrics(self):
        # Container 2 holds splitter_0 in this packing, so stalling its
        # stream manager strands in-flight tuples and spikes backpressure
        # (a spout-only container would just dip throughput).
        plan = FaultPlan(events=(
            FaultEvent(at_seconds=120, kind="stmgr_stall", container=2,
                       duration_seconds=60),
        ))
        sim, store = _sim(plan)
        sim.run(5)
        bp = store.get(
            MetricNames.TOPOLOGY_BACKPRESSURE_TIME_MS,
            {"topology": "word-count"},
        )
        by_minute = dict(zip(bp.timestamps.tolist(), bp.values.tolist()))
        assert by_minute[60] == 0.0
        assert by_minute[120] > 10_000
        # The stalled container's instances still report their minutes.
        for instance in sim.packing.container(2).instances:
            series = store.aggregate(
                MetricNames.EXECUTE_COUNT,
                {"instance": instance.instance_id},
            )
            assert 120 in series.timestamps.tolist()

    def test_component_dropout_hides_all_instances(self):
        plan = FaultPlan(events=(
            FaultEvent(at_seconds=120, kind="metric_dropout",
                       component="counter", duration_seconds=120),
        ))
        sim, store = _sim(plan)
        sim.run(6)
        for index in range(4):
            series = store.aggregate(
                MetricNames.EXECUTE_COUNT,
                {"component": "counter", "instance": f"counter_{index}"},
            )
            stamps = set(series.timestamps.tolist())
            assert {120, 180}.isdisjoint(stamps)
            assert {0, 60, 240, 300}.issubset(stamps)

    def test_topology_dropout_hides_everything(self):
        plan = FaultPlan(events=(
            FaultEvent(at_seconds=120, kind="metric_dropout",
                       duration_seconds=60),
        ))
        sim, store = _sim(plan)
        sim.run(4)
        bp = store.get(
            MetricNames.TOPOLOGY_BACKPRESSURE_TIME_MS,
            {"topology": "word-count"},
        )
        assert 120 not in bp.timestamps.tolist()

    def test_expired_window_skipped_entirely(self):
        # A window that closed before the run reached it is a no-op.
        plan = FaultPlan(events=(
            FaultEvent(at_seconds=0.2, kind="crash", component="splitter",
                       index=0, duration_seconds=0.3),
        ))
        sim, _ = _sim(plan)
        sim.run(1)
        injector = sim._injector
        assert injector.exhausted()

    def test_throughput_recovers_after_crash(self):
        plan = FaultPlan(events=(
            FaultEvent(at_seconds=120, kind="crash", component="splitter",
                       index=0, duration_seconds=60),
        ))
        sim, store = _sim(plan)
        sim.run(7)
        sink = store.aggregate(
            MetricNames.EXECUTE_COUNT, {"component": "counter"}
        )
        by_minute = dict(zip(sink.timestamps.tolist(), sink.values.tolist()))
        healthy = by_minute[60]
        assert by_minute[120] < 0.8 * healthy      # the dip
        assert by_minute[360] > 0.9 * healthy      # full recovery

    def test_plans_without_injector_unchanged(self):
        sim, store = _sim(plan=None)
        sim.run(2)
        assert sim.fault_log == []
