"""The Caladrius serving layer: reuse results, absorb load.

The paper frames Caladrius as a shared *service* whose modelling calls
"may incur a wait" (Section III-A).  Serving real traffic therefore
needs more than routing: identical what-if queries must be answered
from a cache, concurrent identical queries must trigger one computation,
and overload must shed work gracefully instead of queueing unboundedly.

This package sits between :class:`~repro.api.app.CaladriusApp` routing
and the model registry:

``fingerprint``
    Content-addressed cache keys: a digest of topology name, tracked
    plan revision, metrics-window digest, model name and request
    parameters.  Any input change changes the key, so stale entries can
    never be served.
``cache``
    :class:`ResultCache` — thread-safe LRU bounded by bytes, with TTL
    expiry and per-topology invalidation.
``singleflight``
    :class:`SingleFlight` — N concurrent identical requests run one
    computation; the other N-1 wait and share the result.
``scheduler``
    :class:`PriorityScheduler` — bounded admission queue with
    interactive/precompute priority classes; sheds with a structured
    429 + ``Retry-After`` when full.
``precompute``
    :class:`WarmCachePrecomputer` — tracks popular queries and re-runs
    them when their inputs are invalidated, keeping interactive latency
    flat under churn.
``layer``
    :class:`ServingLayer` — the facade the API tier calls.
"""

from repro.serving.cache import ResultCache
from repro.serving.fingerprint import RequestDescriptor, canonical_json, fingerprint
from repro.serving.layer import ServingLayer
from repro.serving.precompute import WarmCachePrecomputer
from repro.serving.scheduler import (
    INTERACTIVE,
    PRECOMPUTE,
    AdmissionError,
    PriorityScheduler,
)
from repro.serving.singleflight import SingleFlight

__all__ = [
    "AdmissionError",
    "INTERACTIVE",
    "PRECOMPUTE",
    "PriorityScheduler",
    "RequestDescriptor",
    "ResultCache",
    "ServingLayer",
    "SingleFlight",
    "WarmCachePrecomputer",
    "canonical_json",
    "fingerprint",
]
