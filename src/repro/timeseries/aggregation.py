"""Rollup and summary helpers shared by the store and the models.

These are the operations Caladrius's metrics interface performs when it
"summarizes performance metrics from a given metrics source" (paper
Section III-C2): bucketed rollups, cross-series reduction, and the summary
statistics the statistic-summary traffic model reports.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import MetricsError
from repro.timeseries.series import TimeSeries, merge_sum

__all__ = [
    "resample_mean",
    "resample_sum",
    "rollup",
    "cross_reduce",
    "summarize",
    "confidence_band",
]


def resample_sum(series: TimeSeries, bucket: int) -> TimeSeries:
    """Sum samples into ``bucket``-second windows."""
    return series.resample(bucket, how="sum")


def resample_mean(series: TimeSeries, bucket: int) -> TimeSeries:
    """Average samples into ``bucket``-second windows."""
    return series.resample(bucket, how="mean")


def rollup(series: Sequence[TimeSeries]) -> TimeSeries:
    """Sum several series over the union of their timestamps.

    This is the component-level rollup of per-instance counters
    (Eq. 6 of the paper: a component's rate is the sum of its instances').
    """
    return merge_sum(list(series))


def cross_reduce(series: Sequence[TimeSeries], how: str = "mean") -> TimeSeries:
    """Reduce several series sample-wise at their common timestamps.

    Unlike :func:`rollup`, this aligns on the *intersection* of timestamps
    and applies a chosen reducer across series — used to average repeated
    experiment runs when building the 90% confidence bands of Figs. 4-12.
    """
    populated = [s for s in series if len(s)]
    if not populated:
        return TimeSeries.empty()
    reducers = {
        "mean": np.nanmean,
        "median": np.nanmedian,
        "min": np.nanmin,
        "max": np.nanmax,
        "sum": np.nansum,
    }
    if how not in reducers:
        raise MetricsError(f"unknown cross reducer {how!r}")
    common = populated[0].timestamps
    for s in populated[1:]:
        common = np.intersect1d(common, s.timestamps)
    if common.size == 0:
        return TimeSeries.empty()
    stacked = np.vstack(
        [s.values[np.searchsorted(s.timestamps, common)] for s in populated]
    )
    reduced = reducers[how](stacked, axis=0)
    return TimeSeries(common, reduced)


def summarize(series: TimeSeries) -> dict[str, float]:
    """Summary statistics of a series.

    Returns the statistics the paper's "Statistic Summary Traffic Model"
    exposes: mean, median, standard deviation, min/max and the 10/25/75/90
    percentiles.
    """
    if not series:
        raise MetricsError("cannot summarize an empty series")
    return {
        "count": float(len(series)),
        "mean": series.mean(),
        "median": series.median(),
        "std": series.std(),
        "min": series.min(),
        "max": series.max(),
        "p10": series.quantile(0.10),
        "p25": series.quantile(0.25),
        "p75": series.quantile(0.75),
        "p90": series.quantile(0.90),
    }


def confidence_band(
    runs: Sequence[TimeSeries],
    level: float = 0.90,
) -> tuple[TimeSeries, TimeSeries, TimeSeries]:
    """Per-timestamp mean and symmetric quantile band over repeated runs.

    The paper repeats each throughput observation 10 times and plots the
    mean with a 90% confidence band (e.g. Fig. 4).  Returns
    ``(mean, lower, upper)`` aligned on the timestamps common to all runs.
    """
    if not 0.0 < level < 1.0:
        raise MetricsError(f"confidence level must be in (0, 1), got {level}")
    populated = [s for s in runs if len(s)]
    if not populated:
        raise MetricsError("confidence_band requires at least one run")
    common = populated[0].timestamps
    for s in populated[1:]:
        common = np.intersect1d(common, s.timestamps)
    if common.size == 0:
        raise MetricsError("runs share no timestamps")
    stacked = np.vstack(
        [s.values[np.searchsorted(s.timestamps, common)] for s in populated]
    )
    alpha = (1.0 - level) / 2.0
    mean = TimeSeries(common, np.nanmean(stacked, axis=0))
    lower = TimeSeries(common, np.nanquantile(stacked, alpha, axis=0))
    upper = TimeSeries(common, np.nanquantile(stacked, 1.0 - alpha, axis=0))
    return mean, lower, upper
