"""The discrete-time (fluid) Heron topology simulator.

This is the substrate that replaces the paper's Aurora/Heron cluster.  Each
tick (default one second) the engine:

1. lets every spout instance fetch from its external source and emit,
   unless topology backpressure is active — in which case spouts are
   suppressed and the external source accumulates a backlog (the paper's
   "data will begin to accumulate in the external system");
2. routes emissions to downstream instances according to each stream's
   grouping shares, optionally through finite-capacity stream managers;
3. lets every bolt instance drain its pending queue at its (noisy)
   processing capacity and emit ``alpha`` tuples per processed tuple on
   each declared output stream;
4. applies Heron's high/low watermark rule per instance: pending bytes
   above the high watermark raise that instance's backpressure flag, which
   stays raised until pending falls below the low watermark; any raised
   flag suppresses every spout (the broadcast to all stream managers);
5. accrues CPU (worker thread proportional to utilisation, gateway thread
   proportional to tuples moved) and hands per-minute metrics to the
   :class:`~repro.heron.metrics.MetricsManager`.

Spout emissions are additionally clipped against downstream queue headroom
within the tick: a real stream manager stops reading from a spout the
moment a queue hits its high watermark, and with one-second ticks an
unclipped burst would overshoot the watermark by an unphysical margin.
The clip models that intra-tick stall, and it is what pins a saturated
queue at the high watermark — reproducing the paper's observation that
backpressure time per minute is "either close to 60 [seconds] or 0".

The simulator is fluid: tuple counts are real numbers (rates), not
individual tuples.  Every quantity the paper's models consume — counters,
saturation behaviour, grouping shares, CPU — is faithfully produced; tuple
contents are not materialised.

Engine internals (the struct-of-arrays core)
--------------------------------------------
State lives in flat numpy arenas indexed by a global instance id — one
arena set for spouts, one for bolts — instead of per-component objects.
Topology routing is compiled once at construction into flat edge tables
(destination-index, share, source-slot gathers), bolts are arena-ordered
by topological *level* so the in-tick delivery of transparent stream
managers becomes one whole-array pass per level, and all per-tick RNG is
pre-drawn in minute-sized batches with a static draw layout.  Every
floating-point operation sequence — including numpy's pairwise summation
trees and the RNG draw order — is arranged to be bit-identical to the
pre-vectorization engine (kept as ``repro.heron.simulation_legacy``);
the golden trace fixtures under ``tests/data`` pin that contract.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.errors import MetricsError, SimulationError
from repro.heron.metrics import MetricNames, MetricsManager
from repro.heron.packing import PackingPlan
from repro.heron.topology import LogicalTopology, Stream
from repro.timeseries.store import MetricKey, MetricsStore

__all__ = [
    "SimulationConfig",
    "ComponentLogic",
    "SpoutLogic",
    "HeronSimulation",
    "warm_shares_memo",
]

_MINUTE = 60.0


@dataclass(frozen=True)
class SimulationConfig:
    """Engine-wide parameters.

    Parameters
    ----------
    tick_seconds:
        Simulation step.  Must divide 60 exactly so per-minute metrics
        close on minute boundaries.
    high_watermark_bytes / low_watermark_bytes:
        Heron's defaults are 100 MB / 50 MB (paper Section IV-B1).
    stmgr_capacity_tps:
        Tuples per second one container's stream manager can route.
        ``None`` (default) makes stream managers transparent, matching
        the paper's assumption that they are never the bottleneck; finite
        values enable the ablation that stresses that assumption.
    seed:
        Seed for all stochastic elements (capacity and rate noise).
    """

    tick_seconds: float = 1.0
    high_watermark_bytes: float = 100e6
    low_watermark_bytes: float = 50e6
    stmgr_capacity_tps: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tick_seconds <= 0:
            raise SimulationError("tick_seconds must be positive")
        ticks_per_minute = _MINUTE / self.tick_seconds
        if abs(ticks_per_minute - round(ticks_per_minute)) > 1e-9:
            raise SimulationError("tick_seconds must divide 60 exactly")
        if self.low_watermark_bytes <= 0:
            raise SimulationError("low watermark must be positive")
        if self.high_watermark_bytes <= self.low_watermark_bytes:
            raise SimulationError("high watermark must exceed low watermark")
        if self.stmgr_capacity_tps is not None and self.stmgr_capacity_tps <= 0:
            raise SimulationError("stmgr capacity must be positive or None")


@dataclass(frozen=True)
class ComponentLogic:
    """Processing behaviour of one bolt's instances.

    Parameters
    ----------
    capacity_tps:
        Maximum tuples one instance processes per second (the user code's
        speed on its allocated core).  This determines the instance's
        saturation point.
    alphas:
        Output-stream name → tuples emitted per tuple processed (the I/O
        coefficient, paper Eq. 1).  Sinks use an empty mapping.
    input_tuple_bytes:
        Mean serialised size of one input tuple; converts queued tuples
        into pending bytes for the watermark rule.
    worker_cores:
        Cores the worker thread consumes at 100% utilisation.
    gateway_cores_per_tuple:
        Core-seconds the gateway thread spends per tuple moved in or out.
        This term makes CPU load linear in traffic, the premise of the
        paper's CPU model (Section V-E).
    capacity_noise:
        Relative standard deviation of per-tick capacity (models the
        gateway/worker contention the paper sees in Fig. 5).
    alpha_noise:
        Relative standard deviation of the per-tick effective I/O
        coefficient — the small sampling fluctuation of e.g. words per
        sentence within one tick's batch (the Fig. 5 wiggle).
    failure_rate:
        Fraction of processed tuples the user logic fails (the paper's
        "Errors" golden signal).  Failed tuples consume processing
        capacity but emit nothing downstream; they are reported on the
        ``fail-count`` metric.
    base_memory_bytes / state_bytes_per_processed / state_memory_cap_bytes:
        Per-instance memory model: resident set = base + pending queue
        bytes + accumulated state, where state grows per processed tuple
        up to a cap (a Counter's state stops growing once every distinct
        key has been seen).  Reported on the ``memory-bytes`` gauge.
    """

    capacity_tps: float
    alphas: Mapping[str, float] = field(default_factory=dict)
    input_tuple_bytes: float = 64.0
    worker_cores: float = 0.85
    gateway_cores_per_tuple: float = 1.8e-7
    capacity_noise: float = 0.02
    alpha_noise: float = 0.0005
    failure_rate: float = 0.0
    base_memory_bytes: float = 256e6
    state_bytes_per_processed: float = 0.0
    state_memory_cap_bytes: float = 512e6

    def __post_init__(self) -> None:
        if self.capacity_tps <= 0:
            raise SimulationError("capacity_tps must be positive")
        if self.input_tuple_bytes <= 0:
            raise SimulationError("input_tuple_bytes must be positive")
        if any(a < 0 for a in self.alphas.values()):
            raise SimulationError("alphas must be non-negative")
        if self.capacity_noise < 0:
            raise SimulationError("capacity_noise must be non-negative")
        if self.alpha_noise < 0:
            raise SimulationError("alpha_noise must be non-negative")
        if not 0.0 <= self.failure_rate < 1.0:
            raise SimulationError("failure_rate must be in [0, 1)")
        if self.base_memory_bytes < 0 or self.state_bytes_per_processed < 0:
            raise SimulationError("memory parameters must be non-negative")
        if self.state_memory_cap_bytes < 0:
            raise SimulationError("state_memory_cap_bytes must be non-negative")


@dataclass(frozen=True)
class SpoutLogic:
    """Behaviour of one spout's instances.

    The evaluation spout (paper Section V-A) is "a special kind of spout
    whose output rate matches the configured throughput if there is no
    backpressure ... and their throughput is reduced if backpressure is
    triggered".  Here the external source produces tuples at the
    configured rate continuously; while spouts are suppressed the unsent
    tuples accumulate as backlog, and on resume the spout catches up at
    ``fetch_multiplier`` times the configured rate.

    ``alphas`` maps output stream names to tuples emitted per fetched
    tuple (1.0 for the pass-through evaluation spout).
    """

    fetch_multiplier: float = 10.0
    alphas: Mapping[str, float] = field(default_factory=lambda: {"default": 1.0})
    worker_cores: float = 0.4
    gateway_cores_per_tuple: float = 1.8e-7
    rate_noise: float = 0.01

    def __post_init__(self) -> None:
        if self.fetch_multiplier < 1.0:
            raise SimulationError("fetch_multiplier must be >= 1")
        if any(a < 0 for a in self.alphas.values()):
            raise SimulationError("alphas must be non-negative")
        if self.rate_noise < 0:
            raise SimulationError("rate_noise must be non-negative")


# ----------------------------------------------------------------------
# Cross-simulation shares memo
# ----------------------------------------------------------------------
# Grouping objects are immutable and shared across the topologies a plan
# sweep derives via ``with_parallelism``, so their per-destination share
# vectors can be computed once per (grouping identity, parallelism) and
# reused by every simulation in the process — the pool workers warm this
# from their pickled-once spec.  Entries hold a strong reference to the
# grouping so a recycled ``id`` can never alias a dead object; the
# identity check guards the pathological case regardless.
_SHARES_MEMO: dict[tuple[int, int], tuple[object, np.ndarray]] = {}
_SHARES_MEMO_CAP = 4096


def _grouping_shares(grouping, dest_parallelism: int) -> np.ndarray:
    key = (id(grouping), dest_parallelism)
    hit = _SHARES_MEMO.get(key)
    if hit is not None and hit[0] is grouping:
        return hit[1]
    shares = grouping.shares(dest_parallelism)
    # The memoized array is shared across every simulation in the
    # process; freeze it so no consumer can mutate routing under
    # another's feet.
    shares.flags.writeable = False
    if len(_SHARES_MEMO) >= _SHARES_MEMO_CAP:
        _SHARES_MEMO.clear()
    _SHARES_MEMO[key] = (grouping, shares)
    return shares


def warm_shares_memo(topology: LogicalTopology) -> int:
    """Precompute every stream's share vector into the process memo.

    Returns the number of streams warmed.  Used by pool workers so each
    per-plan simulation starts with its routing shares already resolved.
    """
    count = 0
    for component in topology.components:
        for stream in topology.outputs(component):
            _grouping_shares(
                stream.grouping, topology.parallelism(stream.destination)
            )
            count += 1
    return count


class _SpoutView:
    """Per-component handle over the spout arenas (one arena slice)."""

    __slots__ = ("name", "logic", "parallelism", "start", "stop", "rate_tps")

    def __init__(self, name: str, parallelism: int, logic: SpoutLogic) -> None:
        self.name = name
        self.logic = logic
        self.parallelism = parallelism
        self.start = 0
        self.stop = 0
        self.rate_tps = 0.0  # configured source rate, per instance


class _BoltView:
    """Per-component handle over the bolt arenas (one arena slice)."""

    __slots__ = ("name", "logic", "parallelism", "start", "stop")

    def __init__(self, name: str, parallelism: int, logic: ComponentLogic) -> None:
        self.name = name
        self.logic = logic
        self.parallelism = parallelism
        self.start = 0
        self.stop = 0


class _StmgrState:
    """Runtime state for one container's stream manager.

    Only used when the stream manager has finite capacity: tuples routed
    to the container's instances wait in ``pending`` (keyed by
    destination component, one slot per *local* instance) until the
    stream manager's per-tick budget releases them.
    """

    def __init__(self, container_id: int) -> None:
        self.container_id = container_id
        self.pending: dict[str, np.ndarray] = {}
        self.bp_flag = False

    def queued_tuples(self) -> float:
        """Total tuples waiting inside this stream manager."""
        return float(sum(p.sum() for p in self.pending.values()))


class _EdgeGroup:
    """One compiled batch of routing edges sharing an application point.

    ``dest_idx[i]`` is the bolt-arena index receiving
    ``slot_sums[slot_idx[i]] * shares[i]``; elements are laid out in
    global edge order so per-destination addition order matches the
    per-stream ``+=`` sequence of the scalar engine.  When every
    destination element receives exactly one contribution in the whole
    tick (``injective``), scatter-assign replaces ``np.add.at``.
    """

    __slots__ = ("dest_idx", "slot_idx", "shares", "buf", "injective")

    def __init__(
        self,
        dest_idx: np.ndarray,
        slot_idx: np.ndarray,
        shares: np.ndarray,
    ) -> None:
        self.dest_idx = dest_idx
        self.slot_idx = slot_idx
        self.shares = shares
        self.buf = np.empty(dest_idx.shape[0])
        self.injective = False


class _ClipEdge:
    """Precomputed operands for one spout output stream's headroom clip."""

    __slots__ = (
        "alpha", "shares", "mask", "dest_q", "itb", "cap_dt",
        "buf", "denom", "per",
    )

    def __init__(
        self,
        alpha: float,
        shares: np.ndarray,
        dest_q: np.ndarray,
        itb: float,
        cap_dt: float,
    ) -> None:
        self.alpha = alpha
        self.shares = shares
        self.mask = shares > 0
        self.dest_q = dest_q  # live view of the destination queue slice
        self.itb = itb
        self.cap_dt = cap_dt
        self.buf = np.empty(shares.shape[0])
        self.denom = np.empty(shares.shape[0])
        self.per = np.empty(shares.shape[0])


def _contiguous_span(
    idx: np.ndarray, cols: np.ndarray
) -> tuple[int, int, int, int] | None:
    """Slice bounds when a scatter's indices form one contiguous run.

    Returns ``(i0, i1, c0, c1)`` such that ``dest[i0:i1] = row[c0:c1]``
    reproduces ``dest[idx] = row[cols]`` exactly, or ``None`` when the
    index sets are empty or non-contiguous.
    """
    n = idx.shape[0]
    if n == 0:
        return None
    i0, c0 = int(idx[0]), int(cols[0])
    if not np.array_equal(idx, np.arange(i0, i0 + n, dtype=np.intp)):
        return None
    if not np.array_equal(cols, np.arange(c0, c0 + n, dtype=np.intp)):
        return None
    return (i0, i0 + n, c0, c0 + n)


def _sum_groups(
    slot_ranges: list[tuple[int, int, int]]
) -> list[tuple[np.ndarray, np.ndarray, int, int]]:
    """Group (slot_id, flat_start, flat_stop) slots by segment length.

    Equal-length segments gathered into an ``(n, L)`` matrix and summed
    along axis 1 reproduce numpy's pairwise-summation tree of each
    contiguous segment exactly — the bit-identity requirement for the
    per-stream totals that feed the routing edges.
    """
    by_len: dict[int, list[tuple[int, int]]] = {}
    for sid, f0, f1 in slot_ranges:
        by_len.setdefault(f1 - f0, []).append((sid, f0))
    groups = []
    for length, items in by_len.items():
        out_idx = np.array([sid for sid, _ in items], dtype=np.intp)
        flat_idx = np.concatenate(
            [np.arange(f0, f0 + length, dtype=np.intp) for _, f0 in items]
        )
        groups.append((out_idx, flat_idx, len(items), length))
    return groups


class HeronSimulation:
    """A running topology: the simulated equivalent of a Heron job.

    Parameters
    ----------
    topology:
        The logical topology to run.
    packing:
        Its physical plan.  Parallelisms must match the logical topology.
    logic:
        Component name → :class:`SpoutLogic` (for spouts) or
        :class:`ComponentLogic` (for bolts).  Every component needs an
        entry, and every declared output stream needs an alpha.
    store:
        Metrics destination; per-minute Heron-style counters are written
        here, tagged with topology/component/instance/container.
    config:
        Engine parameters.
    start_at_seconds:
        Simulation clock origin (a multiple of 60).  Redeployments —
        e.g. an autoscaler replacing the topology — pass the previous
        simulation's end time so the shared metrics store keeps one
        continuous history.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` (or a prepared
        :class:`~repro.faults.injector.FaultInjector`) executed against
        this run: crashes, stragglers, stream-manager stalls and metric
        dropouts fire deterministically at their scheduled ticks.
    """

    def __init__(
        self,
        topology: LogicalTopology,
        packing: PackingPlan,
        logic: Mapping[str, SpoutLogic | ComponentLogic],
        store: MetricsStore,
        config: SimulationConfig | None = None,
        start_at_seconds: int = 0,
        faults: "object | None" = None,
    ) -> None:
        self.topology = topology
        self.packing = packing
        self.config = config or SimulationConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.metrics = MetricsManager(store, topology.name, start_at_seconds)
        self._now = float(start_at_seconds)
        self._spouts: dict[str, _SpoutView] = {}
        self._bolts: dict[str, _BoltView] = {}
        self._containers: dict[str, np.ndarray] = {}
        self._validate_and_build(logic)
        self._order = [c.name for c in topology.topological_order()]
        self._compile_arenas()
        self._stmgrs: dict[int, _StmgrState] = {
            c.container_id: _StmgrState(c.container_id)
            for c in packing.containers
        }
        self._compile_stmgr_index()
        self._stalled_containers: set[int] = set()
        self._injector = None
        if faults is not None:
            # Imported lazily: repro.faults depends on repro.heron types.
            from repro.faults.injector import FaultInjector
            from repro.faults.plan import FaultPlan

            if isinstance(faults, FaultPlan):
                self._injector = FaultInjector(faults)
            elif isinstance(faults, FaultInjector):
                self._injector = faults
            else:
                raise SimulationError(
                    "faults must be a FaultPlan or FaultInjector, "
                    f"got {type(faults).__name__}"
                )
            self._injector.attach(self)
        self._minute_labels: dict[str, list[tuple[str, str]]] = {}
        for component in self._order:
            labels = []
            for index in range(topology.parallelism(component)):
                instance = f"{component}_{index}"
                container = str(packing.container_of(component, index))
                self.metrics.register_instance(component, instance, container)
                labels.append((instance, container))
            self._minute_labels[component] = labels
        self._flush_plan = None
        self._store_token = -1

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _validate_and_build(
        self, logic: Mapping[str, SpoutLogic | ComponentLogic]
    ) -> None:
        for name, spec in self.topology.components.items():
            if name not in logic:
                raise SimulationError(f"no logic provided for component {name!r}")
            entry = logic[name]
            if self.packing.parallelism(name) != spec.parallelism:
                raise SimulationError(
                    f"packing parallelism for {name!r} "
                    f"({self.packing.parallelism(name)}) does not match the "
                    f"logical topology ({spec.parallelism})"
                )
            if spec.is_spout and not isinstance(entry, SpoutLogic):
                raise SimulationError(f"spout {name!r} needs SpoutLogic")
            if not spec.is_spout and not isinstance(entry, ComponentLogic):
                raise SimulationError(f"bolt {name!r} needs ComponentLogic")
            declared_streams = {s.name for s in self.topology.outputs(name)}
            missing = declared_streams - set(entry.alphas)
            if missing:
                raise SimulationError(
                    f"component {name!r} declares output streams {sorted(missing)} "
                    "without alphas"
                )
            if spec.is_spout:
                self._spouts[name] = _SpoutView(name, spec.parallelism, entry)
            else:
                self._bolts[name] = _BoltView(name, spec.parallelism, entry)
        for name in self.topology.components:
            containers = np.array(
                [
                    self.packing.container_of(name, i)
                    for i in range(self.topology.parallelism(name))
                ]
            )
            self._containers[name] = containers

    def _output_stream_names(self, component: str) -> list[str]:
        """Declared output stream names, deduplicated in outputs order
        (the per-tick emission-slot order)."""
        return list(
            dict.fromkeys(s.name for s in self.topology.outputs(component))
        )

    def _shares(self, stream: Stream) -> np.ndarray:
        return _grouping_shares(
            stream.grouping, self.topology.parallelism(stream.destination)
        )

    def _compile_arenas(self) -> None:
        """Build the struct-of-arrays state and the compiled routing.

        Bolts are arena-ordered by topological level (stable within a
        level by scalar-engine processing order) so transparent-mode
        in-tick delivery advances level by level with whole-array ops.
        """
        topology = self.topology
        dt = self.config.tick_seconds
        self._use_stmgr = self.config.stmgr_capacity_tps is not None
        self._hwm = self.config.high_watermark_bytes
        self._high_trigger = self.config.high_watermark_bytes * (1.0 - 1e-9)
        self._low = self.config.low_watermark_bytes

        # --- spout arena (component insertion order) -------------------
        self._spout_names = list(self._spouts)
        n_sp = 0
        for view in self._spouts.values():
            view.start = n_sp
            view.stop = n_sp + view.parallelism
            n_sp = view.stop
        self._n_sp = n_sp
        self._sp_backlog = np.zeros(n_sp)
        self._sp_down = np.zeros(n_sp, dtype=bool)
        self._sp_noise = np.ones(n_sp)
        self._sp_rate_dt = np.zeros(n_sp)
        self._sp_fetch_cap = np.zeros(n_sp)
        self._sp_util_denom = np.ones(n_sp)
        # Per-tick quantities live as rows of one 2D block so the minute
        # accumulation is a single 2D += instead of one add per metric
        # (bit-identical: the add is elementwise either way).
        self._sp_tick2d = np.zeros((5, n_sp))
        self._sp_source = self._sp_tick2d[0]
        self._sp_fetched = self._sp_tick2d[1]
        self._sp_emitted = self._sp_tick2d[2]
        self._sp_backlog_dt = self._sp_tick2d[3]
        self._sp_cpu_dt = self._sp_tick2d[4]
        self._sp_worker = np.zeros(n_sp)
        self._sp_gcpt = np.zeros(n_sp)
        self._sp_containers = np.zeros(n_sp, dtype=np.int64)
        self._sp_t1 = np.empty(n_sp)
        self._sp_t2 = np.empty(n_sp)
        for name, view in self._spouts.items():
            sl = slice(view.start, view.stop)
            self._sp_worker[sl] = view.logic.worker_cores
            self._sp_gcpt[sl] = view.logic.gateway_cores_per_tuple
            self._sp_containers[sl] = self._containers[name]

        # --- bolt arena (level-major, stable by processing order) ------
        self._bolt_names = list(self._bolts)  # component insertion order
        order_bolts = [n for n in self._order if n in self._bolts]
        self._bolt_order_names = order_bolts  # scalar-engine tick order
        incoming: dict[str, list[str]] = {}
        for comp in topology.components:
            for s in topology.outputs(comp):
                incoming.setdefault(s.destination, []).append(comp)
        level: dict[str, int] = {}
        for name in self._order:
            if name in self._spouts:
                level[name] = 0
            else:
                level[name] = 1 + max(level[src] for src in incoming[name])
        self._n_levels = max((level[n] for n in order_bolts), default=0)
        arena_names = sorted(order_bolts, key=lambda n: level[n])  # stable
        self._bolt_arena_names = arena_names
        n_b = 0
        for name in arena_names:
            view = self._bolts[name]
            view.start = n_b
            view.stop = n_b + view.parallelism
            n_b = view.stop
        self._n_b = n_b
        # Levels have no gaps: every bolt's level is 1 + the max level of
        # its sources, and the chain below any bolt bottoms out at a
        # level-1 bolt, so each k in [1, n_levels] has members.
        self._level_bounds: list[tuple[int, int]] = []
        for k in range(1, self._n_levels + 1):
            members = [self._bolts[n] for n in arena_names if level[n] == k]
            self._level_bounds.append((members[0].start, members[-1].stop))

        self._b_queue = np.zeros(n_b)
        self._b_bp = np.zeros(n_b, dtype=bool)
        self._b_factor = np.ones(n_b)
        self._b_down = np.zeros(n_b, dtype=bool)
        self._b_state = np.zeros(n_b)
        self._b_noise = np.ones(n_b)
        self._b_tick2d = np.zeros((9, n_b))
        self._b_arrivals = self._b_tick2d[0]
        self._b_processed = self._b_tick2d[1]
        self._b_emitted = self._b_tick2d[2]
        self._b_failed = self._b_tick2d[3]
        self._b_memory_dt = self._b_tick2d[4]
        self._b_latency_dt = self._b_tick2d[5]
        self._b_pending_dt = self._b_tick2d[6]
        self._b_cpu_dt = self._b_tick2d[7]
        self._b_bpms = self._b_tick2d[8]
        self._b_capacity = np.zeros(n_b)
        self._b_successful = np.zeros(n_b)
        self._b_pending = np.zeros(n_b)
        self._b_outbox = np.zeros(n_b) if self._use_stmgr else None
        self._b_containers = np.zeros(n_b, dtype=np.int64)
        self._b_cap_dt = np.zeros(n_b)
        self._b_captps = np.zeros(n_b)
        self._b_itb = np.zeros(n_b)
        self._b_failrate = np.zeros(n_b)
        self._b_sbpp = np.zeros(n_b)
        self._b_scap = np.zeros(n_b)
        self._b_base_mem = np.zeros(n_b)
        self._b_worker = np.zeros(n_b)
        self._b_gcpt = np.zeros(n_b)
        self._b_t1 = np.empty(n_b)
        self._b_t2 = np.empty(n_b)
        self._b_t3 = np.empty(n_b)
        self._b_t4 = np.empty(n_b)
        self._any_state = False
        for name in arena_names:
            view = self._bolts[name]
            lg = view.logic
            sl = slice(view.start, view.stop)
            self._b_containers[sl] = self._containers[name]
            self._b_cap_dt[sl] = lg.capacity_tps * dt
            self._b_captps[sl] = lg.capacity_tps
            self._b_itb[sl] = lg.input_tuple_bytes
            self._b_failrate[sl] = lg.failure_rate
            self._b_sbpp[sl] = lg.state_bytes_per_processed
            self._b_scap[sl] = lg.state_memory_cap_bytes
            self._b_base_mem[sl] = lg.base_memory_bytes
            self._b_worker[sl] = lg.worker_cores
            self._b_gcpt[sl] = lg.gateway_cores_per_tuple
            if lg.state_bytes_per_processed > 0:
                self._any_state = True

        # --- emission slots (one per unique output stream) -------------
        # Spout slots in spout insertion order; bolt slots in ARENA order
        # so each level's slots form one contiguous flat range.
        self._sp_slot_records: list[tuple[str, str, int, int]] = []
        self._sp_stream_slots: dict[str, list[tuple[str, int]]] = {}
        sp_gather: list[np.ndarray] = []
        sp_alpha_flat: list[np.ndarray] = []
        flat = 0
        for name in self._spout_names:
            view = self._spouts[name]
            entries = []
            for stream_name in self._output_stream_names(name):
                sid = len(self._sp_slot_records)
                self._sp_slot_records.append(
                    (name, stream_name, flat, flat + view.parallelism)
                )
                entries.append((stream_name, flat))
                sp_gather.append(
                    np.arange(view.start, view.stop, dtype=np.intp)
                )
                sp_alpha_flat.append(
                    np.full(view.parallelism, view.logic.alphas[stream_name])
                )
                flat += view.parallelism
            self._sp_stream_slots[name] = entries
        self._sp_flat = flat
        self._sp_slot_gather = (
            np.concatenate(sp_gather)
            if sp_gather else np.empty(0, dtype=np.intp)
        )
        self._sp_slot_alpha_flat = (
            np.concatenate(sp_alpha_flat) if sp_alpha_flat else np.empty(0)
        )
        self._sp_slot_vals = np.zeros(self._sp_flat)
        self._sp_slot_sums = np.zeros(len(self._sp_slot_records))
        self._sp_sum_groups = _sum_groups(
            [(i, r[2], r[3]) for i, r in enumerate(self._sp_slot_records)]
        )
        uniq = np.unique(self._sp_slot_gather)
        self._sp_emit_injective = uniq.shape[0] == self._sp_slot_gather.shape[0]

        self._b_slot_records: list[tuple[str, str, int, int]] = []
        self._b_stream_slots: dict[str, list[tuple[str, int]]] = {}
        self._b_slot_key: dict[tuple[str, str], int] = {}
        b_gather: list[np.ndarray] = []
        b_alpha_base: list[float] = []
        b_slot_of_flat: list[np.ndarray] = []
        flat = 0
        level_slot_flat: list[tuple[int, int]] = []
        level_slot_ranges: list[list[tuple[int, int, int]]] = [
            [] for _ in range(self._n_levels)
        ]
        cur_level = 1
        level_flat_start = 0
        for name in arena_names:
            view = self._bolts[name]
            if level[name] != cur_level:
                level_slot_flat.append((level_flat_start, flat))
                for _ in range(level[name] - cur_level - 1):
                    level_slot_flat.append((flat, flat))
                cur_level = level[name]
                level_flat_start = flat
            entries = []
            for stream_name in self._output_stream_names(name):
                sid = len(self._b_slot_records)
                self._b_slot_records.append(
                    (name, stream_name, flat, flat + view.parallelism)
                )
                self._b_slot_key[(name, stream_name)] = sid
                entries.append((stream_name, flat))
                b_gather.append(
                    np.arange(view.start, view.stop, dtype=np.intp)
                )
                b_alpha_base.append(view.logic.alphas[stream_name])
                b_slot_of_flat.append(
                    np.full(view.parallelism, sid, dtype=np.intp)
                )
                level_slot_ranges[cur_level - 1].append(
                    (sid, flat, flat + view.parallelism)
                )
                flat += view.parallelism
            self._b_stream_slots[name] = entries
        if self._n_levels:
            level_slot_flat.append((level_flat_start, flat))
            while len(level_slot_flat) < self._n_levels:
                level_slot_flat.append((flat, flat))
        self._b_flat = flat
        self._level_slot_flat = level_slot_flat
        self._b_slot_gather = (
            np.concatenate(b_gather)
            if b_gather else np.empty(0, dtype=np.intp)
        )
        self._b_slot_alpha_base = np.array(b_alpha_base)
        self._b_slot_of_flat = (
            np.concatenate(b_slot_of_flat)
            if b_slot_of_flat else np.empty(0, dtype=np.intp)
        )
        self._b_slot_vals = np.zeros(self._b_flat)
        self._b_slot_sums = np.zeros(len(self._b_slot_records))
        self._b_slot_alpha_eff = np.empty(len(self._b_slot_records))
        self._b_alpha_flat_buf = np.empty(self._b_flat)
        self._b_alpha_flat_const = (
            self._b_slot_alpha_base[self._b_slot_of_flat]
            if self._b_flat else np.empty(0)
        )
        self._level_sum_groups = [
            _sum_groups(ranges) for ranges in level_slot_ranges
        ]
        self._all_sum_groups = _sum_groups(
            [(i, r[2], r[3]) for i, r in enumerate(self._b_slot_records)]
        )
        self._all_emit_injective = (
            np.unique(self._b_slot_gather).shape[0]
            == self._b_slot_gather.shape[0]
        )

        # --- routing edges, compiled flat ------------------------------
        # Global edge order = [spout edges in spout×outputs order] then
        # [bolt edges in processing-order×outputs order]; contributions
        # into any one destination element must land in exactly this
        # order.  Spout edges apply as one group before any bolt level;
        # bolt edges group by destination level, applied just before that
        # level drains (transparent) or after the single pass (finite).
        sp_dest: list[np.ndarray] = []
        sp_slot: list[np.ndarray] = []
        sp_shares: list[np.ndarray] = []
        for name in self._spout_names:
            for stream in topology.outputs(name):
                sid = None
                for i, rec in enumerate(self._sp_slot_records):
                    if rec[0] == name and rec[1] == stream.name:
                        sid = i
                        break
                dest = self._bolts[stream.destination]
                shares = self._shares(stream)
                sp_dest.append(np.arange(dest.start, dest.stop, dtype=np.intp))
                sp_slot.append(
                    np.full(dest.parallelism, sid, dtype=np.intp)
                )
                sp_shares.append(np.asarray(shares, dtype=np.float64))
        bolt_edges: list[list[tuple[np.ndarray, np.ndarray, np.ndarray]]] = [
            [] for _ in range(self._n_levels)
        ]
        for name in self._bolt_order_names:
            for stream in topology.outputs(name):
                sid = self._b_slot_key[(name, stream.name)]
                dest = self._bolts[stream.destination]
                shares = self._shares(stream)
                bolt_edges[level[stream.destination] - 1].append(
                    (
                        np.arange(dest.start, dest.stop, dtype=np.intp),
                        np.full(dest.parallelism, sid, dtype=np.intp),
                        np.asarray(shares, dtype=np.float64),
                    )
                )
        all_dest = sp_dest + [e[0] for grp in bolt_edges for e in grp]
        counts = (
            np.bincount(np.concatenate(all_dest), minlength=max(n_b, 1))
            if all_dest else np.zeros(max(n_b, 1), dtype=np.intp)
        )

        def build_group(parts):
            if not parts:
                return None
            dest_idx = np.concatenate([p[0] for p in parts])
            slot_idx = np.concatenate([p[1] for p in parts])
            shares = np.concatenate([p[2] for p in parts])
            group = _EdgeGroup(dest_idx, slot_idx, shares)
            group.injective = bool((counts[dest_idx] == 1).all())
            return group

        self._sp_edge_group = build_group(
            list(zip(sp_dest, sp_slot, sp_shares))
        )
        self._edge_groups = [build_group(grp) for grp in bolt_edges]

        # --- headroom-clip operands per spout --------------------------
        self._clip_edges: dict[str, list[_ClipEdge]] = {}
        for name in self._spout_names:
            view = self._spouts[name]
            records = []
            for stream in topology.outputs(name):
                dest = self._bolts.get(stream.destination)
                if dest is None:
                    continue
                records.append(
                    _ClipEdge(
                        view.logic.alphas[stream.name],
                        np.asarray(self._shares(stream), dtype=np.float64),
                        self._b_queue[dest.start:dest.stop],
                        dest.logic.input_tuple_bytes,
                        dest.logic.capacity_tps * dt,
                    )
                )
            self._clip_edges[name] = records

        # --- static RNG draw layout ------------------------------------
        # Per tick, in scalar-engine order: each spout's rate noise (one
        # per instance), then per bolt in processing order its capacity
        # noise (one per instance) followed by one alpha draw per unique
        # output stream.  One batched ``normal(loc, scale)`` call over
        # the concatenated layout, tiled across a minute of ticks,
        # reproduces the draw stream of the per-call engine exactly.
        loc: list[np.ndarray] = []
        scale: list[np.ndarray] = []
        sp_idx: list[np.ndarray] = []
        sp_cols: list[np.ndarray] = []
        b_idx: list[np.ndarray] = []
        b_cols: list[np.ndarray] = []
        alpha_slots: list[int] = []
        alpha_cols: list[int] = []
        col = 0
        for name in self._spout_names:
            view = self._spouts[name]
            if view.logic.rate_noise > 0:
                p = view.parallelism
                loc.append(np.full(p, 1.0))
                scale.append(np.full(p, view.logic.rate_noise))
                sp_idx.append(np.arange(view.start, view.stop, dtype=np.intp))
                sp_cols.append(np.arange(col, col + p, dtype=np.intp))
                col += p
        for name in self._bolt_order_names:
            view = self._bolts[name]
            lg = view.logic
            if lg.capacity_noise > 0:
                p = view.parallelism
                loc.append(np.full(p, 1.0))
                scale.append(np.full(p, lg.capacity_noise))
                b_idx.append(np.arange(view.start, view.stop, dtype=np.intp))
                b_cols.append(np.arange(col, col + p, dtype=np.intp))
                col += p
            if lg.alpha_noise > 0:
                for stream_name in self._output_stream_names(name):
                    loc.append(np.zeros(1))
                    scale.append(np.full(1, lg.alpha_noise))
                    alpha_slots.append(self._b_slot_key[(name, stream_name)])
                    alpha_cols.append(col)
                    col += 1
        self._noise_k = col
        self._noise_chunk = int(round(_MINUTE / dt))
        if col:
            loc_tick = np.concatenate(loc)
            scale_tick = np.concatenate(scale)
            self._noise_loc_tile = np.tile(loc_tick, self._noise_chunk)
            self._noise_scale_tile = np.tile(scale_tick, self._noise_chunk)
        else:
            self._noise_loc_tile = np.empty(0)
            self._noise_scale_tile = np.empty(0)
        self._noise_buf = np.empty((0, col))
        self._noise_cursor = 0
        self._sp_noise_idx = (
            np.concatenate(sp_idx) if sp_idx else np.empty(0, dtype=np.intp)
        )
        self._sp_noise_cols = (
            np.concatenate(sp_cols) if sp_cols else np.empty(0, dtype=np.intp)
        )
        self._b_noise_idx = (
            np.concatenate(b_idx) if b_idx else np.empty(0, dtype=np.intp)
        )
        self._b_noise_cols = (
            np.concatenate(b_cols) if b_cols else np.empty(0, dtype=np.intp)
        )
        self._b_alpha_noise_slots = np.array(alpha_slots, dtype=np.intp)
        self._b_alpha_cols = np.array(alpha_cols, dtype=np.intp)
        # When every noisy instance sits in one contiguous run (the
        # common case: all spouts noisy, or all bolts noisy with no
        # alpha columns interleaved), the fancy scatter degenerates to a
        # slice copy — same values, no index gather per tick.
        self._sp_noise_span = _contiguous_span(
            self._sp_noise_idx, self._sp_noise_cols
        )
        self._b_noise_span = _contiguous_span(
            self._b_noise_idx, self._b_noise_cols
        )

        # --- per-minute metric accumulators (row views of 2D blocks,
        # mirroring the tick blocks so accumulation is one 2D add) ------
        self._acc_sp2d = np.zeros((5, n_sp))
        self._acc_sp_source = self._acc_sp2d[0]
        self._acc_sp_fetched = self._acc_sp2d[1]
        self._acc_sp_emitted = self._acc_sp2d[2]
        self._acc_sp_backlog = self._acc_sp2d[3]
        self._acc_sp_cpu = self._acc_sp2d[4]
        self._acc_sp_streams = np.zeros(self._sp_flat)
        self._acc_b2d = np.zeros((9, n_b))
        self._acc_b_arrivals = self._acc_b2d[0]
        self._acc_b_processed = self._acc_b2d[1]
        self._acc_b_emitted = self._acc_b2d[2]
        self._acc_b_failed = self._acc_b2d[3]
        self._acc_b_memory = self._acc_b2d[4]
        self._acc_b_latency = self._acc_b2d[5]
        self._acc_b_pending = self._acc_b2d[6]
        self._acc_b_cpu = self._acc_b2d[7]
        self._acc_b_bpms = self._acc_b2d[8]
        self._acc_b_streams = np.zeros(self._b_flat)

    def _compile_stmgr_index(self) -> None:
        """Per-(stream manager, component) local instance indices.

        Replaces the per-tick ``containers == cid`` mask rebuild in the
        enqueue path with construction-time index arrays; an ascending
        fancy-index add is bit-identical to the boolean-mask add.
        """
        self._stmgr_local_idx: dict[tuple[int, str], np.ndarray] = {}
        for name in self._bolt_names:
            containers = self._containers[name]
            for cid in self._stmgrs:
                idx = np.nonzero(containers == cid)[0]
                if idx.shape[0]:
                    self._stmgr_local_idx[(cid, name)] = idx.astype(np.intp)

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def set_source_rate(self, spout: str, tuples_per_minute: float) -> None:
        """Configure a spout's external source rate (whole component).

        The rate is divided evenly over the spout's instances, as the
        evaluation spout does.
        """
        if spout not in self._spouts:
            raise SimulationError(f"{spout!r} is not a spout in this topology")
        if tuples_per_minute < 0:
            raise SimulationError("source rate must be non-negative")
        view = self._spouts[spout]
        view.rate_tps = tuples_per_minute / _MINUTE / view.parallelism
        dt = self.config.tick_seconds
        sl = slice(view.start, view.stop)
        rate_dt = view.rate_tps * dt
        fetch_cap = view.logic.fetch_multiplier * view.rate_tps * dt
        self._sp_rate_dt[sl] = rate_dt
        self._sp_fetch_cap[sl] = fetch_cap
        self._sp_util_denom[sl] = fetch_cap if view.rate_tps > 0 else 1.0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def backpressure_active(self) -> bool:
        """True when any instance or stream manager is suppressing spouts."""
        if self._b_bp.any():
            return True
        if not self._use_stmgr:
            # Transparent stream managers never raise their own flag
            # (only _stmgr_enqueue sets it, on the finite path).
            return False
        return any(s.bp_flag for s in self._stmgrs.values())

    def backpressure_components(self) -> list[str]:
        """Names of bolt components with at least one raised flag."""
        return [
            name for name in self._bolt_names
            if self._b_bp[self._bolts[name].start:self._bolts[name].stop].any()
        ]

    def queue_tuples(self, component: str) -> np.ndarray:
        """Current per-instance queue lengths for one bolt (copy)."""
        if component not in self._bolts:
            raise SimulationError(f"{component!r} is not a bolt")
        view = self._bolts[component]
        return self._b_queue[view.start:view.stop].copy()

    def set_instance_capacity_factor(
        self, component: str, index: int, factor: float
    ) -> None:
        """Degrade (or restore) one bolt instance's processing capacity.

        ``factor`` multiplies the instance's nominal capacity: 1.0 is
        healthy, 0.5 a half-speed straggler (the paper's "failed
        resource" backpressure cause), 0.0 a dead instance.  Takes
        effect from the next tick.
        """
        if component not in self._bolts:
            raise SimulationError(f"{component!r} is not a bolt")
        if factor < 0:
            raise SimulationError("capacity factor must be non-negative")
        view = self._bolts[component]
        if not 0 <= index < view.parallelism:
            raise SimulationError(
                f"{component!r} has no instance index {index}"
            )
        self._b_factor[view.start + index] = factor

    def instance_capacity_factors(self, component: str) -> np.ndarray:
        """Current per-instance capacity factors for one bolt (copy)."""
        if component not in self._bolts:
            raise SimulationError(f"{component!r} is not a bolt")
        view = self._bolts[component]
        return self._b_factor[view.start:view.stop].copy()

    # ------------------------------------------------------------------
    # Fault control surface (used directly or via a FaultInjector)
    # ------------------------------------------------------------------
    def crash_instance(self, component: str, index: int) -> None:
        """Kill one instance: processing stops and its metrics go dark.

        A crashed bolt loses its in-memory pending queue (the tuples are
        gone with the process); tuples routed to it while it is down keep
        accumulating — the stream manager still buffers for the
        registered instance — so its queue refills and backpressure can
        raise exactly as in a real cluster.  A crashed spout stops
        fetching while its external source keeps producing backlog.
        From the crash tick until :meth:`restore_instance`, the
        instance's per-minute metrics are not written (missing minutes).
        """
        kind, view = self._component_view(component, index)
        g = view.start + index
        if kind == "bolt":
            self._b_queue[g] = 0.0
            self._b_bp[g] = False
            self._b_down[g] = True
        else:
            self._sp_down[g] = True
        self.metrics.set_blackout(component, f"{component}_{index}", True)

    def restore_instance(self, component: str, index: int) -> None:
        """Restart a crashed instance; it resumes with whatever queued."""
        kind, view = self._component_view(component, index)
        g = view.start + index
        if kind == "bolt":
            self._b_down[g] = False
        else:
            self._sp_down[g] = False
        self.metrics.set_blackout(component, f"{component}_{index}", False)

    def instance_down(self, component: str, index: int) -> bool:
        """True while an instance is crashed."""
        kind, view = self._component_view(component, index)
        g = view.start + index
        if kind == "bolt":
            return bool(self._b_down[g])
        return bool(self._sp_down[g])

    def _component_view(
        self, component: str, index: int
    ) -> tuple[str, "_SpoutView | _BoltView"]:
        view = self._bolts.get(component)
        kind = "bolt"
        if view is None:
            view = self._spouts.get(component)
            kind = "spout"
        if view is None:
            raise SimulationError(
                f"{component!r} is not a component of this topology"
            )
        if not 0 <= index < view.parallelism:
            raise SimulationError(
                f"{component!r} has no instance index {index}"
            )
        return kind, view

    def stall_stream_manager(self, container_id: int) -> None:
        """Stall one container's stream manager.

        While stalled, the container's instances neither receive nor
        deliver tuples: bolts on it stop draining (their queues fill from
        upstream and raise backpressure) and spouts on it cannot emit.
        The instances stay alive, so their metrics keep reporting — the
        observable signature is a backpressure spike plus a throughput
        dip, not missing minutes.
        """
        if container_id not in self._stmgrs:
            raise SimulationError(f"no container with id {container_id}")
        self._stalled_containers.add(container_id)

    def resume_stream_manager(self, container_id: int) -> None:
        """Clear a stream-manager stall."""
        if container_id not in self._stmgrs:
            raise SimulationError(f"no container with id {container_id}")
        self._stalled_containers.discard(container_id)

    def stalled_containers(self) -> list[int]:
        """Container ids whose stream managers are currently stalled."""
        return sorted(self._stalled_containers)

    def set_metric_dropout(
        self,
        component: str | None = None,
        index: int | None = None,
        active: bool = True,
    ) -> None:
        """Start or stop a metrics-pipeline dropout.

        The topology keeps running; its per-minute samples are simply not
        written for the scoped entities — one instance, one component, or
        (both ``None``) the whole topology.
        """
        if component is None:
            if index is not None:
                raise SimulationError(
                    "an instance-scoped dropout needs its component"
                )
            self.metrics.set_blackout(None, None, active)
            return
        if component not in self.topology.components:
            raise SimulationError(
                f"{component!r} is not a component of this topology"
            )
        if index is None:
            self.metrics.set_blackout(component, None, active)
            return
        if not 0 <= index < self.topology.parallelism(component):
            raise SimulationError(
                f"{component!r} has no instance index {index}"
            )
        self.metrics.set_blackout(component, f"{component}_{index}", active)

    @property
    def fault_log(self) -> list[tuple[float, str, object]]:
        """The injector's ``(seconds, action, event)`` log (empty without
        a fault plan)."""
        if self._injector is None:
            return []
        return self._injector.log

    def stmgr_queued_tuples(self, container_id: int) -> float:
        """Tuples waiting inside one container's stream manager.

        Always zero when stream managers are transparent (infinite
        capacity, the default).
        """
        if container_id not in self._stmgrs:
            raise SimulationError(f"no container with id {container_id}")
        return self._stmgrs[container_id].queued_tuples()

    def spout_backlog(self, spout: str) -> np.ndarray:
        """Current per-instance external backlog for one spout (copy)."""
        if spout not in self._spouts:
            raise SimulationError(f"{spout!r} is not a spout")
        view = self._spouts[spout]
        return self._sp_backlog[view.start:view.stop].copy()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, minutes: float) -> None:
        """Advance the simulation by a whole number of minutes."""
        self.run_seconds(minutes * _MINUTE)

    def run_seconds(self, seconds: float) -> None:
        """Advance the simulation by ``seconds`` (multiple of the tick)."""
        if seconds < 0:
            raise SimulationError("cannot run for negative time")
        dt = self.config.tick_seconds
        ticks = round(seconds / dt)
        if abs(ticks * dt - seconds) > 1e-6:
            raise SimulationError(
                f"run length {seconds}s is not a multiple of the tick ({dt}s)"
            )
        for _ in range(ticks):
            self._tick(dt)

    # ------------------------------------------------------------------
    # One tick
    # ------------------------------------------------------------------
    def _tick(self, dt: float) -> None:
        if self._injector is not None:
            self._injector.on_tick(self)
        bp_at_start = self.backpressure_active()
        row = self._scatter_noise()
        sp_blocked, b_blocked = self._blocked_masks()

        # Per-tick bolt capacity, whole arena: nominal × noise × factor,
        # clamped at zero, zeroed where crashed or stalled.
        cap = self._b_capacity
        np.multiply(self._b_cap_dt, self._b_noise, out=cap)
        cap *= self._b_factor
        np.maximum(0.0, cap, out=cap)
        if b_blocked is not None:
            np.copyto(cap, 0.0, where=b_blocked)

        alpha_flat = self._alpha_flat(row)
        if self._use_stmgr:
            # Finite stream managers: this tick's arrivals are whatever
            # the stream managers release from their queues; emissions
            # enqueue for later release (one-tick routing latency).
            self._stmgr_release(dt)
            outbox = self._b_outbox
            outbox.fill(0.0)
            self._spout_pass(bp_at_start, sp_blocked, dt)
            self._bolt_pass(0, self._n_b, 0, self._b_flat,
                            self._all_sum_groups, alpha_flat)
            if self._sp_edge_group is not None:
                self._apply_edges(
                    self._sp_edge_group, self._sp_slot_sums, outbox
                )
            for group in self._edge_groups:
                if group is not None:
                    self._apply_edges(group, self._b_slot_sums, outbox)
            self._stmgr_enqueue()
        else:
            # Transparent stream managers (the paper's assumption):
            # emissions are delivered within the tick, level by level.
            arrivals = self._b_arrivals
            arrivals.fill(0.0)
            self._spout_pass(bp_at_start, sp_blocked, dt)
            if self._sp_edge_group is not None:
                self._apply_edges(
                    self._sp_edge_group, self._sp_slot_sums, arrivals
                )
            for k in range(self._n_levels):
                group = self._edge_groups[k]
                if group is not None:
                    self._apply_edges(group, self._b_slot_sums, arrivals)
                a0, a1 = self._level_bounds[k]
                f0, f1 = self._level_slot_flat[k]
                self._bolt_pass(
                    a0, a1, f0, f1, self._level_sum_groups[k], alpha_flat
                )

        # Post-pass state growth and watermark flags (nothing reads
        # these mid-tick, so whole-arena updates are order-safe).
        if self._any_state:
            t = np.multiply(self._b_sbpp, self._b_processed, out=self._b_t1)
            t += self._b_state
            np.minimum(self._b_scap, t, out=self._b_state)
        np.multiply(self._b_queue, self._b_itb, out=self._b_pending)
        # The trigger fires when pending *reaches* the high watermark:
        # the spout headroom clip pins a saturated queue exactly at it,
        # which is precisely the state where a real stream manager has
        # already raised backpressure.
        self._b_bp = np.where(
            self._b_bp,
            self._b_pending > self._low,
            self._b_pending >= self._high_trigger,
        )

        self._record_tick(bp_at_start, dt)
        self._now += dt

    def _blocked_masks(self) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Instances unable to move tuples: crashed or on a stalled
        container.  ``None`` when nothing is blocked (the fast path)."""
        if self._stalled_containers:
            stalled = np.fromiter(self._stalled_containers, dtype=np.int64)
            sp = self._sp_down | np.isin(self._sp_containers, stalled)
            b = self._b_down | np.isin(self._b_containers, stalled)
            return (
                sp if sp.any() else None,
                b if b.any() else None,
            )
        return (
            self._sp_down if self._sp_down.any() else None,
            self._b_down if self._b_down.any() else None,
        )

    def _scatter_noise(self) -> np.ndarray | None:
        if self._noise_k == 0:
            return None
        cursor = self._noise_cursor
        if cursor >= self._noise_buf.shape[0]:
            self._noise_buf = self._rng.normal(
                self._noise_loc_tile, self._noise_scale_tile
            ).reshape(self._noise_chunk, self._noise_k)
            cursor = 0
        row = self._noise_buf[cursor]
        self._noise_cursor = cursor + 1
        if self._sp_noise_span is not None:
            i0, i1, c0, c1 = self._sp_noise_span
            self._sp_noise[i0:i1] = row[c0:c1]
        elif self._sp_noise_idx.shape[0]:
            self._sp_noise[self._sp_noise_idx] = row[self._sp_noise_cols]
        if self._b_noise_span is not None:
            i0, i1, c0, c1 = self._b_noise_span
            self._b_noise[i0:i1] = row[c0:c1]
        elif self._b_noise_idx.shape[0]:
            self._b_noise[self._b_noise_idx] = row[self._b_noise_cols]
        return row

    def _alpha_flat(self, row: np.ndarray | None) -> np.ndarray:
        """Per-flat-slot effective alphas for this tick's emissions."""
        if self._b_alpha_noise_slots.shape[0] == 0 or row is None:
            return self._b_alpha_flat_const
        eff = self._b_slot_alpha_eff
        np.copyto(eff, self._b_slot_alpha_base)
        draws = row[self._b_alpha_cols]
        np.add(1.0, draws, out=draws)
        np.maximum(0.0, draws, out=draws)
        eff[self._b_alpha_noise_slots] = (
            self._b_slot_alpha_base[self._b_alpha_noise_slots] * draws
        )
        eff.take(self._b_slot_of_flat, out=self._b_alpha_flat_buf)
        return self._b_alpha_flat_buf

    def _spout_pass(
        self,
        suppressed: bool,
        sp_blocked: np.ndarray | None,
        dt: float,
    ) -> None:
        source = self._sp_source
        np.multiply(self._sp_rate_dt, self._sp_noise, out=source)
        np.maximum(0.0, source, out=source)
        self._sp_backlog += source
        fetched = self._sp_fetched
        if suppressed:
            fetched.fill(0.0)
        else:
            np.minimum(self._sp_backlog, self._sp_fetch_cap, out=fetched)
            if sp_blocked is not None:
                np.copyto(fetched, 0.0, where=sp_blocked)
            for name in self._spout_names:
                view = self._spouts[name]
                if view.rate_tps <= 0.0:
                    continue
                clip = self._headroom_clip(view, fetched)
                if clip != 1.0:
                    fetched[view.start:view.stop] *= clip
        self._sp_backlog -= fetched
        vals = self._sp_slot_vals
        if self._sp_flat:
            np.multiply(
                fetched[self._sp_slot_gather],
                self._sp_slot_alpha_flat,
                out=vals,
            )
            emitted = self._sp_emitted
            emitted.fill(0.0)
            if self._sp_emit_injective:
                emitted[self._sp_slot_gather] = vals
            else:
                np.add.at(emitted, self._sp_slot_gather, vals)
            for out_idx, flat_idx, n, length in self._sp_sum_groups:
                self._sp_slot_sums[out_idx] = (
                    vals[flat_idx].reshape(n, length).sum(axis=1)
                )
        else:
            self._sp_emitted.fill(0.0)

    def _headroom_clip(self, view: _SpoutView, fetched: np.ndarray) -> float:
        """Clip factor keeping downstream queues at/below the high watermark.

        Models the intra-tick stall: a stream manager stops accepting spout
        tuples the instant a destination queue reaches the high watermark,
        so at most ``headroom + capacity*dt`` tuples can enter per tick.
        """
        clip = 1.0
        fsum = fetched[view.start:view.stop].sum()
        for edge in self._clip_edges[view.name]:
            total_out = fsum * edge.alpha
            if total_out <= 0:
                continue
            buf = edge.buf
            np.multiply(edge.dest_q, edge.itb, out=buf)
            np.subtract(self._hwm, buf, out=buf)
            np.maximum(0.0, buf, out=buf)
            buf /= edge.itb
            buf += edge.cap_dt
            per = edge.per
            per.fill(np.inf)
            denom = np.multiply(total_out, edge.shares, out=edge.denom)
            np.divide(buf, denom, out=per, where=edge.mask)
            clip = min(clip, float(per.min()))
        return max(0.0, min(1.0, clip))

    def _bolt_pass(
        self,
        a0: int,
        a1: int,
        f0: int,
        f1: int,
        sum_groups,
        alpha_flat: np.ndarray,
    ) -> None:
        """Drain and emit for one contiguous bolt-arena range."""
        if a1 <= a0:
            return
        queue = self._b_queue[a0:a1]
        queue += self._b_arrivals[a0:a1]
        processed = self._b_processed[a0:a1]
        np.minimum(queue, self._b_capacity[a0:a1], out=processed)
        queue -= processed
        failed = self._b_failed[a0:a1]
        np.multiply(processed, self._b_failrate[a0:a1], out=failed)
        np.subtract(processed, failed, out=self._b_successful[a0:a1])
        if f1 > f0:
            gather = self._b_slot_gather[f0:f1]
            vals = self._b_slot_vals[f0:f1]
            np.multiply(
                self._b_successful[gather], alpha_flat[f0:f1], out=vals
            )
            for out_idx, flat_idx, n, length in sum_groups:
                self._b_slot_sums[out_idx] = (
                    self._b_slot_vals[flat_idx].reshape(n, length).sum(axis=1)
                )

    def _emit_scatter(self) -> None:
        """Scatter this tick's flat slot emissions into the emit arena."""
        emitted = self._b_emitted
        emitted.fill(0.0)
        if not self._b_flat:
            return
        if self._all_emit_injective:
            emitted[self._b_slot_gather] = self._b_slot_vals
        else:
            np.add.at(emitted, self._b_slot_gather, self._b_slot_vals)

    def _apply_edges(
        self,
        group: _EdgeGroup,
        slot_sums: np.ndarray,
        target: np.ndarray,
    ) -> None:
        slot_sums.take(group.slot_idx, out=group.buf)
        group.buf *= group.shares
        if group.injective:
            target[group.dest_idx] = group.buf
        else:
            np.add.at(target, group.dest_idx, group.buf)

    def _stmgr_release(self, dt: float) -> None:
        """Release queued tuples from each stream manager, up to capacity.

        Release is proportional across everything a stream manager has
        queued for its local instances (FIFO in fluid terms).  Fills the
        per-tick arrival arena.
        """
        arrivals = self._b_arrivals
        arrivals.fill(0.0)
        budget = self.config.stmgr_capacity_tps * dt
        for stmgr in self._stmgrs.values():
            if stmgr.container_id in self._stalled_containers:
                continue  # a stalled stream manager releases nothing
            total = stmgr.queued_tuples()
            if total <= 0.0:
                continue
            fraction = min(1.0, budget / total)
            for component, pending in stmgr.pending.items():
                released = pending * fraction
                view = self._bolts[component]
                arrivals[view.start:view.stop] += released
                stmgr.pending[component] = pending - released

    def _stmgr_enqueue(self) -> None:
        """Queue this tick's emissions inside the destination stmgrs."""
        outbox = self._b_outbox
        for component in self._bolt_names:
            view = self._bolts[component]
            amounts = outbox[view.start:view.stop]
            if not np.any(amounts):
                continue
            for cid, stmgr in self._stmgrs.items():
                idx = self._stmgr_local_idx.get((cid, component))
                if idx is None:
                    continue
                pending = stmgr.pending.get(component)
                if pending is None:
                    pending = np.zeros(view.parallelism)
                    stmgr.pending[component] = pending
                pending[idx] += amounts[idx]
        high = self._high_trigger
        low = self._low
        for stmgr in self._stmgrs.values():
            queued_bytes = sum(
                float(pending.sum())
                * self._bolts[component].logic.input_tuple_bytes
                for component, pending in stmgr.pending.items()
            )
            if stmgr.bp_flag:
                stmgr.bp_flag = queued_bytes > low
            else:
                stmgr.bp_flag = queued_bytes >= high

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _record_tick(self, bp_at_start: bool, dt: float) -> None:
        # Whole-arena accumulation: every element sees the same IEEE-754
        # operation sequence the scalar engine's per-component loop
        # produced (counters: 0.0 + a_1 + ... + a_n; gauges:
        # 0.0 + v_1*dt + ...), so flushed per-minute values match bit
        # for bit.
        metrics = self.metrics
        if self._n_sp:
            util = np.divide(
                self._sp_fetched, self._sp_util_denom, out=self._sp_t1
            )
            moved = np.add(self._sp_fetched, self._sp_emitted, out=self._sp_t2)
            np.multiply(self._sp_gcpt, moved, out=moved)
            moved /= dt
            cpu = np.multiply(self._sp_worker, util, out=self._sp_cpu_dt)
            cpu += moved
            np.multiply(self._sp_backlog, dt, out=self._sp_backlog_dt)
            cpu *= dt
            self._acc_sp2d += self._sp_tick2d
            self._acc_sp_streams += self._sp_slot_vals
        if self._n_b:
            self._emit_scatter()
            util = np.divide(
                self._b_processed, self._b_cap_dt, out=self._b_t1
            )
            np.minimum(1.0, util, out=util)
            moved = np.add(self._b_arrivals, self._b_emitted, out=self._b_t2)
            np.multiply(self._b_gcpt, moved, out=moved)
            moved /= dt
            cpu = np.multiply(self._b_worker, util, out=self._b_cpu_dt)
            cpu += moved
            memory = np.add(
                self._b_base_mem, self._b_pending, out=self._b_memory_dt
            )
            memory += self._b_state
            memory *= dt
            eff = np.multiply(self._b_captps, self._b_factor, out=self._b_t4)
            np.maximum(1e-9, eff, out=eff)
            latency = np.divide(self._b_queue, eff, out=self._b_latency_dt)
            latency *= 1000.0
            latency *= dt
            np.multiply(self._b_pending, dt, out=self._b_pending_dt)
            cpu *= dt
            np.multiply(self._b_bp, dt * 1000.0, out=self._b_bpms)
            self._acc_b2d += self._b_tick2d
            self._acc_b_streams += self._b_slot_vals
        if bp_at_start or self.backpressure_active():
            metrics.add_topology_backpressure(dt)
        if metrics.minute_closing(dt):
            # Hand the accumulated minute over before the advance that
            # flushes it.  Using the manager's own clock keeps the
            # decision aligned with the actual flush, whatever the tick.
            if self._fast_flush_ready():
                self._fast_flush()
                metrics.advance_batched(dt)
            else:
                self._flush_minute_accumulators()
                metrics.advance(dt)
                self._maybe_build_flush_plan()
        else:
            metrics.advance(dt)

    def _flush_minute_accumulators(self) -> None:
        """Feed one minute of accumulated metrics into the manager.

        Per-instance add order mirrors the scalar engine exactly, so
        buffer-dict insertion order — and therefore store write order and
        series key-insertion order — is unchanged.
        """
        metrics = self.metrics
        for name in self._spout_names:
            view = self._spouts[name]
            s0 = view.start
            stream_slots = self._sp_stream_slots[name]
            for i, (instance, container) in enumerate(
                self._minute_labels[name]
            ):
                g = s0 + i
                metrics.add_counter(
                    name, instance, container,
                    MetricNames.SOURCE_COUNT, float(self._acc_sp_source[g]),
                )
                metrics.add_counter(
                    name, instance, container,
                    MetricNames.EXECUTE_COUNT, float(self._acc_sp_fetched[g]),
                )
                metrics.add_counter(
                    name, instance, container,
                    MetricNames.EMIT_COUNT, float(self._acc_sp_emitted[g]),
                )
                for stream_name, base in stream_slots:
                    metrics.add_counter(
                        name, instance, container,
                        MetricNames.stream_emit(stream_name),
                        float(self._acc_sp_streams[base + i]),
                    )
                metrics.add_gauge_integral(
                    name, instance, container,
                    MetricNames.BACKLOG_TUPLES,
                    float(self._acc_sp_backlog[g]),
                )
                metrics.add_gauge_integral(
                    name, instance, container,
                    MetricNames.CPU_LOAD, float(self._acc_sp_cpu[g]),
                )
        for name in self._bolt_names:
            view = self._bolts[name]
            s0 = view.start
            stream_slots = self._b_stream_slots[name]
            for i, (instance, container) in enumerate(
                self._minute_labels[name]
            ):
                g = s0 + i
                metrics.add_counter(
                    name, instance, container,
                    MetricNames.RECEIVED_COUNT,
                    float(self._acc_b_arrivals[g]),
                )
                metrics.add_counter(
                    name, instance, container,
                    MetricNames.EXECUTE_COUNT,
                    float(self._acc_b_processed[g]),
                )
                metrics.add_counter(
                    name, instance, container,
                    MetricNames.EMIT_COUNT, float(self._acc_b_emitted[g]),
                )
                metrics.add_counter(
                    name, instance, container,
                    MetricNames.FAIL_COUNT, float(self._acc_b_failed[g]),
                )
                metrics.add_gauge_integral(
                    name, instance, container,
                    MetricNames.MEMORY_BYTES, float(self._acc_b_memory[g]),
                )
                metrics.add_gauge_integral(
                    name, instance, container,
                    MetricNames.QUEUE_LATENCY_MS,
                    float(self._acc_b_latency[g]),
                )
                for stream_name, base in stream_slots:
                    metrics.add_counter(
                        name, instance, container,
                        MetricNames.stream_emit(stream_name),
                        float(self._acc_b_streams[base + i]),
                    )
                metrics.add_gauge_integral(
                    name, instance, container,
                    MetricNames.PENDING_BYTES, float(self._acc_b_pending[g]),
                )
                metrics.add_gauge_integral(
                    name, instance, container,
                    MetricNames.CPU_LOAD, float(self._acc_b_cpu[g]),
                )
                metrics.add_backpressure_ms(
                    name, instance, container, float(self._acc_b_bpms[g]),
                )
        self._reset_accumulators()

    def _reset_accumulators(self) -> None:
        self._acc_sp2d.fill(0.0)
        self._acc_sp_streams.fill(0.0)
        self._acc_b2d.fill(0.0)
        self._acc_b_streams.fill(0.0)

    # ------------------------------------------------------------------
    # Batched minute flush (steady-state fast path)
    # ------------------------------------------------------------------
    def _fast_flush_ready(self) -> bool:
        if self._flush_plan is None or self.metrics.has_blackouts:
            return False
        store = self.metrics.store
        return (
            store.supports_batched_appends()
            and store.data_version(self.topology.name) == self._store_token
        )

    def _fast_flush(self) -> None:
        """Write the closing minute straight into the store, batched.

        Produces values bit-identical to the keyed slow path: counter
        buffers hold ``0.0 + total`` (== total for the non-negative
        totals involved), gauges divide their integral by 60, and
        backpressure clamps at one minute.
        """
        plan = self._flush_plan
        out = plan["out"]
        for positions, gather, src in plan["counters"]:
            out[positions] = src[gather]
        for positions, gather, src in plan["gauges"]:
            out[positions] = src[gather] / _MINUTE
        bp_positions, bp_gather = plan["bolt_bp"]
        if bp_positions is not None:
            out[bp_positions] = np.minimum(
                self._acc_b_bpms[bp_gather], _MINUTE * 1000.0
            )
        if plan["zero_positions"] is not None:
            out[plan["zero_positions"]] = 0.0
        out[plan["topo_position"]] = min(
            self.metrics.topology_backpressure_ms, _MINUTE * 1000.0
        )
        store = self.metrics.store
        store.append_minute_batch(
            plan["batch"],
            self.metrics.minute_start,
            out.tolist(),
            topology=self.topology.name,
        )
        self._store_token = store.data_version(self.topology.name)
        self._reset_accumulators()

    def _maybe_build_flush_plan(self) -> None:
        """(Re)compile the batched flush plan after a keyed slow flush.

        Only possible when every series the plan covers exists in the
        store (i.e. the minute just flushed was complete — no blackouts)
        and the store's batched path is byte-equivalent.
        """
        metrics = self.metrics
        store = metrics.store
        if metrics.has_blackouts or not store.supports_batched_appends():
            return
        token = store.data_version(self.topology.name)
        if self._flush_plan is not None and token == self._store_token:
            return
        topo = self.topology.name
        keys: list[MetricKey] = []
        counter_specs: dict[int, tuple[np.ndarray, list, list]] = {}
        gauge_specs: dict[int, tuple[np.ndarray, list, list]] = {}

        def add(specs, src, position, arena_index):
            entry = specs.get(id(src))
            if entry is None:
                entry = (src, [], [])
                specs[id(src)] = entry
            entry[1].append(position)
            entry[2].append(arena_index)

        zero_positions: list[int] = []
        bp_positions: list[int] = []
        bp_gather: list[int] = []
        for name in self._order:
            labels = self._minute_labels[name]
            spout = self._spouts.get(name)
            if spout is not None:
                stream_slots = self._sp_stream_slots[name]
                for i, (instance, container) in enumerate(labels):
                    g = spout.start + i
                    tags = {
                        "topology": topo,
                        "component": name,
                        "instance": instance,
                        "container": container,
                    }
                    add(counter_specs, self._acc_sp_source, len(keys), g)
                    keys.append(MetricKey.of(MetricNames.SOURCE_COUNT, tags))
                    add(counter_specs, self._acc_sp_fetched, len(keys), g)
                    keys.append(MetricKey.of(MetricNames.EXECUTE_COUNT, tags))
                    add(counter_specs, self._acc_sp_emitted, len(keys), g)
                    keys.append(MetricKey.of(MetricNames.EMIT_COUNT, tags))
                    for stream_name, base in stream_slots:
                        add(
                            counter_specs, self._acc_sp_streams,
                            len(keys), base + i,
                        )
                        keys.append(
                            MetricKey.of(
                                MetricNames.STREAM_EMIT_COUNT,
                                {**tags, "stream": stream_name},
                            )
                        )
                    add(gauge_specs, self._acc_sp_backlog, len(keys), g)
                    keys.append(
                        MetricKey.of(MetricNames.BACKLOG_TUPLES, tags)
                    )
                    add(gauge_specs, self._acc_sp_cpu, len(keys), g)
                    keys.append(MetricKey.of(MetricNames.CPU_LOAD, tags))
                    zero_positions.append(len(keys))
                    keys.append(
                        MetricKey.of(MetricNames.BACKPRESSURE_TIME_MS, tags)
                    )
                continue
            bolt = self._bolts[name]
            stream_slots = self._b_stream_slots[name]
            for i, (instance, container) in enumerate(labels):
                g = bolt.start + i
                tags = {
                    "topology": topo,
                    "component": name,
                    "instance": instance,
                    "container": container,
                }
                add(counter_specs, self._acc_b_arrivals, len(keys), g)
                keys.append(MetricKey.of(MetricNames.RECEIVED_COUNT, tags))
                add(counter_specs, self._acc_b_processed, len(keys), g)
                keys.append(MetricKey.of(MetricNames.EXECUTE_COUNT, tags))
                add(counter_specs, self._acc_b_emitted, len(keys), g)
                keys.append(MetricKey.of(MetricNames.EMIT_COUNT, tags))
                add(counter_specs, self._acc_b_failed, len(keys), g)
                keys.append(MetricKey.of(MetricNames.FAIL_COUNT, tags))
                for stream_name, base in stream_slots:
                    add(
                        counter_specs, self._acc_b_streams,
                        len(keys), base + i,
                    )
                    keys.append(
                        MetricKey.of(
                            MetricNames.STREAM_EMIT_COUNT,
                            {**tags, "stream": stream_name},
                        )
                    )
                add(gauge_specs, self._acc_b_memory, len(keys), g)
                keys.append(MetricKey.of(MetricNames.MEMORY_BYTES, tags))
                add(gauge_specs, self._acc_b_latency, len(keys), g)
                keys.append(
                    MetricKey.of(MetricNames.QUEUE_LATENCY_MS, tags)
                )
                add(gauge_specs, self._acc_b_pending, len(keys), g)
                keys.append(MetricKey.of(MetricNames.PENDING_BYTES, tags))
                add(gauge_specs, self._acc_b_cpu, len(keys), g)
                keys.append(MetricKey.of(MetricNames.CPU_LOAD, tags))
                bp_positions.append(len(keys))
                bp_gather.append(g)
                keys.append(
                    MetricKey.of(MetricNames.BACKPRESSURE_TIME_MS, tags)
                )
        topo_position = len(keys)
        keys.append(
            MetricKey.of(
                MetricNames.TOPOLOGY_BACKPRESSURE_TIME_MS,
                {"topology": topo},
            )
        )
        try:
            batch = store.make_minute_batch(keys)
        except MetricsError:
            # Some series are missing (e.g. the first minute overlapped
            # a blackout); retry after a later complete slow flush.
            self._flush_plan = None
            return

        def finalize(specs):
            return [
                (
                    np.array(positions, dtype=np.intp),
                    np.array(gather, dtype=np.intp),
                    src,
                )
                for src, positions, gather in specs.values()
            ]

        self._flush_plan = {
            "batch": batch,
            "out": np.empty(len(keys)),
            "counters": finalize(counter_specs),
            "gauges": finalize(gauge_specs),
            "bolt_bp": (
                (
                    np.array(bp_positions, dtype=np.intp),
                    np.array(bp_gather, dtype=np.intp),
                )
                if bp_positions else (None, None)
            ),
            "zero_positions": (
                np.array(zero_positions, dtype=np.intp)
                if zero_positions else None
            ),
            "topo_position": topo_position,
        }
        self._store_token = token
