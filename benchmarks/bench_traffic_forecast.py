"""Traffic forecasting quality (Section IV-A, unevaluated in the paper).

The paper delegates the Prophet evaluation to its own literature; this
bench quantifies what the paper asserts qualitatively: "a simple
statistical model is not able to predict ... strongly seasonal traffic
rates", while the Prophet-style model is.  It backtests both models on
synthetic seasonal spout traffic (daily + weekly shape with trend and
noise) and on a stable flat profile, and also compares the aggregate vs
per-instance modes.
"""

from __future__ import annotations

import numpy as np

from repro.forecasting import (
    ProphetLite,
    Seasonality,
    SummaryForecaster,
    rolling_origin_backtest,
)
from repro.timeseries.series import TimeSeries

MINUTE = 60
DAY_MINUTES = 1440


def seasonal_traffic(days=14, seed=0):
    rng = np.random.default_rng(seed)
    n = days * DAY_MINUTES // 10
    t = np.arange(n) * 10 * MINUTE
    day = 86_400
    y = (
        5e6
        + 2e6 * np.sin(2 * np.pi * t / day)
        + 0.6e6 * np.sin(2 * np.pi * t / (7 * day))
        + 1.5 * t / 60
        + rng.normal(0, 0.2e6, n)
    )
    return TimeSeries(t, np.maximum(0, y))


def flat_traffic(days=14, seed=1):
    rng = np.random.default_rng(seed)
    n = days * DAY_MINUTES // 10
    t = np.arange(n) * 10 * MINUTE
    return TimeSeries(t, 5e6 + rng.normal(0, 0.2e6, n))


def make_prophet():
    return ProphetLite(
        seasonalities=[Seasonality.daily(4), Seasonality.weekly(2)],
        n_changepoints=8,
    )


def make_summary():
    return SummaryForecaster("mean", window=DAY_MINUTES // 10)


def bench_traffic_forecast(benchmark, report):
    seasonal = seasonal_traffic()
    flat = flat_traffic()
    horizon = DAY_MINUTES // 10  # one day ahead
    initial = 7 * DAY_MINUTES // 10

    results = {}
    for name, series in (("seasonal", seasonal), ("flat", flat)):
        for model_name, factory in (
            ("prophet-lite", make_prophet),
            ("stats-summary", make_summary),
        ):
            results[(name, model_name)] = rolling_origin_backtest(
                factory, series, initial_train=initial, horizon=horizon,
                stride=horizon,
            )

    # Benchmark one fit+forecast — the latency one API request pays.
    def one_forecast():
        model = make_prophet()
        model.fit(seasonal)
        return model.forecast(horizon)

    benchmark(one_forecast)

    lines = [
        "Traffic forecast quality (rolling-origin, 1-day horizon)",
        "paper claim: seasonal traffic defeats simple statistics; the",
        "Prophet-style model handles it.",
        "",
        f"{'traffic':>10} {'model':>14} {'sMAPE':>8} {'MAPE':>8} "
        f"{'coverage':>9}",
    ]
    for (traffic, model_name), res in sorted(results.items()):
        lines.append(
            f"{traffic:>10} {model_name:>14} {res.smape * 100:>7.1f}% "
            f"{res.mape * 100:>7.1f}% {res.coverage * 100:>8.1f}%"
        )
    report("traffic_forecast", lines)

    # Who wins: Prophet on seasonal traffic, parity (or summary) on flat.
    assert (
        results[("seasonal", "prophet-lite")].smape
        < results[("seasonal", "stats-summary")].smape / 2
    )
    assert results[("flat", "stats-summary")].smape < 0.10
