"""Service-level fault injection: the storage layer misbehaving.

PR 1's fault plans model the *observed cluster* failing; these faults
model the *modelling service's own* storage failing, and drive the
durability subsystem's recovery tests:

``torn_write``
    The process dies mid-append: only a prefix of the framed record
    reaches the file.  Replay must skip the torn tail and recover every
    earlier record.
``fsync_error``
    ``fsync`` fails (a dying disk, a full journal): the append is not
    durable, so the write must fail rather than be acknowledged.
``disk_full``
    The write itself fails with ``ENOSPC`` before any bytes land.

Faults trigger on the Nth append (1-based), counted across the life of
the injector, making every schedule deterministic.  The injector is
handed to :class:`~repro.durability.wal.WriteAheadLog` (via
``DurableMetricsStore(faults=...)``) which consults it on every append
and fsync.
"""

from __future__ import annotations

import errno
import threading
from dataclasses import dataclass

from repro.errors import FaultError

__all__ = [
    "KIND_TORN_WRITE",
    "KIND_FSYNC_ERROR",
    "KIND_DISK_FULL",
    "SERVICE_KINDS",
    "ServiceFault",
    "ServiceFaultInjector",
    "parse_service_fault_spec",
]

KIND_TORN_WRITE = "torn_write"
KIND_FSYNC_ERROR = "fsync_error"
KIND_DISK_FULL = "disk_full"
SERVICE_KINDS = (KIND_TORN_WRITE, KIND_FSYNC_ERROR, KIND_DISK_FULL)


@dataclass(frozen=True)
class ServiceFault:
    """One scheduled storage fault.

    ``at_append`` is the 1-based index of the WAL append the fault
    strikes; ``keep_bytes`` (torn writes only) is how many bytes of the
    frame actually reach the file before the simulated crash — the
    default tears mid-header, the nastiest case.
    """

    kind: str
    at_append: int
    keep_bytes: int = 6

    def __post_init__(self) -> None:
        if self.kind not in SERVICE_KINDS:
            raise FaultError(
                f"unknown service fault kind {self.kind!r}; "
                f"known: {SERVICE_KINDS}"
            )
        if self.at_append < 1:
            raise FaultError("at_append is 1-based and must be >= 1")
        if self.keep_bytes < 0:
            raise FaultError("keep_bytes must be non-negative")


class ServiceFaultInjector:
    """Deterministic storage-fault schedule consulted by the WAL.

    Thread-safe: the WAL may be appended from several handler threads.
    Each fault fires exactly once.
    """

    def __init__(self, faults: list[ServiceFault] | tuple[ServiceFault, ...]) -> None:
        self._lock = threading.Lock()
        self._faults = sorted(faults, key=lambda f: f.at_append)
        seen = set()
        for fault in self._faults:
            if fault.at_append in seen:
                raise FaultError(
                    f"two service faults scheduled at append "
                    f"{fault.at_append}"
                )
            seen.add(fault.at_append)
        self._appends = 0
        self._pending_torn: ServiceFault | None = None
        self.fired: list[ServiceFault] = []

    def _take(self, kind: str) -> ServiceFault | None:
        """Pop the due fault of ``kind``, if one is scheduled.

        Due means ``at_append <= appends so far`` — an ``fsync_error``
        scheduled at append N fires on the first fsync at or after it
        (under ``fsync=interval`` the flush may lag the append).
        """
        for fault in self._faults:
            if fault.at_append <= self._appends and fault.kind == kind:
                self._faults.remove(fault)
                self.fired.append(fault)
                return fault
        return None

    # ------------------------------------------------------------------
    # Hooks the WAL calls (in append order: write → torn → fsync)
    # ------------------------------------------------------------------
    def before_write(self, nbytes: int) -> None:
        """Called before the frame is written; may raise ``ENOSPC``."""
        with self._lock:
            self._appends += 1
            if self._take(KIND_DISK_FULL) is not None:
                raise OSError(errno.ENOSPC, "injected disk-full fault")
            self._pending_torn = self._take(KIND_TORN_WRITE)

    def torn_prefix(self, frame: bytes) -> bytes | None:
        """The partial frame to persist for a torn write, else ``None``."""
        with self._lock:
            fault = self._pending_torn
            self._pending_torn = None
        if fault is None:
            return None
        return frame[: min(fault.keep_bytes, len(frame) - 1)]

    def before_fsync(self) -> None:
        """Called before ``fsync``; may raise ``EIO``."""
        with self._lock:
            if self._take(KIND_FSYNC_ERROR) is not None:
                raise OSError(errno.EIO, "injected fsync fault")


def parse_service_fault_spec(spec: str) -> list[ServiceFault]:
    """Parse ``"kind@append[,kind@append...]"`` into fault objects.

    The textual form lets fault schedules cross a process boundary —
    the chaos harness hands ``--service-faults torn_write@7`` to a
    spawned shard worker.  Malformed entries (and an empty spec) raise
    :class:`~repro.errors.FaultError` with the offending fragment.
    """
    faults: list[ServiceFault] = []
    for fragment in spec.split(","):
        fragment = fragment.strip()
        if not fragment:
            continue
        kind, separator, raw_append = fragment.partition("@")
        if not separator:
            raise FaultError(
                f"service fault {fragment!r} must look like kind@append"
            )
        try:
            at_append = int(raw_append)
        except ValueError:
            raise FaultError(
                f"service fault {fragment!r} has a non-integer append "
                f"index {raw_append!r}"
            ) from None
        faults.append(ServiceFault(kind=kind.strip(), at_append=at_append))
    if not faults:
        raise FaultError(f"service fault spec {spec!r} names no faults")
    return faults
