"""Shard process lifecycle: spawn, watch, restart, stop.

A shard is one ``caladrius serve`` worker process bound to a private
data directory (and, when replication is on, one follower process its
WAL segments ship to).  :class:`ShardManager` owns the whole fleet:

* **spawn** — start follower (first, so the worker has somewhere to
  ship) then worker, parse the announce line for the ephemeral port,
  then probe ``/readyz`` until the worker admits traffic;
* **supervise** — a monitor thread polls the processes; a worker that
  dies (``kill -9``, OOM, crash) is respawned on the *same* data
  directory, so WAL replay recovers every acknowledged write.  While it
  replays, the shard reports ``restarting`` and the router answers 503
  + ``Retry-After`` for its topologies;
* **resize** — growing the fleet spawns new shard ids, shrinking drains
  and stops the highest ids; surviving ids keep their data directories
  and ring points;
* **stop** — SIGTERM every process (workers drain and checkpoint),
  escalating to SIGKILL after a bound.

Everything here is transport-free; the HTTP front door lives in
:mod:`repro.cluster.router`.
"""

from __future__ import annotations

import logging
import re
import signal
import subprocess
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import IO, Any

from repro.api.client import CaladriusClient
from repro.errors import ReproError

__all__ = [
    "ShardManager",
    "ShardHandle",
    "ClusterError",
    "STARTING",
    "READY",
    "RESTARTING",
    "FAILED",
    "STOPPED",
]

logger = logging.getLogger("repro.cluster.shard")

STARTING = "starting"
READY = "ready"
RESTARTING = "restarting"
FAILED = "failed"
STOPPED = "stopped"

_ANNOUNCE = re.compile(r"serving on ([\d.]+):(\d+)")
#: A worker that dies this quickly after becoming ready is crash-looping.
_MIN_HEALTHY_UPTIME = 2.0
#: Consecutive rapid deaths before the manager gives up on a shard.
_MAX_RAPID_RESTARTS = 5


class ClusterError(ReproError):
    """A cluster-tier operation failed."""


def _drain(stream: IO[str] | None, sink: list[str] | None = None) -> None:
    """Read a child's pipe to EOF so it never blocks on a full buffer."""
    if stream is None:
        return
    try:
        for line in stream:
            if sink is not None:
                sink.append(line)
                del sink[:-50]  # keep the tail for error reports
    except (OSError, ValueError):
        pass


@dataclass
class _Child:
    """One spawned process plus its parsed announce address."""

    process: subprocess.Popen
    port: int
    stderr_tail: list[str]


def _spawn_announced(
    argv: list[str],
    announce_timeout: float,
    env: dict[str, str] | None = None,
) -> _Child:
    """Start ``argv`` and wait for its ``… serving on host:port`` line."""
    process = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    stderr_tail: list[str] = []
    threading.Thread(
        target=_drain, args=(process.stderr, stderr_tail), daemon=True
    ).start()
    deadline = time.monotonic() + announce_timeout
    while time.monotonic() < deadline:
        assert process.stdout is not None
        line = process.stdout.readline()
        if line:
            match = _ANNOUNCE.search(line)
            if match:
                port = int(match.group(2))
                threading.Thread(
                    target=_drain, args=(process.stdout,), daemon=True
                ).start()
                return _Child(process, port, stderr_tail)
        elif process.poll() is not None:
            break
        else:
            time.sleep(0.01)
    tail = "".join(stderr_tail[-10:])
    if process.poll() is None:
        process.kill()
        process.wait(timeout=10)
    raise ClusterError(
        f"process {argv[:4]}… never announced a port within "
        f"{announce_timeout:.0f}s\n{tail}"
    )


def _terminate(
    process: subprocess.Popen, timeout: float, label: str
) -> int | None:
    """SIGTERM then (after ``timeout``) SIGKILL; returns the exit code."""
    if process.poll() is not None:
        return process.returncode
    try:
        process.send_signal(signal.SIGTERM)
    except (ProcessLookupError, OSError):
        return process.poll()
    try:
        return process.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        logger.warning("%s ignored SIGTERM for %.1fs; killing", label, timeout)
        process.kill()
        return process.wait(timeout=10)


class ShardHandle:
    """Mutable supervision state for one shard (guarded by the manager)."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.state = STARTING
        self.worker: _Child | None = None
        self.follower: _Child | None = None
        self.restarts = 0
        self.rapid_deaths = 0
        self.became_ready: float | None = None
        self.last_error: str | None = None

    def status(self) -> dict[str, Any]:
        """JSON shape for ``/cluster/stats`` and ``/cluster/ring``."""
        payload: dict[str, Any] = {
            "shard_id": self.shard_id,
            "state": self.state,
            "restarts": self.restarts,
        }
        if self.worker is not None:
            payload["port"] = self.worker.port
            payload["pid"] = self.worker.process.pid
        if self.follower is not None:
            payload["follower_port"] = self.follower.port
            payload["follower_pid"] = self.follower.process.pid
        if self.last_error:
            payload["last_error"] = self.last_error
        return payload


class ShardManager:
    """Spawns and supervises the worker (and follower) processes.

    Parameters
    ----------
    worker_argv:
        ``(shard_id, ship_to)`` → the worker's command line.  ``ship_to``
        is ``"host:port"`` of the shard's follower, or ``None``.
    follower_argv:
        ``shard_id`` → the follower's command line, or ``None`` to run
        without replication.
    host:
        Address the workers bind (they announce their ephemeral port).
    ready_timeout / announce_timeout:
        Bounds on worker boot: announce covers process start + WAL
        replay, ready covers the ``/readyz`` probe after that.
    restart_backoff_seconds:
        Delay before respawning a dead worker.
    """

    def __init__(
        self,
        worker_argv: Callable[[int, str | None], list[str]],
        follower_argv: Callable[[int], list[str]] | None = None,
        host: str = "127.0.0.1",
        ready_timeout: float = 60.0,
        announce_timeout: float = 120.0,
        restart_backoff_seconds: float = 0.2,
        poll_interval_seconds: float = 0.1,
    ) -> None:
        self._worker_argv = worker_argv
        self._follower_argv = follower_argv
        self.host = host
        self.ready_timeout = ready_timeout
        self.announce_timeout = announce_timeout
        self.restart_backoff_seconds = restart_backoff_seconds
        self.poll_interval_seconds = poll_interval_seconds
        self._lock = threading.RLock()
        self._handles: dict[int, ShardHandle] = {}
        self._version = 0
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Fleet lifecycle
    # ------------------------------------------------------------------
    def start(self, shards: int) -> None:
        """Boot ``shards`` workers (and followers) and start supervising."""
        if shards < 1:
            raise ClusterError("a cluster needs at least one shard")
        with self._lock:
            if self._handles:
                raise ClusterError("cluster already started")
            for shard_id in range(shards):
                self._handles[shard_id] = ShardHandle(shard_id)
        for shard_id in range(shards):
            self._boot_shard(shard_id)
        self._version += 1
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="cluster-monitor", daemon=True
        )
        self._monitor.start()

    def _boot_shard(self, shard_id: int) -> None:
        """Start follower (if any) then worker, then wait for readiness."""
        handle = self._handles[shard_id]
        try:
            ship_to = None
            if self._follower_argv is not None and handle.follower is None:
                follower = _spawn_announced(
                    self._follower_argv(shard_id), self.announce_timeout
                )
                handle.follower = follower
            if handle.follower is not None:
                ship_to = f"{self.host}:{handle.follower.port}"
            child = _spawn_announced(
                self._worker_argv(shard_id, ship_to), self.announce_timeout
            )
            with self._lock:
                handle.worker = child
            client = CaladriusClient(
                self.host, child.port, timeout=5.0, retries=0
            )
            client.wait_ready(timeout=self.ready_timeout)
            client.close()
            with self._lock:
                handle.state = READY
                handle.became_ready = time.monotonic()
                handle.last_error = None
        except ReproError as exc:
            with self._lock:
                handle.state = FAILED
                handle.last_error = str(exc)
            raise

    def resize(self, shards: int) -> dict[str, Any]:
        """Grow or shrink the fleet; returns what changed.

        Surviving shard ids keep their processes, data directories and
        ring points, so consistent hashing moves only the topologies
        that must move.  No data migration happens here: a topology
        whose owner changes starts with an empty metrics window on the
        new owner (the old owner's data directory keeps the history).
        """
        if shards < 1:
            raise ClusterError("a cluster needs at least one shard")
        with self._lock:
            current = sorted(self._handles)
            added = [i for i in range(shards) if i not in self._handles]
            removed = [i for i in current if i >= shards]
            for shard_id in added:
                self._handles[shard_id] = ShardHandle(shard_id)
        for shard_id in added:
            self._boot_shard(shard_id)
        for shard_id in removed:
            with self._lock:
                handle = self._handles.pop(shard_id)
                handle.state = STOPPED
            self._stop_handle(handle, timeout=30.0)
        with self._lock:
            self._version += 1
        return {"added": added, "removed": removed, "shards": self.shard_ids()}

    def stop_all(self, timeout: float = 30.0) -> None:
        """SIGTERM the whole fleet (workers drain + checkpoint), then kill."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5)
            self._monitor = None
        with self._lock:
            handles = list(self._handles.values())
            for handle in handles:
                handle.state = STOPPED
        for handle in handles:
            self._stop_handle(handle, timeout)

    def _stop_handle(self, handle: ShardHandle, timeout: float) -> None:
        if handle.worker is not None:
            _terminate(
                handle.worker.process, timeout, f"shard-{handle.shard_id}"
            )
        if handle.follower is not None:
            _terminate(
                handle.follower.process,
                timeout,
                f"follower-{handle.shard_id}",
            )

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stopping.wait(self.poll_interval_seconds):
            with self._lock:
                dead = [
                    handle
                    for handle in self._handles.values()
                    if handle.state == READY
                    and handle.worker is not None
                    and handle.worker.process.poll() is not None
                ]
                for handle in dead:
                    uptime = (
                        time.monotonic() - handle.became_ready
                        if handle.became_ready is not None
                        else 0.0
                    )
                    handle.rapid_deaths = (
                        handle.rapid_deaths + 1
                        if uptime < _MIN_HEALTHY_UPTIME
                        else 0
                    )
                    handle.state = RESTARTING
                    handle.restarts += 1
                    handle.last_error = (
                        f"worker exited with {handle.worker.process.returncode}"
                    )
            for handle in dead:
                if self._stopping.is_set():
                    return
                if handle.rapid_deaths > _MAX_RAPID_RESTARTS:
                    with self._lock:
                        handle.state = FAILED
                        handle.last_error = (
                            "crash loop: worker died "
                            f"{handle.rapid_deaths} times within "
                            f"{_MIN_HEALTHY_UPTIME:.0f}s of becoming ready"
                        )
                    logger.error(
                        "shard %d is crash-looping; giving up",
                        handle.shard_id,
                    )
                    continue
                logger.warning(
                    "shard %d died (%s); respawning on its data dir",
                    handle.shard_id,
                    handle.last_error,
                )
                time.sleep(self.restart_backoff_seconds)
                try:
                    self._boot_shard(handle.shard_id)
                    with self._lock:
                        self._version += 1
                except ReproError:
                    logger.exception(
                        "shard %d failed to restart", handle.shard_id
                    )

    # ------------------------------------------------------------------
    # Introspection (the router reads these)
    # ------------------------------------------------------------------
    def shard_ids(self) -> list[int]:
        """Current member ids (the ring is built from these)."""
        with self._lock:
            return sorted(self._handles)

    @property
    def version(self) -> int:
        """Bumped on membership, address or recovery changes."""
        with self._lock:
            return self._version

    def handle(self, shard_id: int) -> ShardHandle | None:
        with self._lock:
            return self._handles.get(shard_id)

    def address_of(self, shard_id: int) -> tuple[str, int] | None:
        """``(host, port)`` when the shard is ready, else ``None``."""
        with self._lock:
            handle = self._handles.get(shard_id)
            if (
                handle is None
                or handle.state != READY
                or handle.worker is None
            ):
                return None
            return self.host, handle.worker.port

    def state_of(self, shard_id: int) -> str | None:
        with self._lock:
            handle = self._handles.get(shard_id)
            return None if handle is None else handle.state

    def all_ready(self) -> bool:
        with self._lock:
            return bool(self._handles) and all(
                h.state == READY for h in self._handles.values()
            )

    def statuses(self) -> list[dict[str, Any]]:
        with self._lock:
            return [
                self._handles[shard_id].status()
                for shard_id in sorted(self._handles)
            ]
