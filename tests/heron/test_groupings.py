"""Tests for stream groupings and key distributions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.heron.groupings import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    KeyDistribution,
    ShuffleGrouping,
    grouping_from_name,
    stable_hash,
)


@pytest.fixture()
def uniform_keys() -> KeyDistribution:
    return KeyDistribution.uniform([f"key{i}" for i in range(1000)])


class TestKeyDistribution:
    def test_uniform_weights_sum_to_one(self, uniform_keys):
        assert np.isclose(uniform_keys.normalised_weights().sum(), 1.0)

    def test_zipf_is_rank_decreasing(self):
        kd = KeyDistribution.zipf(["a", "b", "c"], exponent=1.0)
        w = kd.normalised_weights()
        assert w[0] > w[1] > w[2]

    def test_zipf_exponent_zero_is_uniform(self):
        kd = KeyDistribution.zipf(["a", "b", "c"], exponent=0.0)
        assert np.allclose(kd.normalised_weights(), 1.0 / 3.0)

    def test_validation(self):
        with pytest.raises(TopologyError):
            KeyDistribution((), ())
        with pytest.raises(TopologyError):
            KeyDistribution(("a",), (-1.0,))
        with pytest.raises(TopologyError):
            KeyDistribution(("a", "b"), (1.0,))
        with pytest.raises(TopologyError):
            KeyDistribution(("a",), (0.0,))

    def test_shares_mod_sums_to_one(self, uniform_keys):
        for p in (1, 2, 3, 7):
            assert np.isclose(uniform_keys.shares_mod(p).sum(), 1.0)

    def test_diverse_keys_give_balanced_shares(self, uniform_keys):
        shares = uniform_keys.shares_mod(4)
        assert shares.max() < 0.30  # near 0.25 for 1000 uniform keys

    def test_skewed_keys_give_imbalanced_shares(self):
        kd = KeyDistribution(("hot", "cold"), (0.9, 0.1))
        shares = kd.shares_mod(2)
        assert shares.max() >= 0.9

    def test_imbalance_metric(self, uniform_keys):
        assert uniform_keys.imbalance(1) == pytest.approx(1.0)
        assert uniform_keys.imbalance(4) >= 1.0


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("word") == stable_hash("word")

    def test_spreads_keys(self):
        buckets = {stable_hash(f"key{i}") % 8 for i in range(100)}
        assert len(buckets) == 8


class TestShuffle:
    def test_even_shares(self):
        shares = ShuffleGrouping().shares(4)
        assert np.allclose(shares, 0.25)

    def test_parallelism_one(self):
        assert ShuffleGrouping().shares(1).tolist() == [1.0]

    def test_invalid_parallelism(self):
        with pytest.raises(TopologyError):
            ShuffleGrouping().shares(0)


class TestFields:
    def test_requires_fields(self, uniform_keys):
        with pytest.raises(TopologyError, match="at least one field"):
            FieldsGrouping([], uniform_keys)

    def test_shares_follow_distribution(self, uniform_keys):
        grouping = FieldsGrouping(["word"], uniform_keys)
        assert np.allclose(
            grouping.shares(3), uniform_keys.shares_mod(3)
        )

    def test_equality(self, uniform_keys):
        a = FieldsGrouping(["word"], uniform_keys)
        b = FieldsGrouping(["word"], uniform_keys)
        assert a == b
        assert a != ShuffleGrouping()


class TestOtherGroupings:
    def test_all_grouping_replicates(self):
        shares = AllGrouping().shares(3)
        assert shares.tolist() == [1.0, 1.0, 1.0]
        assert AllGrouping().amplification() == 1.0

    def test_global_grouping_targets_first(self):
        shares = GlobalGrouping().shares(3)
        assert shares.tolist() == [1.0, 0.0, 0.0]


class TestFactory:
    def test_simple_names(self):
        assert isinstance(grouping_from_name("shuffle"), ShuffleGrouping)
        assert isinstance(grouping_from_name("all"), AllGrouping)
        assert isinstance(grouping_from_name("global"), GlobalGrouping)

    def test_fields_needs_arguments(self, uniform_keys):
        with pytest.raises(TopologyError, match="needs both"):
            grouping_from_name("fields")
        grouping = grouping_from_name(
            "fields", fields=["w"], key_distribution=uniform_keys
        )
        assert isinstance(grouping, FieldsGrouping)

    def test_unknown_name(self):
        with pytest.raises(TopologyError, match="unknown grouping"):
            grouping_from_name("magic")


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@given(
    n_keys=st.integers(min_value=1, max_value=200),
    parallelism=st.integers(min_value=1, max_value=16),
    exponent=st.floats(min_value=0.0, max_value=2.0),
)
def test_property_fields_shares_form_distribution(n_keys, parallelism, exponent):
    kd = KeyDistribution.zipf([f"k{i}" for i in range(n_keys)], exponent)
    shares = kd.shares_mod(parallelism)
    assert shares.shape == (parallelism,)
    assert np.all(shares >= 0)
    assert np.isclose(shares.sum(), 1.0)


@given(parallelism=st.integers(min_value=1, max_value=64))
def test_property_partitioning_groupings_sum_to_one(parallelism):
    for grouping in (ShuffleGrouping(), GlobalGrouping()):
        assert np.isclose(grouping.shares(parallelism).sum(), 1.0)


@given(parallelism=st.integers(min_value=1, max_value=32))
def test_property_all_grouping_amplifies_by_p(parallelism):
    assert AllGrouping().shares(parallelism).sum() == parallelism
