"""Calibrate-once / evaluate-many plan-sweep engine.

Three layers (ROADMAP: "score many candidate packing plans per query"):

* :class:`~repro.sweep.artifact.CalibrationArtifact` — immutable,
  pickleable product of one calibration pass;
* :func:`~repro.sweep.kernel.evaluate_plans` — vectorized batch kernel,
  bitwise identical to the one-at-a-time path;
* :func:`~repro.sweep.pool.validate_plans` — process-pool fan-out for
  simulator-backed validation with deterministic per-plan seeds;

orchestrated by :class:`~repro.sweep.engine.PlanSweepEngine`.
"""

from repro.sweep.artifact import CalibrationArtifact
from repro.sweep.engine import PlanSweepEngine
from repro.sweep.kernel import estimate_plan_cpu, evaluate_plans
from repro.sweep.pool import ValidationSpec, plan_seed, validate_plans

__all__ = [
    "CalibrationArtifact",
    "PlanSweepEngine",
    "evaluate_plans",
    "estimate_plan_cpu",
    "ValidationSpec",
    "plan_seed",
    "validate_plans",
]
