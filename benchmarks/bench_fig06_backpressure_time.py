"""Fig. 6: instance backpressure time vs instance source throughput.

Paper finding: backpressure time per minute is ~0 below the saturation
point (~11 M tuples/minute) and "rises steeply from 0 to around 60000
milliseconds (1 minute) after it is triggered" — the bimodality that
justifies the paper's 0-or-1 backpressure assumption.
"""

from __future__ import annotations

from repro.experiments import figures


def bench_fig06_backpressure_time(benchmark, instance_sweep, report):
    result = benchmark(figures.fig06_backpressure, True, instance_sweep)

    lines = [
        "Fig. 6 — backpressure time (ms/min) vs source throughput",
        "paper   : 0 below SP; jumps steeply to ~60000 above",
        f"measured: {result['mean_below_sp_ms']:.0f} ms below SP; "
        f"{result['mean_above_sp_ms']:.0f} ms above "
        f"(SP = {result['measured_sp_tpm'] / 1e6:.1f}M)",
        "",
        f"{'source':>10} {'bp ms':>10}",
    ]
    for rate, ms in zip(result["rate"], result["backpressure_ms"]):
        lines.append(f"{rate / 1e6:>9.1f}M {ms:>10.0f}")
    report("fig06_backpressure_time", lines)

    assert result["mean_below_sp_ms"] < 500.0
    assert result["mean_above_sp_ms"] > 40_000.0
