"""YAML configuration loading and validation."""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import yaml

from repro.errors import ConfigError

__all__ = [
    "CaladriusConfig",
    "ClusterConfig",
    "DurabilityConfig",
    "IngestConfig",
    "ServingConfig",
    "load_config",
]

_KNOWN_TRAFFIC_MODELS = (
    "prophet",
    "prophet-per-instance",
    "stats-summary",
    "holt-winters",
)
_KNOWN_PERFORMANCE_MODELS = (
    "throughput-prediction",
    "backpressure-evaluation",
)


@dataclass(frozen=True)
class ServingConfig:
    """Serving-layer settings (cache, admission control, precompute).

    ``enabled`` switches the whole layer off (every request recomputes,
    the pre-serving behaviour).  ``cache_mb`` bounds the result cache in
    megabytes and ``ttl_seconds`` the lifetime of an entry;
    ``max_concurrent``/``max_queue`` bound the admission gate;
    ``precompute_top_k`` is how many popular queries are re-warmed per
    invalidation; ``job_result_ttl_seconds`` is how long a finished
    async job's result stays pollable.
    """

    enabled: bool = True
    cache_mb: float = 64.0
    ttl_seconds: float | None = 300.0
    max_concurrent: int = 4
    max_queue: int = 32
    precompute_top_k: int = 8
    job_result_ttl_seconds: float = 60.0

    @property
    def cache_bytes(self) -> int:
        """The cache budget in bytes."""
        return int(self.cache_mb * 1024 * 1024)


@dataclass(frozen=True)
class DurabilityConfig:
    """Durable-state and lifecycle settings.

    ``data_dir`` switches durability on: metrics writes are journaled
    to a write-ahead log there and recovered on restart (``None`` keeps
    the memory-only behaviour).  ``fsync`` is one of ``always`` /
    ``interval`` / ``never``; ``interval`` syncs at most once per
    ``fsync_interval_seconds``.  ``drain_timeout_seconds`` bounds how
    long a SIGTERM-initiated drain waits for in-flight requests.  The
    ``breaker_*`` knobs configure the circuit breaker around model
    evaluation (``breaker_enabled: false`` disables it).
    """

    data_dir: str | None = None
    fsync: str = "interval"
    fsync_interval_seconds: float = 0.05
    segment_max_bytes: int = 4 * 1024 * 1024
    drain_timeout_seconds: float = 10.0
    breaker_enabled: bool = True
    breaker_failure_threshold: float = 0.5
    breaker_window: int = 20
    breaker_min_calls: int = 5
    breaker_open_seconds: float = 5.0


@dataclass(frozen=True)
class IngestConfig:
    """Ingestion-tier settings (the API listener's write path).

    ``max_body_bytes`` caps how large a request body any server will
    read — a request declaring more is refused with a structured 413
    before a byte of the body is buffered, so one bad client cannot
    OOM a shard worker.  ``async_api`` swaps the threaded listener for
    the asyncio front-end (``repro.api.async_server``), which streams
    per-commit-group acks on ``POST /metrics/write_batch``.
    ``worker_threads`` sizes the pool bridging the event loop into the
    synchronous app; ``commit_max_frames`` is the largest number of
    frames the streaming batch path commits (and fsyncs) at once — a
    client batch at or under it costs exactly one fsync.
    """

    max_body_bytes: int = 8 * 1024 * 1024
    async_api: bool = False
    worker_threads: int = 8
    commit_max_frames: int = 4096


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster-tier settings (``caladrius serve --shards N``).

    ``shards`` is the fleet size (1 = single process, no cluster tier).
    ``virtual_nodes`` controls consistent-hash smoothness; it must match
    between router and shard-aware clients, which it does because both
    read it from ``GET /cluster/ring``.  ``replicate`` pairs every shard
    with a follower replica fed by WAL-segment shipping every
    ``ship_interval_seconds``.  ``restart_backoff_seconds`` is the pause
    before a crashed shard is respawned; ``proxy_timeout_seconds``
    bounds one router→shard proxy hop.  ``sync_ship`` makes each
    acknowledged write trigger a shipping pass before the ack leaves
    (zero replica lag for acked writes, at a latency cost).
    ``unresponsive_timeout_seconds`` is how long a ready worker may
    fail its liveness probe before the manager kills and recovers it
    (0 disables the probe).
    """

    shards: int = 1
    virtual_nodes: int = 64
    replicate: bool = False
    ship_interval_seconds: float = 0.5
    restart_backoff_seconds: float = 0.2
    proxy_timeout_seconds: float = 30.0
    sync_ship: bool = False
    unresponsive_timeout_seconds: float = 10.0


@dataclass(frozen=True)
class CaladriusConfig:
    """Validated service configuration.

    ``traffic_models`` and ``performance_models`` list the enabled model
    names in the order the API tier runs them ("by default, the endpoint
    will run all model implementations defined in the configuration").
    ``model_options`` carries per-model keyword options; ``api`` the
    listener settings.
    """

    traffic_models: tuple[str, ...] = ("prophet", "stats-summary")
    performance_models: tuple[str, ...] = (
        "throughput-prediction",
        "backpressure-evaluation",
    )
    model_options: dict[str, dict[str, Any]] = field(default_factory=dict)
    api_host: str = "127.0.0.1"
    api_port: int = 8080
    log_level: str = "INFO"
    degraded_threshold: float = 0.25
    serving: ServingConfig = field(default_factory=ServingConfig)
    durability: DurabilityConfig = field(default_factory=DurabilityConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    ingest: IngestConfig = field(default_factory=IngestConfig)

    def options_for(self, model: str) -> dict[str, Any]:
        """Keyword options configured for one model (may be empty)."""
        return dict(self.model_options.get(model, {}))


def load_config(source: str | Path | Mapping[str, Any]) -> CaladriusConfig:
    """Load configuration from a YAML file path or an in-memory mapping.

    The expected document shape::

        caladrius:
          traffic_models: [prophet, stats-summary]
          performance_models: [throughput-prediction]
          model_options:
            prophet: {n_changepoints: 25}
            stats-summary: {statistic: mean, window: 120}
          api: {host: 127.0.0.1, port: 8080}
          log_level: INFO
          degraded_threshold: 0.25
          serving:
            enabled: true
            cache_mb: 64
            ttl_seconds: 300
            max_concurrent: 4
            max_queue: 32
            precompute_top_k: 8
            job_result_ttl_seconds: 60
          durability:
            data_dir: /var/lib/caladrius
            fsync: interval
            fsync_interval_seconds: 0.05
            segment_max_bytes: 4194304
            drain_timeout_seconds: 10
            breaker_enabled: true
            breaker_failure_threshold: 0.5
            breaker_window: 20
            breaker_min_calls: 5
            breaker_open_seconds: 5
          cluster:
            shards: 4
            virtual_nodes: 64
            replicate: true
            ship_interval_seconds: 0.5
            restart_backoff_seconds: 0.2
            proxy_timeout_seconds: 30
            sync_ship: false
            unresponsive_timeout_seconds: 10
          ingest:
            max_body_bytes: 8388608
            async_api: false
            worker_threads: 8
            commit_max_frames: 4096

    Unknown model names and malformed sections raise
    :class:`~repro.errors.ConfigError` with a precise message.
    """
    if isinstance(source, Mapping):
        document: Any = dict(source)
    else:
        path = Path(source)
        if not path.exists():
            raise ConfigError(f"config file {path} does not exist")
        with open(path, encoding="utf8") as handle:
            document = yaml.safe_load(handle)
    if document is None:
        document = {}
    if not isinstance(document, dict):
        raise ConfigError("config root must be a mapping")
    section = document.get("caladrius", document)
    if not isinstance(section, dict):
        raise ConfigError("'caladrius' section must be a mapping")

    traffic = _name_list(
        section.get("traffic_models", list(CaladriusConfig.traffic_models)),
        "traffic_models",
        _KNOWN_TRAFFIC_MODELS,
    )
    performance = _name_list(
        section.get(
            "performance_models", list(CaladriusConfig.performance_models)
        ),
        "performance_models",
        _KNOWN_PERFORMANCE_MODELS,
    )
    options = section.get("model_options", {})
    if not isinstance(options, dict) or not all(
        isinstance(v, dict) for v in options.values()
    ):
        raise ConfigError("model_options must map model names to mappings")
    api = section.get("api", {})
    if not isinstance(api, dict):
        raise ConfigError("'api' section must be a mapping")
    host = api.get("host", "127.0.0.1")
    port = api.get("port", 8080)
    if not isinstance(host, str) or not host:
        raise ConfigError("api.host must be a non-empty string")
    if not isinstance(port, int) or not 0 <= port < 65536:
        raise ConfigError(
            f"api.port must be a port number (0 = ephemeral), got {port!r}"
        )
    log_level = section.get("log_level", "INFO")
    if log_level not in ("DEBUG", "INFO", "WARNING", "ERROR"):
        raise ConfigError(f"unsupported log_level {log_level!r}")
    threshold = section.get("degraded_threshold", 0.25)
    if isinstance(threshold, bool) or not isinstance(threshold, (int, float)):
        raise ConfigError("degraded_threshold must be a number")
    if not 0.0 <= float(threshold) <= 1.0:
        raise ConfigError(
            f"degraded_threshold must be in [0, 1], got {threshold!r}"
        )
    serving = _parse_serving(section.get("serving", {}))
    durability = _parse_durability(section.get("durability", {}))
    cluster = _parse_cluster(section.get("cluster", {}))
    ingest = _parse_ingest(section.get("ingest", {}))
    return CaladriusConfig(
        traffic_models=traffic,
        performance_models=performance,
        model_options={k: dict(v) for k, v in options.items()},
        api_host=host,
        api_port=port,
        log_level=log_level,
        degraded_threshold=float(threshold),
        serving=serving,
        durability=durability,
        cluster=cluster,
        ingest=ingest,
    )


def _parse_serving(section: Any) -> ServingConfig:
    if not isinstance(section, dict):
        raise ConfigError("'serving' section must be a mapping")
    defaults = ServingConfig()
    known = {
        "enabled", "cache_mb", "ttl_seconds", "max_concurrent",
        "max_queue", "precompute_top_k", "job_result_ttl_seconds",
    }
    unknown = sorted(set(section) - known)
    if unknown:
        raise ConfigError(
            f"unknown serving keys {unknown}; known: {sorted(known)}"
        )
    enabled = section.get("enabled", defaults.enabled)
    if not isinstance(enabled, bool):
        raise ConfigError("serving.enabled must be a boolean")
    cache_mb = _positive_number(
        section.get("cache_mb", defaults.cache_mb), "serving.cache_mb"
    )
    ttl = section.get("ttl_seconds", defaults.ttl_seconds)
    if ttl is not None:
        ttl = _positive_number(ttl, "serving.ttl_seconds")
    max_concurrent = _positive_int(
        section.get("max_concurrent", defaults.max_concurrent),
        "serving.max_concurrent",
    )
    max_queue = _positive_int(
        section.get("max_queue", defaults.max_queue), "serving.max_queue"
    )
    top_k = _positive_int(
        section.get("precompute_top_k", defaults.precompute_top_k),
        "serving.precompute_top_k",
    )
    job_ttl = _positive_number(
        section.get(
            "job_result_ttl_seconds", defaults.job_result_ttl_seconds
        ),
        "serving.job_result_ttl_seconds",
    )
    return ServingConfig(
        enabled=enabled,
        cache_mb=float(cache_mb),
        ttl_seconds=float(ttl) if ttl is not None else None,
        max_concurrent=max_concurrent,
        max_queue=max_queue,
        precompute_top_k=top_k,
        job_result_ttl_seconds=float(job_ttl),
    )


def _parse_durability(section: Any) -> DurabilityConfig:
    if not isinstance(section, dict):
        raise ConfigError("'durability' section must be a mapping")
    defaults = DurabilityConfig()
    known = {
        "data_dir", "fsync", "fsync_interval_seconds", "segment_max_bytes",
        "drain_timeout_seconds", "breaker_enabled",
        "breaker_failure_threshold", "breaker_window", "breaker_min_calls",
        "breaker_open_seconds",
    }
    unknown = sorted(set(section) - known)
    if unknown:
        raise ConfigError(
            f"unknown durability keys {unknown}; known: {sorted(known)}"
        )
    data_dir = section.get("data_dir", defaults.data_dir)
    if data_dir is not None and (
        not isinstance(data_dir, str) or not data_dir
    ):
        raise ConfigError(
            "durability.data_dir must be a non-empty string or null"
        )
    fsync = section.get("fsync", defaults.fsync)
    if fsync not in ("always", "interval", "never"):
        raise ConfigError(
            f"durability.fsync must be always/interval/never, got {fsync!r}"
        )
    interval = _positive_number(
        section.get(
            "fsync_interval_seconds", defaults.fsync_interval_seconds
        ),
        "durability.fsync_interval_seconds",
    )
    segment = _positive_int(
        section.get("segment_max_bytes", defaults.segment_max_bytes),
        "durability.segment_max_bytes",
    )
    if segment < 1024:
        raise ConfigError("durability.segment_max_bytes must be >= 1024")
    drain = _positive_number(
        section.get(
            "drain_timeout_seconds", defaults.drain_timeout_seconds
        ),
        "durability.drain_timeout_seconds",
    )
    breaker_enabled = section.get("breaker_enabled", defaults.breaker_enabled)
    if not isinstance(breaker_enabled, bool):
        raise ConfigError("durability.breaker_enabled must be a boolean")
    threshold = section.get(
        "breaker_failure_threshold", defaults.breaker_failure_threshold
    )
    if isinstance(threshold, bool) or not isinstance(
        threshold, (int, float)
    ) or not 0.0 < float(threshold) <= 1.0:
        raise ConfigError(
            "durability.breaker_failure_threshold must be in (0, 1], "
            f"got {threshold!r}"
        )
    window = _positive_int(
        section.get("breaker_window", defaults.breaker_window),
        "durability.breaker_window",
    )
    min_calls = _positive_int(
        section.get("breaker_min_calls", defaults.breaker_min_calls),
        "durability.breaker_min_calls",
    )
    open_seconds = _positive_number(
        section.get("breaker_open_seconds", defaults.breaker_open_seconds),
        "durability.breaker_open_seconds",
    )
    return DurabilityConfig(
        data_dir=data_dir,
        fsync=fsync,
        fsync_interval_seconds=float(interval),
        segment_max_bytes=segment,
        drain_timeout_seconds=float(drain),
        breaker_enabled=breaker_enabled,
        breaker_failure_threshold=float(threshold),
        breaker_window=window,
        breaker_min_calls=min_calls,
        breaker_open_seconds=float(open_seconds),
    )


def _parse_cluster(section: Any) -> ClusterConfig:
    if not isinstance(section, dict):
        raise ConfigError("'cluster' section must be a mapping")
    defaults = ClusterConfig()
    known = {
        "shards", "virtual_nodes", "replicate", "ship_interval_seconds",
        "restart_backoff_seconds", "proxy_timeout_seconds", "sync_ship",
        "unresponsive_timeout_seconds",
    }
    unknown = sorted(set(section) - known)
    if unknown:
        raise ConfigError(
            f"unknown cluster keys {unknown}; known: {sorted(known)}"
        )
    shards = _positive_int(
        section.get("shards", defaults.shards), "cluster.shards"
    )
    virtual_nodes = _positive_int(
        section.get("virtual_nodes", defaults.virtual_nodes),
        "cluster.virtual_nodes",
    )
    replicate = section.get("replicate", defaults.replicate)
    if not isinstance(replicate, bool):
        raise ConfigError("cluster.replicate must be a boolean")
    ship_interval = _positive_number(
        section.get("ship_interval_seconds", defaults.ship_interval_seconds),
        "cluster.ship_interval_seconds",
    )
    backoff = _positive_number(
        section.get(
            "restart_backoff_seconds", defaults.restart_backoff_seconds
        ),
        "cluster.restart_backoff_seconds",
    )
    proxy_timeout = _positive_number(
        section.get(
            "proxy_timeout_seconds", defaults.proxy_timeout_seconds
        ),
        "cluster.proxy_timeout_seconds",
    )
    sync_ship = section.get("sync_ship", defaults.sync_ship)
    if not isinstance(sync_ship, bool):
        raise ConfigError("cluster.sync_ship must be a boolean")
    unresponsive = section.get(
        "unresponsive_timeout_seconds",
        defaults.unresponsive_timeout_seconds,
    )
    if isinstance(unresponsive, bool) or not isinstance(
        unresponsive, (int, float)
    ) or unresponsive < 0:
        raise ConfigError(
            "cluster.unresponsive_timeout_seconds must be a non-negative "
            f"number (0 disables the probe), got {unresponsive!r}"
        )
    return ClusterConfig(
        shards=shards,
        virtual_nodes=virtual_nodes,
        replicate=replicate,
        ship_interval_seconds=float(ship_interval),
        restart_backoff_seconds=float(backoff),
        proxy_timeout_seconds=float(proxy_timeout),
        sync_ship=sync_ship,
        unresponsive_timeout_seconds=float(unresponsive),
    )


def _parse_ingest(section: Any) -> IngestConfig:
    if not isinstance(section, dict):
        raise ConfigError("'ingest' section must be a mapping")
    defaults = IngestConfig()
    known = {
        "max_body_bytes", "async_api", "worker_threads",
        "commit_max_frames",
    }
    unknown = sorted(set(section) - known)
    if unknown:
        raise ConfigError(
            f"unknown ingest keys {unknown}; known: {sorted(known)}"
        )
    max_body = _positive_int(
        section.get("max_body_bytes", defaults.max_body_bytes),
        "ingest.max_body_bytes",
    )
    if max_body < 1024:
        raise ConfigError("ingest.max_body_bytes must be >= 1024")
    async_api = section.get("async_api", defaults.async_api)
    if not isinstance(async_api, bool):
        raise ConfigError("ingest.async_api must be a boolean")
    workers = _positive_int(
        section.get("worker_threads", defaults.worker_threads),
        "ingest.worker_threads",
    )
    commit_frames = _positive_int(
        section.get("commit_max_frames", defaults.commit_max_frames),
        "ingest.commit_max_frames",
    )
    return IngestConfig(
        max_body_bytes=max_body,
        async_api=async_api,
        worker_threads=workers,
        commit_max_frames=commit_frames,
    )


def _positive_number(value: Any, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"{name} must be a number, got {value!r}")
    if value <= 0:
        raise ConfigError(f"{name} must be positive, got {value!r}")
    return float(value)


def _positive_int(value: Any, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(f"{name} must be an integer, got {value!r}")
    if value < 1:
        raise ConfigError(f"{name} must be >= 1, got {value!r}")
    return value


def _name_list(
    value: Any, field_name: str, known: tuple[str, ...]
) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise ConfigError(f"{field_name} must be a list of strings")
    unknown = [name for name in value if name not in known]
    if unknown:
        raise ConfigError(
            f"unknown {field_name} entries {unknown}; known: {list(known)}"
        )
    if not value:
        raise ConfigError(f"{field_name} must enable at least one model")
    return tuple(value)
