"""ServingLayer: content-addressed keys, invalidation, warm precompute."""

from __future__ import annotations

import json

from repro.heron.tracker import TopologyTracker
from repro.heron.wordcount import WordCountParams, build_word_count
from repro.serving.fingerprint import RequestDescriptor, fingerprint
from repro.serving.layer import ServingLayer
from repro.timeseries.store import MetricsStore


def make_layer(**kwargs):
    tracker, store = TopologyTracker(), MetricsStore()
    layer = ServingLayer(tracker, store, **kwargs)
    return layer, tracker, store


def desc(topology="wc", horizon=60):
    return RequestDescriptor.of(
        "traffic", topology, None, {"horizon_minutes": horizon}
    )


class TestFingerprint:
    def test_param_order_does_not_matter(self):
        a = RequestDescriptor.of("traffic", "wc", None, {"a": 1, "b": 2})
        b = RequestDescriptor.of("traffic", "wc", None, {"b": 2, "a": 1})
        assert a == b
        assert a.cache_key(1, 1) == b.cache_key(1, 1)

    def test_every_field_changes_the_key(self):
        base = desc().cache_key(1, 1)
        assert desc(horizon=61).cache_key(1, 1) != base
        assert desc(topology="other").cache_key(1, 1) != base
        assert desc().cache_key(2, 1) != base  # plan revision
        assert desc().cache_key(1, 2) != base  # metrics digest
        named = RequestDescriptor.of(
            "traffic", "wc", "prophet", {"horizon_minutes": 60}
        )
        assert named.cache_key(1, 1) != base

    def test_fingerprint_is_stable(self):
        fields = {"kind": "traffic", "topology": "wc"}
        assert fingerprint(fields) == fingerprint(dict(fields))


class TestContentAddressing:
    def test_unchanged_inputs_hit_the_cache(self):
        layer, _, _ = make_layer()
        calls = []
        compute = lambda: calls.append(1) or {"value": 7}  # noqa: E731
        first = layer.execute(desc(), compute)
        second = layer.execute(desc(), compute)
        assert first == second == {"value": 7}
        assert len(calls) == 1
        assert layer.stats()["hit_rate"] == 0.5
        layer.close()

    def test_cached_payload_is_byte_identical(self):
        layer, _, _ = make_layer()
        result = {"nested": {"b": 2.5, "a": [1, 2]}, "rate": 1e7 / 3}
        first = layer.execute(desc(), lambda: result)
        second = layer.execute(desc(), lambda: dict(result))
        assert json.dumps(first) == json.dumps(second)
        layer.close()

    def test_metrics_write_invalidates(self):
        layer, _, store = make_layer()
        values = iter([1, 2])
        compute = lambda: {"value": next(values)}  # noqa: E731
        assert layer.execute(desc(), compute) == {"value": 1}
        store.write("m", 0, 1.0, {"topology": "wc"})
        assert layer.execute(desc(), compute) == {"value": 2}
        assert layer.cache.stats()["invalidations"] >= 1
        layer.close()

    def test_write_to_other_topology_does_not_invalidate(self):
        layer, _, store = make_layer()
        calls = []
        compute = lambda: calls.append(1) or {"value": 1}  # noqa: E731
        layer.execute(desc(), compute)
        store.write("m", 0, 1.0, {"topology": "unrelated"})
        layer.execute(desc(), compute)
        assert len(calls) == 1
        layer.close()

    def test_untagged_write_invalidates_everything(self):
        layer, _, store = make_layer()
        calls = []
        compute = lambda: calls.append(1) or {"value": 1}  # noqa: E731
        layer.execute(desc(), compute)
        store.write("m", 0, 1.0)  # no topology tag: conservative
        layer.execute(desc(), compute)
        assert len(calls) == 2
        layer.close()

    def test_plan_update_invalidates(self):
        layer, tracker, _ = make_layer()
        topology, packing, _ = build_word_count(WordCountParams())
        tracker.register(topology, packing)
        calls = []
        compute = lambda: calls.append(1) or {"value": 1}  # noqa: E731
        layer.execute(desc(topology.name), compute)
        tracker.update(topology.name, topology, packing)
        layer.execute(desc(topology.name), compute)
        assert len(calls) == 2
        layer.close()


class TestWarmPrecompute:
    def test_popular_query_is_rewarmed_after_invalidation(self):
        layer, _, store = make_layer()
        computes = []

        def recompute(descriptor):
            computes.append(descriptor)
            return {"topology": descriptor.topology, "warm": True}

        layer.set_recompute(recompute)
        # Make the query popular through the interactive path.
        layer.execute(desc(), lambda: {"topology": "wc", "warm": False})
        layer.execute(desc(), lambda: {"topology": "wc", "warm": False})
        store.write("m", 0, 1.0, {"topology": "wc"})
        assert layer.precompute_now() == 1
        assert computes[0] == desc()
        # The interactive path now hits the warm entry without computing.
        hits_before = layer.stats()["hits"]
        result = layer.execute(
            desc(), lambda: {"topology": "wc", "warm": False}
        )
        assert result["warm"] is True
        assert layer.stats()["hits"] == hits_before + 1
        layer.close()

    def test_precompute_failure_is_counted_not_raised(self):
        layer, _, store = make_layer()

        def failing(descriptor):
            from repro.errors import ModelError

            raise ModelError("cannot recompute")

        layer.set_recompute(failing)
        layer.execute(desc(), lambda: {"v": 1})
        store.write("m", 0, 1.0, {"topology": "wc"})
        assert layer.precompute_now() == 0
        assert layer.stats()["precompute_failures"] == 1
        layer.close()

    def test_background_loop_rewarms(self):
        import time

        layer, _, store = make_layer()
        layer.set_recompute(lambda d: {"warm": True})
        layer.execute(desc(), lambda: {"warm": False})
        layer.start(interval_seconds=0.05)
        store.write("m", 0, 1.0, {"topology": "wc"})
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if layer.stats()["precomputed"] >= 1:
                break
            time.sleep(0.01)
        assert layer.stats()["precomputed"] >= 1
        layer.close()


class TestStats:
    def test_stats_shape(self):
        layer, _, _ = make_layer()
        layer.execute(desc(), lambda: {"v": 1})
        stats = layer.stats()
        assert stats["enabled"] is True
        assert stats["requests"] == 1
        assert stats["computations"] == 1
        assert 0.0 <= stats["hit_rate"] <= 1.0
        for section in ("cache", "scheduler", "singleflight", "precompute"):
            assert isinstance(stats[section], dict)
        layer.close()

    def test_close_unsubscribes(self):
        layer, tracker, store = make_layer()
        layer.close()
        # Writes after close must not touch the (closed) layer.
        store.write("m", 0, 1.0, {"topology": "wc"})
        topology, packing, _ = build_word_count(WordCountParams())
        tracker.register(topology, packing)
        assert layer.cache.stats()["invalidations"] == 0
