"""Tests for the latency model, validated against the simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.component_model import ComponentModel
from repro.core.instance_model import InstanceModel
from repro.core.latency_model import LatencyModel, WatermarkSettings
from repro.core.topology_model import TopologyModel
from repro.errors import ModelError
from repro.heron.metrics import MetricNames
from repro.heron.simulation import HeronSimulation, SimulationConfig
from repro.heron.wordcount import WordCountParams, build_word_count
from repro.timeseries.store import MetricsStore

M = 1e6
PATH = ["sentence-spout", "splitter", "counter"]


def wordcount_latency_model(splitter_p=1, counter_p=3) -> LatencyModel:
    topology, _, logic = build_word_count(
        WordCountParams(
            splitter_parallelism=splitter_p, counter_parallelism=counter_p
        )
    )
    components = {
        "splitter": ComponentModel(
            "splitter", InstanceModel({"default": 7.635}, 11 * M), splitter_p
        ),
        "counter": ComponentModel(
            "counter", InstanceModel({}, 70 * M), counter_p
        ),
    }
    return LatencyModel(
        TopologyModel(topology, components),
        input_tuple_bytes={"splitter": 60.0, "counter": 16.0},
    )


class TestWatermarkSettings:
    def test_defaults_match_heron(self):
        settings = WatermarkSettings()
        assert settings.high_bytes == 100e6
        assert settings.low_bytes == 50e6
        assert settings.mean_backlog_bytes == 75e6

    def test_validation(self):
        with pytest.raises(ModelError):
            WatermarkSettings(high_bytes=10, low_bytes=20)
        with pytest.raises(ModelError):
            WatermarkSettings(high_bytes=10, low_bytes=0)


class TestStageLatency:
    def test_negligible_below_saturation(self):
        model = wordcount_latency_model()
        latency = model.stage_latency_ms("splitter", 8 * M)
        # Just the per-tuple processing time: microseconds.
        assert latency < 1.0

    def test_watermark_bound_at_saturation(self):
        model = wordcount_latency_model()
        latency = model.stage_latency_ms("splitter", 14 * M)
        # 75MB / 60B = 1.25M queued tuples at 11M tuples/min:
        expected = (75e6 / 60.0) / (11 * M / 60_000.0)
        assert latency == pytest.approx(expected, rel=0.01)

    def test_spout_has_no_queue_latency(self):
        model = wordcount_latency_model()
        assert model.stage_latency_ms("sentence-spout", 100 * M) == 0.0

    def test_validation(self):
        model = wordcount_latency_model()
        with pytest.raises(ModelError):
            model.stage_latency_ms("splitter", -1.0)


class TestPathLatency:
    def test_step_shape_over_rates(self):
        model = wordcount_latency_model()
        profile = model.latency_profile(PATH, [5 * M, 10 * M, 12 * M, 20 * M])
        latencies = [lat for _, lat in profile]
        assert latencies[0] < 1.0
        assert latencies[1] < 1.0
        assert latencies[2] > 1_000.0  # saturated: seconds of queueing
        assert latencies[2] == pytest.approx(latencies[3], rel=0.01)

    def test_only_the_bottleneck_carries_the_queue(self):
        model = wordcount_latency_model(splitter_p=1, counter_p=3)
        # At 14M the splitter saturates; the counter (210M words cap)
        # receives only 84M and stays queue-free, so the path latency is
        # the splitter stage's latency alone (plus processing epsilon).
        path = model.path_latency_ms(PATH, 14 * M)
        stage = model.stage_latency_ms("splitter", 14 * M)
        assert path == pytest.approx(stage, rel=0.01)

    def test_path_must_start_at_spout(self):
        model = wordcount_latency_model()
        with pytest.raises(ModelError, match="spout"):
            model.path_latency_ms(["splitter", "counter"], 1 * M)


class TestAgainstSimulator:
    def test_predicted_latency_matches_measured(self):
        """The analytical watermark bound vs the simulator's queue."""
        params = WordCountParams(
            splitter_parallelism=1, counter_parallelism=3
        )
        topology, packing, logic = build_word_count(params)
        store = MetricsStore()
        sim = HeronSimulation(
            topology, packing, logic, store, SimulationConfig(seed=3)
        )
        sim.set_source_rate("sentence-spout", 14 * M)
        sim.run(4)
        measured = (
            store.aggregate(
                MetricNames.QUEUE_LATENCY_MS, {"component": "splitter"}
            )
            .between(120, 2**62)
            .mean()
        )
        model = wordcount_latency_model()
        predicted = model.stage_latency_ms("splitter", 14 * M)
        assert predicted == pytest.approx(measured, rel=0.10)

    def test_predicted_zero_latency_matches_measured(self):
        params = WordCountParams(
            splitter_parallelism=1, counter_parallelism=3
        )
        topology, packing, logic = build_word_count(params)
        store = MetricsStore()
        sim = HeronSimulation(
            topology, packing, logic, store, SimulationConfig(seed=3)
        )
        sim.set_source_rate("sentence-spout", 8 * M)
        sim.run(3)
        measured = store.aggregate(
            MetricNames.QUEUE_LATENCY_MS, {"component": "splitter"}
        ).values[-1]
        assert measured < 5.0
        model = wordcount_latency_model()
        assert model.stage_latency_ms("splitter", 8 * M) < 1.0
