"""Shard-aware client: route around the router for data-plane calls.

The router is a single Python process; pushing every modelling request
and metric write through it would serialise the fleet behind one GIL.
:class:`ClusterClient` instead fetches ``GET /cluster/ring`` once,
builds the same :class:`~repro.cluster.ring.HashRing` the router uses
(the ring is deterministic, so both always agree on placement) and
talks to the owning shard directly over a per-shard keep-alive
:class:`~repro.api.client.CaladriusClient`.

When a direct call fails — the shard crashed, the ring changed under
us, or the write was fenced off by a newer epoch — the client refreshes
the ring and falls back to the router proxy for that one call.  When
the router itself answers 503 + ``Retry-After`` (owner down or
replaying its WAL), the client honors the server's delay — capped at
the base client's ``backoff_max_seconds``, exactly like the base client
does for 429 — and retries the router a bounded number of times before
surfacing the error.  Control-plane reads (``healthz``,
``serving/stats``, ``topologies``) always go to the router, whose
fan-out aggregation is the point.

Direct writes are epoch-stamped from the ring payload's ``epochs`` map,
so a write racing a promotion gets a structured 409 from the superseded
worker instead of silently landing on fenced state; the client then
refreshes and retries through the router.
"""

from __future__ import annotations

import logging
import threading
import time
from collections.abc import Iterable
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.api.client import BatchAck, CaladriusClient
from repro.api.ingest import (
    decode_frames,
    encode_frame,
    frame_bytes,
    rebase_refused,
)
from repro.cluster.ring import HashRing
from repro.errors import ApiError

__all__ = ["ClusterClient"]

logger = logging.getLogger("repro.cluster.client")


class ClusterClient:
    """Routes topology-keyed calls straight to the owning shard.

    Parameters
    ----------
    host / port:
        The cluster router's address.
    ring_ttl_seconds:
        How long a fetched ring is trusted before it is re-fetched.
    failover_retries:
        Extra router attempts when the router answers a retryable 503
        carrying ``Retry-After`` (shard down, restarting, promoting).
        Each wait honors the server's hint, capped at the base client's
        ``backoff_max_seconds``.
    **client_options:
        Forwarded to every underlying :class:`CaladriusClient`
        (timeouts, retry schedule, injectable sleep).
    """

    def __init__(
        self,
        host: str,
        port: int,
        ring_ttl_seconds: float = 5.0,
        failover_retries: int = 2,
        **client_options: Any,
    ) -> None:
        self.router = CaladriusClient(host, port, **client_options)
        self.ring_ttl_seconds = ring_ttl_seconds
        self.failover_retries = failover_retries
        self._client_options = client_options
        self._lock = threading.Lock()
        self._ring: HashRing | None = None
        self._addresses: dict[int, tuple[str, int] | None] = {}
        self._epochs: dict[int, int] = {}
        self._version = -1
        self._fetched_at = 0.0
        self._shard_clients: dict[tuple[str, int], CaladriusClient] = {}
        self.direct_calls = 0
        self.router_fallbacks = 0
        self.fenced_writes = 0
        self.retry_after_waits = 0

    # ------------------------------------------------------------------
    # Ring management
    # ------------------------------------------------------------------
    def refresh_ring(self) -> dict[str, Any]:
        """Fetch the ring from the router and rebuild routing state."""
        payload = self.router._request("GET", "/cluster/ring")
        with self._lock:
            self._ring = HashRing(
                [int(s) for s in payload["shards"]],
                int(payload["virtual_nodes"]),
            )
            self._version = int(payload["version"])
            self._addresses = {}
            for shard_str, address in payload["addresses"].items():
                if address:
                    host, _, port = address.rpartition(":")
                    self._addresses[int(shard_str)] = (host, int(port))
                else:
                    self._addresses[int(shard_str)] = None
            self._epochs = {
                int(shard_str): int(epoch)
                for shard_str, epoch in (payload.get("epochs") or {}).items()
            }
            self._fetched_at = time.monotonic()
        return payload

    def _routing(
        self,
    ) -> tuple[HashRing, dict[int, tuple[str, int] | None], dict[int, int]]:
        with self._lock:
            fresh = (
                self._ring is not None
                and time.monotonic() - self._fetched_at < self.ring_ttl_seconds
            )
            if fresh:
                return (  # type: ignore[return-value]
                    self._ring,
                    dict(self._addresses),
                    dict(self._epochs),
                )
        self.refresh_ring()
        with self._lock:
            assert self._ring is not None
            return self._ring, dict(self._addresses), dict(self._epochs)

    def _shard_client(self, address: tuple[str, int]) -> CaladriusClient:
        with self._lock:
            client = self._shard_clients.get(address)
            if client is None:
                # Direct calls do not retry: a failed shard call falls
                # back to the router, which owns the wait-for-recovery
                # story (503 + Retry-After) and the proxy retry.
                options = dict(self._client_options)
                options["retries"] = 0
                client = CaladriusClient(address[0], address[1], **options)
                self._shard_clients[address] = client
            return client

    # ------------------------------------------------------------------
    # Topology-keyed dispatch
    # ------------------------------------------------------------------
    def _call(
        self,
        topology: str,
        operation,
        *args: Any,
        stamp_epoch: bool = False,
        **kwargs: Any,
    ):
        """Try the owning shard directly; fall back to the router once.

        With ``stamp_epoch`` the direct attempt carries the owner's
        epoch from the ring, so a superseded worker answers a fencing
        409 — treated like any other routing failure: refresh and let
        the router (which stamps the *current* epoch) arbitrate.
        """
        ring, addresses, epochs = self._routing()
        shard_id = ring.shard_for(topology)
        address = addresses.get(shard_id)
        if address is not None:
            client = self._shard_client(address)
            direct_kwargs = dict(kwargs)
            if stamp_epoch and epochs.get(shard_id):
                direct_kwargs["epoch"] = epochs[shard_id]
            try:
                result = operation(client)(*args, **direct_kwargs)
                self.direct_calls += 1
                return result
            except ApiError as exc:
                fenced = exc.status == 409 and bool(
                    (exc.payload or {}).get("fenced")
                )
                if fenced:
                    self.fenced_writes += 1
                elif exc.status not in (502, 503, 504):
                    raise  # a real answer (400/403/404/429): not routing
            except OSError:
                pass
        # The shard is down, restarting, fenced, or the ring moved: let
        # the router arbitrate, and refetch the ring for the next call.
        self.router_fallbacks += 1
        with self._lock:
            self._fetched_at = 0.0
        return self._router_call(operation, *args, **kwargs)

    def _router_call(self, operation, *args: Any, **kwargs: Any):
        """Run an operation against the router, honoring Retry-After.

        A router 503 during a failover window carries ``retry_after``
        (the owner is restarting or promoting); instead of treating it
        as a generic failure, wait the server's hint — capped at the
        base client's ``backoff_max_seconds`` — and try again, up to
        ``failover_retries`` extra attempts.
        """
        attempts = max(0, self.failover_retries) + 1
        for attempt in range(attempts):
            try:
                return operation(self.router)(*args, **kwargs)
            except ApiError as exc:
                if exc.status != 503 or attempt == attempts - 1:
                    raise
                hint = (exc.payload or {}).get("retry_after")
                if not isinstance(hint, (int, float)) or isinstance(
                    hint, bool
                ):
                    raise
                self.retry_after_waits += 1
                self.router._sleep(
                    min(float(hint), self.router.backoff_max_seconds)
                )
        raise AssertionError("unreachable")  # pragma: no cover

    def write_metrics(
        self,
        name: str,
        samples: list[tuple[int, float]] | list[list[float]],
        tags: dict[str, str] | None = None,
    ) -> int:
        key = (tags or {}).get("topology") or name
        return self._call(
            key, lambda c: c.write_metrics, name, samples, tags,
            stamp_epoch=True,
        )

    def write_batch(self, entries: Iterable[tuple]) -> BatchAck:
        """Split a mixed-topology batch by ring owner and fan out.

        ``entries`` is ``(name, timestamp, value)`` or
        ``(name, timestamp, value, tags)`` per sample.  Each sample is
        framed once; frames are grouped by the owning shard, each
        sub-batch is sent concurrently straight to its owner stamped
        with that shard's epoch, and per-shard acks are merged with
        frame indexes rebased onto the original batch.  A sub-batch
        that is fenced (409) or finds its shard down falls back through
        the router; if even that fails, its frames land in
        :attr:`BatchAck.refused` — one shard's trouble never poisons
        the others' acks.
        """
        keys: list[str] = []
        frames: list[bytes] = []
        for entry in entries:
            if len(entry) == 3:
                name, timestamp, value = entry
                tags = None
            else:
                name, timestamp, value, tags = entry
            keys.append(str((tags or {}).get("topology") or name))
            frames.append(encode_frame(name, timestamp, value, tags))
        return self._write_batch_frames(keys, frames)

    def write_batch_raw(
        self, raw: bytes, epoch: int | None = None
    ) -> BatchAck:
        """Route pre-encoded frames (the :class:`BatchWriter` target).

        ``epoch`` is accepted for interface compatibility and ignored:
        cluster routing stamps each sub-batch with its owning shard's
        current epoch from the ring.
        """
        del epoch
        keys = []
        frames = []
        for record, body in decode_frames(raw):
            key = ""
            if isinstance(record, dict):
                tags = record.get("tags") or {}
                topology = (
                    tags.get("topology") if isinstance(tags, dict) else None
                )
                key = str(topology or record.get("name") or "")
            keys.append(key)
            frames.append(frame_bytes(body))
        return self._write_batch_frames(keys, frames)

    def _write_batch_frames(
        self, keys: list[str], frames: list[bytes]
    ) -> BatchAck:
        if not frames:
            return BatchAck()
        ring, addresses, epochs = self._routing()
        groups: dict[int, list[int]] = {}
        for idx, key in enumerate(keys):
            groups.setdefault(ring.shard_for(key), []).append(idx)

        def send(shard_id: int, indexes: list[int]) -> BatchAck | ApiError:
            raw = b"".join(frames[i] for i in indexes)
            try:
                address = addresses.get(shard_id)
                if address is not None:
                    client = self._shard_client(address)
                    try:
                        ack = client.write_batch_raw(
                            raw, epoch=epochs.get(shard_id) or None
                        )
                        self.direct_calls += 1
                        return ack
                    except ApiError as exc:
                        fenced = exc.status == 409 and bool(
                            (exc.payload or {}).get("fenced")
                        )
                        if fenced:
                            self.fenced_writes += 1
                        elif exc.status not in (502, 503, 504):
                            raise
                    except OSError:
                        pass
                self.router_fallbacks += 1
                with self._lock:
                    self._fetched_at = 0.0
                return self._router_call(lambda c: c.write_batch_raw, raw)
            except ApiError as exc:
                # Surfaced per sub-batch in `refused`, never raised:
                # the other shards' acks must stand.
                return exc

        ordered = sorted(groups.items())
        if len(ordered) == 1:
            outcomes = [(ordered[0][0], send(*ordered[0]))]
        else:
            with ThreadPoolExecutor(
                max_workers=min(8, len(ordered)),
                thread_name_prefix="cluster-batch",
            ) as pool:
                futures = [
                    (shard_id, pool.submit(send, shard_id, indexes))
                    for shard_id, indexes in ordered
                ]
                outcomes = [
                    (shard_id, future.result())
                    for shard_id, future in futures
                ]
        merged = BatchAck(frames=len(frames))
        for shard_id, result in outcomes:
            indexes = groups[shard_id]
            if isinstance(result, ApiError):
                merged.refused.append(
                    {
                        "frames": list(indexes),
                        "shard_id": shard_id,
                        "status": result.status,
                        "error": str(result),
                        "retry_after": (result.payload or {}).get(
                            "retry_after"
                        ),
                    }
                )
                continue
            merged.acked += result.acked
            for entry in result.rejected:
                frame = entry.get("frame")
                if isinstance(frame, int) and 0 <= frame < len(indexes):
                    merged.rejected.append(
                        {**entry, "frame": indexes[frame]}
                    )
                else:
                    merged.rejected.append(dict(entry))
            for entry in result.refused:
                merged.refused.append(
                    rebase_refused(entry, indexes, shard_id)
                )
            merged.commits.extend(
                {**commit, "shard_id": shard_id}
                for commit in result.commits
            )
            if len(ordered) == 1:
                # LSNs are per-shard; only meaningful unsplit.
                merged.first_lsn = result.first_lsn
                merged.last_lsn = result.last_lsn
        merged.rejected.sort(key=lambda entry: entry.get("frame", -1))
        return merged

    def read_metrics(
        self, name: str, tags: dict[str, str] | None = None
    ) -> list[dict[str, Any]]:
        key = (tags or {}).get("topology") or name
        return self._call(key, lambda c: c.read_metrics, name, tags)

    def traffic(self, topology: str, **kwargs: Any) -> dict[str, Any]:
        return self._call(topology, lambda c: c.traffic, topology, **kwargs)

    def performance(self, topology: str, **kwargs: Any) -> dict[str, Any]:
        return self._call(
            topology, lambda c: c.performance, topology, **kwargs
        )

    def plan_sweep(
        self, topology: str, *args: Any, **kwargs: Any
    ) -> dict[str, Any]:
        return self._call(
            topology, lambda c: c.plan_sweep, topology, *args, **kwargs
        )

    def logical_plan(self, topology: str) -> dict[str, Any]:
        return self._call(topology, lambda c: c.logical_plan, topology)

    def packing_plan(self, topology: str) -> dict[str, Any]:
        return self._call(topology, lambda c: c.packing_plan, topology)

    # ------------------------------------------------------------------
    # Fleet-wide calls (always through the router)
    # ------------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self.router.healthz()

    def wait_ready(self, timeout: float = 30.0) -> dict[str, Any]:
        return self.router.wait_ready(timeout=timeout)

    def serving_stats(self) -> dict[str, Any]:
        return self.router.serving_stats()

    def topologies(self) -> list[str]:
        return self.router.topologies()

    def cluster_stats(self) -> dict[str, Any]:
        return self.router._request("GET", "/cluster/stats")

    def resize(self, shards: int) -> dict[str, Any]:
        return self.router._request(
            "POST", "/cluster/resize", body={"shards": shards}
        )

    def close(self) -> None:
        with self._lock:
            clients = list(self._shard_clients.values())
            self._shard_clients.clear()
        for client in clients:
            client.close()
        self.router.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
