"""An in-memory, tag-indexed time-series metrics database.

This is the offline stand-in for Twitter's Cuckoo TSDB and the Heron
MetricsCache (paper Section III-C2).  Metrics are identified by a name plus
a tag mapping (for Heron metrics the tags are ``topology``, ``component``,
``instance``, ``container``).  The store supports point writes, range
queries, group-by aggregation across matching series, and retention
trimming — the full contract Caladrius's metrics interface needs.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from itertools import repeat
from pathlib import Path

from repro.errors import MetricsError
from repro.timeseries.aggregation import rollup
from repro.timeseries.series import TimeSeries

__all__ = ["MetricKey", "MetricsStore", "MinuteBatch"]


@dataclass(frozen=True)
class MetricKey:
    """Identity of one stored series: a metric name plus sorted tags."""

    name: str
    tags: tuple[tuple[str, str], ...] = ()

    @classmethod
    def of(cls, name: str, tags: Mapping[str, str] | None = None) -> "MetricKey":
        """Build a key from a name and an (unordered) tag mapping."""
        items = tuple(sorted((tags or {}).items()))
        return cls(name, items)

    def tag_dict(self) -> dict[str, str]:
        """The tags as a plain dictionary."""
        return dict(self.tags)

    def matches(self, name: str, tag_filter: Mapping[str, str]) -> bool:
        """True when names are equal and every filter tag matches."""
        if self.name != name:
            return False
        own = self.tag_dict()
        return all(own.get(k) == v for k, v in tag_filter.items())


@dataclass
class _SeriesBuffer:
    """Mutable append buffer behind one stored series."""

    timestamps: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    # Opaque per-series cache slot for subclasses: the durable store
    # parks its rendered WAL record template here, so the journaling
    # hot path pays an attribute read instead of a second keyed lookup.
    journal_template: str | None = None
    # Cached frozen view: rebuilding numpy arrays per read dominates
    # repeated-query cost (calibration reads every series several
    # times per sweep).  TimeSeries is immutable with read-only
    # arrays, so serving the same object is safe; any mutation of the
    # buffer drops the cache.
    _frozen: TimeSeries | None = None

    def append(self, timestamp: int, value: float) -> None:
        if self.timestamps and timestamp <= self.timestamps[-1]:
            raise MetricsError(
                "writes must be in increasing timestamp order: "
                f"got {timestamp} after {self.timestamps[-1]}"
            )
        self.timestamps.append(int(timestamp))
        self.values.append(float(value))
        self._frozen = None

    def freeze(self) -> TimeSeries:
        if self._frozen is None:
            self._frozen = TimeSeries(self.timestamps, self.values)
        return self._frozen

    def trim_before(self, cutoff: int) -> None:
        # Timestamps are sorted, so find the first index to keep.
        keep_from = 0
        for keep_from, ts in enumerate(self.timestamps):
            if ts >= cutoff:
                break
        else:
            keep_from = len(self.timestamps)
        if keep_from:
            self._frozen = None
        del self.timestamps[:keep_from]
        del self.values[:keep_from]


class MinuteBatch:
    """Pre-resolved append plan over a fixed set of series.

    Built by :meth:`MetricsStore.make_minute_batch` and consumed by
    :meth:`MetricsStore.append_minute_batch`: the keyed buffer lookups
    and the monotonicity bound are resolved once, so steady-state minute
    flushes cost three C-level loops instead of thousands of keyed
    writes.  Opaque to callers — hold it and hand it back, nothing else.

    A batch is only valid while no other writer touches its series; the
    simulator guards every use with a :meth:`MetricsStore.data_version`
    token and rebuilds the batch (after a slow keyed flush) whenever the
    token moved underneath it.
    """

    __slots__ = ("buffers", "ts_lists", "val_lists", "last_ts")

    def __init__(self) -> None:
        self.buffers: list[_SeriesBuffer] = []
        self.ts_lists: list[list[int]] = []
        self.val_lists: list[list[float]] = []
        self.last_ts: int | None = None


class MetricsStore:
    """Thread-safe in-memory metrics database.

    Parameters
    ----------
    retention_seconds:
        If given, samples older than ``latest - retention_seconds`` are
        dropped lazily on write.  ``None`` keeps everything (the default —
        experiments want full history).
    """

    def __init__(self, retention_seconds: int | None = None) -> None:
        if retention_seconds is not None and retention_seconds <= 0:
            raise MetricsError("retention_seconds must be positive or None")
        self._retention = retention_seconds
        self._series: dict[MetricKey, _SeriesBuffer] = {}
        self._lock = threading.Lock()
        self._latest: int | None = None
        # Write counters per `topology` tag value (None = untagged),
        # plus subscribers — the serving tier's invalidation hooks.
        self._versions: dict[str | None, int] = {}
        self._listeners: list[Callable[[str | None], None]] = []

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def write(
        self,
        name: str,
        timestamp: int,
        value: float,
        tags: Mapping[str, str] | None = None,
    ) -> None:
        """Append one sample to the series identified by name + tags."""
        self._write_keyed(MetricKey.of(name, tags), timestamp, value)

    def _write_keyed(
        self, key: MetricKey, timestamp: int, value: float
    ) -> _SeriesBuffer:
        """``write`` with the key already built; returns the series
        buffer so the durable subclass can reach its per-series cache
        slot without a second keyed lookup."""
        topology = key.tag_dict().get("topology")
        with self._lock:
            buffer = self._series.setdefault(key, _SeriesBuffer())
            buffer.append(timestamp, value)
            if self._latest is None or timestamp > self._latest:
                self._latest = int(timestamp)
            self._versions[topology] = self._versions.get(topology, 0) + 1
            self._apply_retention_locked()
            listeners = list(self._listeners)
        for listener in listeners:
            listener(topology)
        return buffer

    def write_many(
        self,
        name: str,
        samples: Iterable[tuple[int, float]],
        tags: Mapping[str, str] | None = None,
    ) -> None:
        """Append several ``(timestamp, value)`` samples to one series."""
        for timestamp, value in samples:
            self.write(name, timestamp, value, tags)

    # ------------------------------------------------------------------
    # Batched minute appends (the simulator's steady-state flush path)
    # ------------------------------------------------------------------
    def supports_batched_appends(self) -> bool:
        """True when the batched append fast path is byte-equivalent here.

        The fast path bypasses both :meth:`write` and
        :meth:`_write_keyed`, so it is only safe on a store whose
        subclass overrode *neither* (the durable store journals every
        sample in its ``write`` override — a batch that skipped it would
        silently skip the WAL) and that has no invalidation listeners
        expecting a callback per write.
        """
        return (
            type(self)._write_keyed is MetricsStore._write_keyed
            and type(self).write is MetricsStore.write
            and not self._listeners
        )

    def make_minute_batch(self, keys: Sequence[MetricKey]) -> MinuteBatch:
        """Resolve an ordered set of existing series into a MinuteBatch.

        Every key must already have a series (created by ordinary keyed
        writes — a batch never creates series, so series-dict insertion
        order stays exactly what the slow path established).  Raises
        :class:`~repro.errors.MetricsError` on an unknown key.
        """
        batch = MinuteBatch()
        last_ts: int | None = None
        with self._lock:
            for key in keys:
                buffer = self._series.get(key)
                if buffer is None:
                    raise MetricsError(
                        f"no series for {key.name!r} with tags "
                        f"{dict(key.tags)}"
                    )
                batch.buffers.append(buffer)
                batch.ts_lists.append(buffer.timestamps)
                batch.val_lists.append(buffer.values)
                if buffer.timestamps:
                    ts = buffer.timestamps[-1]
                    if last_ts is None or ts > last_ts:
                        last_ts = ts
        batch.last_ts = last_ts
        return batch

    def append_minute_batch(
        self,
        batch: MinuteBatch,
        timestamp: int,
        values: Sequence[float],
        topology: str | None = None,
    ) -> None:
        """Append one sample to every series of a prepared batch.

        ``values[i]`` (already a plain float — callers pass the output
        of ``ndarray.tolist()``) lands on ``batch`` series ``i`` at the
        shared ``timestamp``.  End state is identical to issuing the
        equivalent keyed writes in batch order: same per-series samples,
        same ``data_version`` delta (one bump per series), same
        retention trim; only the per-write listener callbacks are
        skipped, which :meth:`supports_batched_appends` guards.
        """
        if len(values) != len(batch.buffers):
            raise MetricsError(
                f"batch expects {len(batch.buffers)} values, "
                f"got {len(values)}"
            )
        timestamp = int(timestamp)
        with self._lock:
            if batch.last_ts is not None and timestamp <= batch.last_ts:
                raise MetricsError(
                    "writes must be in increasing timestamp order: "
                    f"got {timestamp} after {batch.last_ts}"
                )
            self._append_batch_locked(batch, timestamp, values, topology)
            self._apply_retention_locked()

    def _append_batch_locked(
        self,
        batch: MinuteBatch,
        timestamp: int,
        values: Sequence[float],
        topology: str | None,
    ) -> None:
        """One batched append with the lock held — the PR-9 fast path.

        Shared by :meth:`append_minute_batch` (the simulator's minute
        flush) and :meth:`apply_sample_batch` (the HTTP batched-ingest
        path): three C-level loops instead of thousands of keyed writes.
        """
        deque(
            map(list.append, batch.ts_lists, repeat(timestamp)),
            maxlen=0,
        )
        deque(map(list.append, batch.val_lists, values), maxlen=0)
        deque(
            map(setattr, batch.buffers,
                repeat("_frozen"), repeat(None)),
            maxlen=0,
        )
        batch.last_ts = timestamp
        if self._latest is None or timestamp > self._latest:
            self._latest = timestamp
        self._versions[topology] = (
            self._versions.get(topology, 0) + len(batch.buffers)
        )

    def apply_sample_batch(
        self, entries: Sequence[tuple[MetricKey, int, float]]
    ) -> list[str | None]:
        """Apply many keyed samples under one lock acquisition.

        ``entries`` is ``(key, timestamp, value)`` per sample, in arrival
        order.  The end state is identical to issuing the equivalent
        keyed writes sequentially: the same samples land on the same
        series, the same entries are rejected for timestamp-order
        violations (reported per entry in the returned list — ``None``
        means accepted — instead of raising), the ``data_version`` delta
        per topology is the same, and retention trims to the same
        cutoff.  Only the invalidation listeners are coalesced: one
        callback per distinct touched topology after the lock drops,
        rather than one per write.

        Internally the batch is regrouped into ``(timestamp, topology)``
        commit groups that run through the same three-C-level-loop core
        as :meth:`append_minute_batch`, so a minute-shaped batch (many
        series, one shared timestamp) costs a handful of C loops.  A
        series' entries never reorder across groups — a group is only
        reused for an entry when it sits at or after the group holding
        that series' previous entry.
        """
        errors: list[str | None] = [None] * len(entries)
        touched: list[str | None] = []
        with self._lock:
            # Plan: validate each entry against the series' (pending)
            # tail, then assign it to an order-preserving commit group.
            groups: list[tuple[int, str | None, list[MetricKey], list[float]]]
            groups = []
            group_index: dict[tuple[int, str | None], int] = {}
            last_seen: dict[MetricKey, int] = {}
            prev_group: dict[MetricKey, int] = {}
            for idx, (key, timestamp, value) in enumerate(entries):
                timestamp = int(timestamp)
                last = last_seen.get(key)
                if last is None:
                    buffer = self._series.get(key)
                    if buffer is not None and buffer.timestamps:
                        last = buffer.timestamps[-1]
                if last is not None and timestamp <= last:
                    errors[idx] = (
                        "writes must be in increasing timestamp order: "
                        f"got {timestamp} after {last}"
                    )
                    continue
                last_seen[key] = timestamp
                topology = key.tag_dict().get("topology")
                gkey = (timestamp, topology)
                position = group_index.get(gkey, -1)
                if position < prev_group.get(key, -1):
                    position = -1  # reuse would reorder this series
                if position < 0:
                    position = len(groups)
                    groups.append((timestamp, topology, [], []))
                    group_index[gkey] = position
                groups[position][2].append(key)
                groups[position][3].append(float(value))
                prev_group[key] = position
            for timestamp, topology, keys, values in groups:
                batch = MinuteBatch()
                for key in keys:
                    buffer = self._series.get(key)
                    if buffer is None:
                        buffer = self._series[key] = _SeriesBuffer()
                    batch.buffers.append(buffer)
                    batch.ts_lists.append(buffer.timestamps)
                    batch.val_lists.append(buffer.values)
                self._append_batch_locked(batch, timestamp, values, topology)
                if topology not in touched:
                    touched.append(topology)
            if groups:
                self._apply_retention_locked()
            listeners = list(self._listeners) if groups else []
        for topology in touched:
            for listener in listeners:
                listener(topology)
        return errors

    def _apply_retention_locked(self) -> None:
        if self._retention is None or self._latest is None:
            return
        cutoff = self._latest - self._retention
        for buffer in self._series.values():
            if buffer.timestamps and buffer.timestamps[0] < cutoff:
                buffer.trim_before(cutoff)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def metric_names(self) -> list[str]:
        """Sorted distinct metric names currently stored."""
        with self._lock:
            return sorted({key.name for key in self._series})

    def keys(self, name: str | None = None) -> list[MetricKey]:
        """All stored keys, optionally restricted to one metric name."""
        with self._lock:
            keys = list(self._series)
        if name is not None:
            keys = [k for k in keys if k.name == name]
        return sorted(keys, key=lambda k: (k.name, k.tags))

    def get(
        self,
        name: str,
        tags: Mapping[str, str] | None = None,
    ) -> TimeSeries:
        """The full series for an exact name + tags identity.

        Raises :class:`~repro.errors.MetricsError` if no such series
        exists — a missing metric is a caller bug, not an empty result.
        """
        key = MetricKey.of(name, tags)
        with self._lock:
            buffer = self._series.get(key)
            if buffer is None:
                raise MetricsError(f"no series for {name!r} with tags {dict(key.tags)}")
            return buffer.freeze()

    def query(
        self,
        name: str,
        tag_filter: Mapping[str, str] | None = None,
        start: int | None = None,
        end: int | None = None,
    ) -> dict[MetricKey, TimeSeries]:
        """All series matching a name and a partial tag filter.

        ``start``/``end`` restrict the returned samples to
        ``start <= t < end`` when given.
        """
        tag_filter = dict(tag_filter or {})
        with self._lock:
            matched = {
                key: buffer.freeze()
                for key, buffer in self._series.items()
                if key.matches(name, tag_filter)
            }
        if start is not None or end is not None:
            lo = start if start is not None else -(2**62)
            hi = end if end is not None else 2**62
            matched = {key: s.between(lo, hi) for key, s in matched.items()}
        return matched

    def aggregate(
        self,
        name: str,
        tag_filter: Mapping[str, str] | None = None,
        start: int | None = None,
        end: int | None = None,
    ) -> TimeSeries:
        """Sum of all matching series over the union of timestamps.

        This is the query the models issue to turn per-instance counters
        into component- and topology-level counters.
        """
        matched = self.query(name, tag_filter, start, end)
        if not matched:
            raise MetricsError(
                f"no series match {name!r} with filter {dict(tag_filter or {})}"
            )
        return rollup(list(matched.values()))

    def aggregate_complete(
        self,
        name: str,
        tag_filter: Mapping[str, str] | None = None,
        start: int | None = None,
        end: int | None = None,
    ) -> tuple[TimeSeries, list[int]]:
        """Sum matching series keeping only *fully reported* timestamps.

        :meth:`aggregate` sums over the union of timestamps, which
        silently under-counts any minute where some instances did not
        report (an instance crash, a metrics-collector dropout).  This
        variant returns ``(series, degraded)`` where ``series`` contains
        only timestamps at which *every* matching series has a sample,
        and ``degraded`` lists the timestamps that were dropped —
        partially reported minutes plus interior cadence gaps where no
        series reported at all.
        """
        matched = self.query(name, tag_filter, start, end)
        if not matched:
            raise MetricsError(
                f"no series match {name!r} with filter {dict(tag_filter or {})}"
            )
        n_series = len(matched)
        counts: dict[int, int] = {}
        totals: dict[int, float] = {}
        for series in matched.values():
            for ts, value in zip(series.timestamps, series.values):
                ts = int(ts)
                counts[ts] = counts.get(ts, 0) + 1
                totals[ts] = totals.get(ts, 0.0) + float(value)
        complete = sorted(ts for ts, c in counts.items() if c == n_series)
        degraded = sorted(ts for ts, c in counts.items() if c < n_series)
        if len(counts) > 1:
            seen = sorted(counts)
            steps = [b - a for a, b in zip(seen, seen[1:])]
            step = min(steps)
            if step > 0:
                expected = range(seen[0], seen[-1] + step, step)
                missing = [ts for ts in expected if ts not in counts]
                degraded = sorted(set(degraded) | set(missing))
        series = TimeSeries(complete, [totals[ts] for ts in complete])
        return series, degraded

    def group_by(
        self,
        name: str,
        tag: str,
        tag_filter: Mapping[str, str] | None = None,
    ) -> dict[str, TimeSeries]:
        """Aggregate matching series grouped by the value of one tag.

        For example ``group_by("emit-count", "component",
        {"topology": "wc"})`` returns one summed series per component.
        """
        matched = self.query(name, tag_filter)
        groups: dict[str, list[TimeSeries]] = {}
        for key, series in matched.items():
            tag_value = key.tag_dict().get(tag)
            if tag_value is None:
                continue
            groups.setdefault(tag_value, []).append(series)
        if not groups:
            raise MetricsError(
                f"no series for {name!r} carry tag {tag!r} "
                f"under filter {dict(tag_filter or {})}"
            )
        return {value: rollup(series) for value, series in groups.items()}

    def latest_timestamp(self) -> int | None:
        """The most recent timestamp written, or ``None`` when empty."""
        with self._lock:
            return self._latest

    def clear(self) -> None:
        """Drop every stored series."""
        with self._lock:
            self._series.clear()
            self._latest = None
            # A wipe changes what every query returns: bump the untagged
            # counter (which folds into every topology's digest).
            self._versions[None] = self._versions.get(None, 0) + 1
            listeners = list(self._listeners)
        for listener in listeners:
            listener(None)

    # ------------------------------------------------------------------
    # Cache invalidation support
    # ------------------------------------------------------------------
    def data_version(self, topology: str | None = None) -> int:
        """Monotonic digest of the writes that can affect one topology.

        Any write tagged ``topology=<name>`` bumps that topology's
        counter; untagged writes (and :meth:`clear`) bump a shared
        counter folded into every digest.  Equal digests therefore
        guarantee the topology's queryable data is unchanged — the
        metrics half of the serving tier's content-addressed cache key.
        """
        with self._lock:
            version = self._versions.get(topology, 0)
            if topology is not None:
                version += self._versions.get(None, 0)
            return version

    def add_invalidation_listener(
        self, listener: Callable[[str | None], None]
    ) -> None:
        """Call ``listener(topology_tag)`` after every write (and clear).

        Listeners run outside the store lock and must be cheap — the
        serving tier uses them to evict cached results and queue warm
        recomputation.
        """
        with self._lock:
            self._listeners.append(listener)

    def remove_invalidation_listener(
        self, listener: Callable[[str | None], None]
    ) -> None:
        """Unsubscribe a previously added listener (idempotent)."""
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: "str | Path") -> None:
        """Write the whole store to a JSON file, atomically.

        The format is self-describing and append-friendly enough for
        experiment caching: one record per series with its name, tags,
        timestamps and values.  Load with :meth:`MetricsStore.load`.

        The dump is written to a temporary file in the same directory,
        fsynced and renamed over the target, so a crash mid-save leaves
        either the old complete dump or the new one — never a truncated
        file that :meth:`load` would reject.
        """
        with self._lock:
            records = [
                {
                    "name": key.name,
                    "tags": key.tag_dict(),
                    "timestamps": list(buffer.timestamps),
                    "values": list(buffer.values),
                }
                for key, buffer in self._series.items()
            ]
            payload = {
                "format": "repro-metrics-v1",
                "retention_seconds": self._retention,
                "series": records,
            }
        # Imported here (not module top) to keep the hot read/write path
        # free of persistence-only dependencies.
        from repro.durability.checkpoint import atomic_write_json

        atomic_write_json(Path(path), payload)

    @classmethod
    def load(cls, path: "str | Path") -> "MetricsStore":
        """Rebuild a store previously written by :meth:`save`.

        A missing, empty, truncated or otherwise non-JSON file raises
        :class:`~repro.errors.MetricsError` naming the path — callers
        get one exception type for "this dump is unusable" instead of
        a grab-bag of ``OSError``/``JSONDecodeError``/``KeyError``.
        """
        try:
            with open(path, encoding="utf8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise MetricsError(f"cannot read metrics dump {path}: {exc}") from exc
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise MetricsError(
                f"metrics dump {path} is not valid JSON "
                f"(empty, truncated or corrupt): {exc}"
            ) from exc
        if not isinstance(payload, dict) or payload.get("format") != "repro-metrics-v1":
            fmt = payload.get("format") if isinstance(payload, dict) else None
            raise MetricsError(
                f"{path} is not a repro metrics dump (format={fmt!r})"
            )
        store = cls(retention_seconds=payload.get("retention_seconds"))
        try:
            for record in payload["series"]:
                store.write_many(
                    record["name"],
                    zip(record["timestamps"], record["values"]),
                    record["tags"],
                )
        except (KeyError, TypeError) as exc:
            raise MetricsError(
                f"metrics dump {path} is malformed: {exc!r}"
            ) from exc
        return store
