"""A Python client for the Caladrius API."""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from http.client import HTTPConnection
from typing import Any
from urllib.parse import urlencode

from repro.api.ingest import (
    FRAMES_CONTENT_TYPE,
    STREAM_CONTENT_TYPE,
    encode_frame,
    merge_stream_lines,
)
from repro.durability.deadline import DEADLINE_HEADER
from repro.errors import ApiError

__all__ = ["BatchAck", "BatchWriter", "CaladriusClient"]

#: Statuses worth retrying: the service said "not right now", not "no".
RETRYABLE_STATUSES = frozenset({429, 502, 503, 504})

#: Statuses whose ``Retry-After`` (header or payload field) overrides
#: the exponential backoff schedule: the server's load-shedding (429)
#: and degraded-metrics (503) answers know better than our guess.
HONOR_RETRY_AFTER = frozenset({429, 503})


@dataclass
class BatchAck:
    """The outcome of one ``write_batch`` round-trip.

    ``rejected`` entries are permanent per-frame failures
    (``{"frame": index, "error": message}``); ``refused`` entries are
    retryable whole-group refusals the streaming server reported
    mid-batch (drain/fence arriving between commit groups).  ``commits``
    preserves the per-group ack offsets when the server streamed them.
    """

    frames: int = 0
    acked: int = 0
    rejected: list[dict[str, Any]] = field(default_factory=list)
    first_lsn: int | None = None
    last_lsn: int | None = None
    commits: list[dict[str, Any]] = field(default_factory=list)
    refused: list[dict[str, Any]] = field(default_factory=list)

    @classmethod
    def from_payload(cls, data: Mapping[str, Any]) -> "BatchAck":
        return cls(
            frames=int(data.get("frames") or 0),
            acked=int(data.get("acked") or 0),
            rejected=list(data.get("rejected") or ()),
            first_lsn=data.get("first_lsn"),
            last_lsn=data.get("last_lsn"),
            commits=list(data.get("commits") or ()),
            refused=list(data.get("refused") or ()),
        )


class CaladriusClient:
    """Thin JSON-over-HTTP client mirroring the API endpoints.

    Transient failures — connection refused/reset, or a 429/502/503/504
    response — are retried with exponential backoff and deterministic
    jitter.  When a 429/503 carries ``Retry-After`` (the serving layer's
    load shedding does), that delay is honored instead, capped at
    ``backoff_max_seconds``.  Anything else (other 4xx, malformed
    bodies) surfaces immediately as :class:`~repro.errors.ApiError`.

    Parameters
    ----------
    host / port:
        Where the Caladrius service listens.
    timeout:
        Socket timeout per request attempt, in seconds.
    retries:
        Extra attempts after the first (0 = single shot).
    backoff_seconds / backoff_max_seconds:
        First retry delay and its cap; the delay doubles per attempt.
    jitter:
        Fractional jitter applied to each delay (seeded, so test runs
        are reproducible).
    sleep:
        Injectable sleep function — tests pass a recorder to assert the
        backoff schedule without waiting it out.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        retries: int = 3,
        backoff_seconds: float = 0.1,
        backoff_max_seconds: float = 2.0,
        jitter: float = 0.1,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if retries < 0:
            raise ApiError("retries must be non-negative")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_seconds = backoff_seconds
        self.backoff_max_seconds = backoff_max_seconds
        self.jitter = jitter
        self._sleep = sleep
        self._rng = random.Random(0x5EED)
        # One persistent HTTP/1.1 connection per thread: the server
        # speaks keep-alive, so reusing the socket saves a TCP handshake
        # per request.  Thread-local because HTTPConnection is not
        # thread-safe and callers share clients across worker threads.
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connection(self) -> tuple[HTTPConnection, bool]:
        """This thread's connection plus whether it has served a request.

        The flag matters for error handling: only a *reused* socket can
        be stale (closed server-side between requests), so only then is
        a transparent reconnect-and-retry justified.  A fresh socket
        failing is a real transport error and goes through the normal
        backoff schedule.
        """
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.connection = connection
            self._local.connection_used = False
        return connection, bool(getattr(self._local, "connection_used", False))

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    def close(self) -> None:
        """Close this thread's persistent connection (idempotent).

        Other threads' connections close when their threads exit (the
        sockets are owned by thread-local storage) or on their own next
        :meth:`close` call.
        """
        self._drop_connection()

    def __enter__(self) -> "CaladriusClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _backoff(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based), jittered."""
        base = min(
            self.backoff_seconds * (2.0 ** (attempt - 1)),
            self.backoff_max_seconds,
        )
        spread = self.jitter * base
        return max(0.0, base + self._rng.uniform(-spread, spread))

    def _attempt(
        self,
        method: str,
        path: str,
        payload: bytes | None,
        extra_headers: dict[str, str] | None = None,
        content_type: str = "application/json",
    ) -> tuple[int, dict[str, Any], float | None]:
        """One round-trip: (status, decoded JSON body, Retry-After).

        A streamed NDJSON answer (the asyncio server's group-commit
        acks) is folded into one summary dict, so callers see the same
        shape whichever front-end answered.
        """
        headers = {"Content-Type": content_type} if payload else {}
        if extra_headers:
            headers.update(extra_headers)
        raw = b""
        status = 0
        retry_after: float | None = None
        response_type = ""
        for retry_stale in (True, False):
            connection, reused = self._connection()
            try:
                connection.request(method, path, body=payload, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                status = response.status
                retry_after = _parse_retry_after(
                    response.getheader("Retry-After")
                )
                response_type = (
                    (response.getheader("Content-Type") or "")
                    .split(";")[0]
                    .strip()
                )
                if response.will_close:
                    self._drop_connection()
                else:
                    self._local.connection_used = True
            except (OSError, http.client.HTTPException):
                # A reused socket the server already closed (keep-alive
                # timeout, restart) fails on first use; reconnect once
                # before treating it as a real transport error.  Fresh
                # connections get no such grace — their failures feed
                # the normal retry/backoff schedule.
                self._drop_connection()
                if not (retry_stale and reused):
                    raise
                continue
            break
        try:
            if response_type == STREAM_CONTENT_TYPE:
                lines = [
                    json.loads(line)
                    for line in raw.decode("utf8").splitlines()
                    if line.strip()
                ]
                data: Any = merge_stream_lines(lines)
            else:
                data = json.loads(raw.decode("utf8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ApiError(
                f"response body is not JSON (HTTP {status})", status
            ) from exc
        if not isinstance(data, dict):
            raise ApiError(
                f"response body is not a JSON object (HTTP {status})", status
            )
        if retry_after is None:
            body_hint = data.get("retry_after")
            if isinstance(body_hint, (int, float)) and not isinstance(
                body_hint, bool
            ):
                retry_after = float(body_hint)
        return status, data, retry_after

    def _request(
        self,
        method: str,
        path: str,
        query: dict[str, Any] | None = None,
        body: dict[str, Any] | None = None,
        deadline_seconds: float | None = None,
        headers: dict[str, str] | None = None,
        raw_body: bytes | None = None,
        content_type: str = "application/json",
    ) -> dict[str, Any]:
        if query:
            path = f"{path}?{urlencode(query)}"
        if raw_body is not None:
            payload: bytes | None = raw_body
        else:
            payload = (
                json.dumps(body).encode("utf8") if body is not None else None
            )
        extra_headers: dict[str, str] | None = None
        if deadline_seconds is not None:
            extra_headers = {DEADLINE_HEADER: str(deadline_seconds)}
        if headers:
            extra_headers = {**(extra_headers or {}), **headers}
        last_error: Exception | None = None
        server_delay: float | None = None
        for attempt in range(self.retries + 1):
            if attempt > 0:
                if server_delay is not None:
                    # The server asked for a specific delay (Retry-After
                    # on a shed/degraded answer); honor it up to the
                    # backoff cap instead of guessing.
                    self._sleep(min(server_delay, self.backoff_max_seconds))
                else:
                    self._sleep(self._backoff(attempt))
            server_delay = None
            try:
                status, data, retry_after = self._attempt(
                    method, path, payload, extra_headers, content_type
                )
            except (OSError, http.client.HTTPException) as exc:
                last_error = exc
                continue
            if status in RETRYABLE_STATUSES and attempt < self.retries:
                if status in HONOR_RETRY_AFTER and retry_after is not None:
                    server_delay = retry_after
                last_error = ApiError(
                    data.get("error", f"HTTP {status}"), status, data
                )
                continue
            if status >= 400:
                raise ApiError(
                    data.get("error", f"HTTP {status}"), status, data
                )
            return data
        raise ApiError(
            f"{method} {path} failed after {self.retries + 1} attempt(s): "
            f"{last_error}",
            503,
        ) from last_error

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        """Liveness: lifecycle state, breaker stats, recovery report."""
        return self._request("GET", "/healthz")

    def readyz(self) -> dict[str, Any]:
        """Readiness; raises :class:`ApiError` (503) while draining."""
        # Single shot on purpose: retrying a 503 readyz probe would turn
        # "not ready" into a multi-second stall for the caller.
        status, data, _ = self._attempt("GET", "/readyz", None)
        if status >= 400:
            raise ApiError(data.get("error", f"HTTP {status}"), status, data)
        return data

    def wait_ready(
        self,
        timeout: float = 10.0,
        poll_seconds: float = 0.05,
    ) -> dict[str, Any]:
        """Poll ``/readyz`` until the service admits work.

        Swallows connection errors (the process may still be binding its
        socket) and not-ready answers until ``timeout``, then raises
        :class:`~repro.errors.ApiError` (503) with the last failure.
        """
        deadline = time.monotonic() + timeout
        last: str = "never reached the service"
        while time.monotonic() < deadline:
            try:
                return self.readyz()
            except (OSError, http.client.HTTPException, ApiError) as exc:
                last = str(exc)
            self._sleep(poll_seconds)
        raise ApiError(
            f"service at {self.host}:{self.port} not ready within "
            f"{timeout:.1f}s: {last}",
            503,
        )

    def write_metrics(
        self,
        name: str,
        samples: list[tuple[int, float]] | list[list[float]],
        tags: dict[str, str] | None = None,
        epoch: int | None = None,
    ) -> int:
        """Durably append samples; returns the count acknowledged.

        ``epoch`` stamps ``X-Shard-Epoch`` for epoch-fenced cluster
        writes: a worker from a different writer generation answers
        with a structured 409 instead of accepting the write.
        """
        body: dict[str, Any] = {
            "name": name,
            "samples": [list(s) for s in samples],
        }
        if tags:
            body["tags"] = tags
        headers: dict[str, str] | None = None
        if epoch is not None:
            headers = {"X-Shard-Epoch": str(epoch)}
        return self._request(
            "POST", "/metrics/write", body=body, headers=headers
        )["written"]

    def write_batch(
        self,
        entries: Iterable[tuple],
        epoch: int | None = None,
    ) -> BatchAck:
        """Send many samples in one framed request; one round-trip.

        ``entries`` is ``(name, timestamp, value)`` or
        ``(name, timestamp, value, tags)`` per sample.  Each sample is
        encoded once into the WAL codec's framing; the server appends
        the frames without re-serialization and commits the batch with
        at most one fsync.  Per-frame failures (bad shape, out-of-order
        timestamp) come back in :attr:`BatchAck.rejected` without
        poisoning the rest; 429/503 answers are retried honoring
        ``Retry-After`` under the client's capped backoff; a fencing
        409 raises :class:`~repro.errors.ApiError` with the structured
        payload so cluster routing can fail over.
        """
        frames = []
        for entry in entries:
            if len(entry) == 3:
                name, timestamp, value = entry
                tags = None
            else:
                name, timestamp, value, tags = entry
            frames.append(encode_frame(name, timestamp, value, tags))
        return self.write_batch_raw(b"".join(frames), epoch=epoch)

    def write_batch_raw(
        self, raw: bytes, epoch: int | None = None
    ) -> BatchAck:
        """``write_batch`` with the frames already encoded.

        The batch-buffering and cluster-routing layers frame samples
        once at ``add()`` time and ship the concatenated bytes here.
        """
        headers: dict[str, str] | None = None
        if epoch is not None:
            headers = {"X-Shard-Epoch": str(epoch)}
        data = self._request(
            "POST",
            "/metrics/write_batch",
            headers=headers,
            raw_body=raw,
            content_type=FRAMES_CONTENT_TYPE,
        )
        return BatchAck.from_payload(data)

    def read_metrics(
        self,
        name: str,
        tags: dict[str, str] | None = None,
        allow_stale: bool = False,
    ) -> list[dict[str, Any]]:
        """Read stored series back (name plus exact tag filters).

        ``allow_stale`` opts into follower reads during a promotion
        window (router only): the payload may trail the primary by the
        replication lag, but answers instead of 503ing.
        """
        query: dict[str, Any] = {"name": name}
        if tags:
            query.update(tags)
        headers: dict[str, str] | None = None
        if allow_stale:
            headers = {"X-Allow-Stale-Read": "1"}
        return self._request("GET", "/metrics/read", query, headers=headers)[
            "series"
        ]

    def state_hash(self) -> dict[str, Any]:
        """The server's store content hash (replica convergence checks)."""
        return self._request("GET", "/cluster/state_hash")

    def ship_now(self) -> dict[str, Any]:
        """Force a synchronous WAL-shipping pass on a replicating shard."""
        return self._request("POST", "/cluster/ship", body={})

    def topologies(self) -> list[str]:
        """Registered topology names."""
        return self._request("GET", "/topologies")["topologies"]

    def serving_stats(self) -> dict[str, Any]:
        """The serving layer's counters (hit rate, sheds, queue depth)."""
        return self._request("GET", "/serving/stats")

    def logical_plan(self, topology: str) -> dict[str, Any]:
        """The logical plan of one topology."""
        return self._request("GET", f"/topology/{topology}/logical")

    def packing_plan(self, topology: str) -> dict[str, Any]:
        """The packing plan of one topology."""
        return self._request("GET", f"/topology/{topology}/packing")

    def traffic(
        self,
        topology: str,
        horizon_minutes: int = 60,
        source_minutes: int | None = None,
        model: str | None = None,
        deadline_seconds: float | None = None,
    ) -> dict[str, Any]:
        """Run the traffic models for a topology."""
        query: dict[str, Any] = {"horizon_minutes": horizon_minutes}
        if source_minutes is not None:
            query["source_minutes"] = source_minutes
        if model is not None:
            query["model"] = model
        return self._request(
            "GET",
            f"/model/traffic/heron/{topology}",
            query,
            deadline_seconds=deadline_seconds,
        )

    def performance(
        self,
        topology: str,
        source_rate: float | None = None,
        parallelisms: dict[str, int] | None = None,
        model: str | None = None,
        horizon_minutes: int = 60,
        deadline_seconds: float | None = None,
    ) -> dict[str, Any]:
        """Run the performance models for a topology (synchronous)."""
        query: dict[str, Any] = {"horizon_minutes": horizon_minutes}
        if model is not None:
            query["model"] = model
        body: dict[str, Any] = {}
        if source_rate is not None:
            body["source_rate"] = source_rate
        if parallelisms is not None:
            body["parallelisms"] = parallelisms
        return self._request(
            "POST",
            f"/model/topology/heron/{topology}",
            query,
            body,
            deadline_seconds=deadline_seconds,
        )

    def plan_sweep(
        self,
        topology: str,
        source_rate: float,
        plans: list[dict[str, int]],
        top_k: int | None = None,
        deadline_seconds: float | None = None,
    ) -> dict[str, Any]:
        """Rank candidate parallelism plans in one request.

        One calibration on the server scores the whole ``plans`` list;
        the response carries the plans ranked by predicted output rate.
        """
        query: dict[str, Any] = {}
        if top_k is not None:
            query["top_k"] = top_k
        return self._request(
            "POST",
            f"/model/plan_sweep/heron/{topology}",
            query,
            {"source_rate": source_rate, "plans": plans},
            deadline_seconds=deadline_seconds,
        )

    def performance_async(
        self,
        topology: str,
        source_rate: float | None = None,
        parallelisms: dict[str, int] | None = None,
        poll_seconds: float = 0.1,
        max_wait_seconds: float = 60.0,
    ) -> dict[str, Any]:
        """Submit an async performance request and poll for the result."""
        body: dict[str, Any] = {}
        if source_rate is not None:
            body["source_rate"] = source_rate
        if parallelisms is not None:
            body["parallelisms"] = parallelisms
        submitted = self._request(
            "POST",
            f"/model/topology/heron/{topology}",
            {"async": "1"},
            body,
        )
        request_id = submitted["request_id"]
        deadline = time.monotonic() + max_wait_seconds
        while time.monotonic() < deadline:
            result = self._request("GET", f"/model/result/{request_id}")
            if result["status"] == "done":
                return result["result"]
            if result["status"] == "error":
                raise ApiError(result.get("error", "modelling failed"), 500)
            time.sleep(poll_seconds)
        raise ApiError(f"request {request_id} timed out", 504)


class BatchWriter:
    """Client-side sample buffering with size/time-based auto-flush.

    ``add()`` encodes the sample into its wire frame immediately (encode
    once, at most one copy on flush) and triggers a flush when the
    buffer reaches ``max_frames`` frames or ``max_bytes`` bytes.  With
    ``max_age_seconds`` set, a daemon thread also flushes any sample
    that has waited longer than that, so a trickle of writes still
    becomes durable promptly.  Background-flush failures are recorded in
    :attr:`errors` (and re-raised by :meth:`close`), acks in
    :attr:`acks`.

    The target may be a :class:`CaladriusClient` (single server) or a
    :class:`~repro.cluster.client.ClusterClient` — anything with a
    ``write_batch_raw(raw, epoch=...)`` method.
    """

    def __init__(
        self,
        client: Any,
        max_frames: int = 1000,
        max_bytes: int = 1 << 20,
        max_age_seconds: float | None = None,
        epoch: int | None = None,
    ) -> None:
        if max_frames < 1:
            raise ApiError("max_frames must be >= 1")
        self._client = client
        self.max_frames = max_frames
        self.max_bytes = max_bytes
        self.max_age_seconds = max_age_seconds
        self.epoch = epoch
        self._frames: list[bytes] = []
        self._bytes = 0
        self._oldest: float | None = None
        self._lock = threading.Lock()
        self._closed = False
        self.acks: list[BatchAck] = []
        self.errors: list[ApiError] = []
        self._wake = threading.Event()
        self._thread: threading.Thread | None = None
        if max_age_seconds is not None:
            self._thread = threading.Thread(
                target=self._age_loop,
                daemon=True,
                name="caladrius-batch-flush",
            )
            self._thread.start()

    def __len__(self) -> int:
        with self._lock:
            return len(self._frames)

    def add(
        self,
        name: str,
        timestamp: int,
        value: float,
        tags: Mapping[str, str] | None = None,
    ) -> None:
        """Buffer one sample; flushes when a size threshold is crossed."""
        frame = encode_frame(name, timestamp, value, tags)
        with self._lock:
            if self._closed:
                raise ApiError("batch writer is closed")
            self._frames.append(frame)
            self._bytes += len(frame)
            if self._oldest is None:
                self._oldest = time.monotonic()
            due = (
                len(self._frames) >= self.max_frames
                or self._bytes >= self.max_bytes
            )
        if due:
            self.flush()

    def flush(self) -> BatchAck | None:
        """Send everything buffered; returns the ack (None if empty).

        The network round-trip happens outside the buffer lock, so
        concurrent ``add()`` calls keep filling the next batch while
        this one is in flight.
        """
        with self._lock:
            if not self._frames:
                return None
            raw = b"".join(self._frames)
            self._frames = []
            self._bytes = 0
            self._oldest = None
        ack = self._client.write_batch_raw(raw, epoch=self.epoch)
        self.acks.append(ack)
        return ack

    def _age_loop(self) -> None:
        assert self.max_age_seconds is not None
        poll = max(0.01, self.max_age_seconds / 4)
        while True:
            self._wake.wait(poll)
            with self._lock:
                if self._closed:
                    return
                due = (
                    self._oldest is not None
                    and time.monotonic() - self._oldest
                    >= self.max_age_seconds
                )
            if due:
                try:
                    self.flush()
                except ApiError as exc:
                    # Surfaced on close(); samples stay buffered?  No —
                    # the batch left the buffer before the send failed.
                    # Record the loss loudly rather than retrying into
                    # a dead server from a daemon thread forever.
                    self.errors.append(exc)

    def close(self) -> None:
        """Flush the remainder and stop the age thread.

        Raises the first recorded background-flush error (after sending
        what is still buffered), so silent data loss cannot hide behind
        the timer thread.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._thread is not None:
            self._wake.set()
            self._thread.join(timeout=5)
            self._thread = None
        self.flush()
        if self.errors:
            raise self.errors[0]

    def __enter__(self) -> "BatchWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _parse_retry_after(raw: str | None) -> float | None:
    """Decode a Retry-After header (delta-seconds form only)."""
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None  # HTTP-date form; fall back to our own backoff
    return max(0.0, value)
