"""Shared result types for the scaling strategies."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ScalingRound", "ScalingTrace"]


@dataclass(frozen=True)
class ScalingRound:
    """One observe-(maybe scale)-redeploy iteration.

    ``parallelisms`` is the configuration observed during this round;
    ``action`` describes what the scaler decided afterwards.
    """

    index: int
    parallelisms: dict[str, int]
    output_tpm: float
    backpressure_ms: float
    meets_slo: bool
    action: str


@dataclass
class ScalingTrace:
    """The full history of one scaler run."""

    strategy: str
    slo_output_tpm: float
    rounds: list[ScalingRound] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        """True when the final round met the SLO."""
        return bool(self.rounds) and self.rounds[-1].meets_slo

    @property
    def deployments(self) -> int:
        """Redeployments performed (rounds that changed the config)."""
        changes = 0
        for previous, current in zip(self.rounds, self.rounds[1:]):
            if current.parallelisms != previous.parallelisms:
                changes += 1
        return changes

    def observe_minutes(self, minutes_per_round: int) -> int:
        """Total simulated observation time spent converging."""
        return len(self.rounds) * minutes_per_round

    def summary(self) -> dict[str, object]:
        """A compact JSON-friendly report."""
        return {
            "strategy": self.strategy,
            "converged": self.converged,
            "rounds": len(self.rounds),
            "deployments": self.deployments,
            "final_parallelisms": (
                self.rounds[-1].parallelisms if self.rounds else {}
            ),
            "final_output_tpm": (
                self.rounds[-1].output_tpm if self.rounds else 0.0
            ),
        }
