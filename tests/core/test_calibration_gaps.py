"""Calibration over gap-containing metric windows.

The robustness contract: degraded minutes are skipped with a
DegradedMetricsWarning and calibration succeeds on the rest; only when
(almost) every window is degraded does CalibrationError surface."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.calibration import degraded_aggregate
from repro.core.performance_models import calibrate_topology
from repro.errors import CalibrationError, DegradedMetricsWarning
from repro.faults.plan import FaultEvent, FaultPlan
from repro.heron.metrics import MetricNames
from repro.heron.simulation import HeronSimulation, SimulationConfig
from repro.heron.tracker import TopologyTracker
from repro.heron.wordcount import WordCountParams, build_word_count
from repro.timeseries.store import MetricsStore

M = 1e6


def _deployment(plan=None, minutes_per_rate=2,
                rates=(4 * M, 12 * M, 20 * M, 28 * M, 36 * M)):
    params = WordCountParams(splitter_parallelism=2, counter_parallelism=4)
    topology, packing, logic = build_word_count(params)
    store = MetricsStore()
    sim = HeronSimulation(
        topology, packing, logic, store, SimulationConfig(seed=13),
        faults=plan,
    )
    for rate in rates:
        sim.set_source_rate("sentence-spout", float(rate))
        sim.run(minutes_per_rate)
    tracker = TopologyTracker()
    tracker.register(topology, packing)
    return tracker.get("word-count"), store


class TestDegradedAggregate:
    def test_partial_minutes_are_skipped_with_warning(self):
        plan = FaultPlan(events=(
            FaultEvent(at_seconds=240, kind="crash", component="splitter",
                       index=0, duration_seconds=120),
        ))
        _, store = _deployment(plan)
        with pytest.warns(DegradedMetricsWarning, match="skipped 2"):
            series = degraded_aggregate(
                store, MetricNames.EXECUTE_COUNT,
                {"topology": "word-count", "component": "splitter"},
            )
        assert {240, 300}.isdisjoint(series.timestamps.tolist())

    def test_healthy_store_no_warning(self):
        _, store = _deployment()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DegradedMetricsWarning)
            series = degraded_aggregate(
                store, MetricNames.EXECUTE_COUNT,
                {"topology": "word-count", "component": "splitter"},
            )
        assert len(series) == 10

    def test_undercount_is_prevented(self):
        # The motivating bug: plain aggregate() sums whoever reported,
        # halving the apparent throughput in crash minutes.
        plan = FaultPlan(events=(
            FaultEvent(at_seconds=240, kind="crash", component="splitter",
                       index=0, duration_seconds=120),
        ))
        _, store = _deployment(plan)
        naive = store.aggregate(
            MetricNames.EXECUTE_COUNT,
            {"topology": "word-count", "component": "splitter"},
        )
        naive_by_minute = dict(
            zip(naive.timestamps.tolist(), naive.values.tolist())
        )
        # minute 300 (steady 12M rate, one of two instances dark) shows
        # roughly half the true component throughput
        assert naive_by_minute[300] < 0.7 * naive_by_minute[180]
        with pytest.warns(DegradedMetricsWarning):
            clean = degraded_aggregate(
                store, MetricNames.EXECUTE_COUNT,
                {"topology": "word-count", "component": "splitter"},
            )
        assert 300 not in clean.timestamps.tolist()


class TestCalibrationOverGaps:
    def test_gappy_windows_calibrate_with_warning(self):
        plan = FaultPlan(events=(
            FaultEvent(at_seconds=240, kind="crash", component="splitter",
                       index=1, duration_seconds=60),
            FaultEvent(at_seconds=420, kind="metric_dropout",
                       component="counter", duration_seconds=60),
        ))
        tracked, store = _deployment(plan)
        with pytest.warns(DegradedMetricsWarning):
            model, fits = calibrate_topology(tracked, store)
        assert fits["splitter"].alpha == pytest.approx(7.635, rel=0.05)
        assert fits["splitter"].n_points < 9  # gaps really were dropped

    def test_matches_clean_calibration(self):
        plan = FaultPlan(events=(
            FaultEvent(at_seconds=240, kind="crash", component="splitter",
                       index=1, duration_seconds=60),
        ))
        tracked, store = _deployment(plan)
        with pytest.warns(DegradedMetricsWarning):
            _, gappy_fits = calibrate_topology(tracked, store)
        clean_tracked, clean_store = _deployment()
        _, clean_fits = calibrate_topology(clean_tracked, clean_store)
        assert gappy_fits["splitter"].alpha == pytest.approx(
            clean_fits["splitter"].alpha, rel=0.05
        )

    def test_all_gaps_raise_calibration_error(self):
        # A permanent component dropout from t=0 leaves no usable minute.
        plan = FaultPlan(events=(
            FaultEvent(at_seconds=0, kind="metric_dropout",
                       component="splitter"),
        ))
        tracked, store = _deployment(plan)
        with pytest.raises(CalibrationError, match="usable metric minutes"):
            calibrate_topology(tracked, store)

    def test_too_few_common_minutes_raise(self):
        # Crash long enough that under 3 aligned minutes survive warmup.
        plan = FaultPlan(events=(
            FaultEvent(at_seconds=60, kind="crash", component="splitter",
                       index=0, duration_seconds=480),
        ))
        tracked, store = _deployment(plan)
        with pytest.raises(CalibrationError, match="usable metric minutes"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedMetricsWarning)
                calibrate_topology(tracked, store)
