"""Checkpoint atomicity, recovery sequencing and tracker snapshots."""

from __future__ import annotations

import json

import pytest

from repro.durability import CheckpointManager, open_data_dir
from repro.durability.checkpoint import (
    CHECKPOINT_FILENAME,
    atomic_write_json,
    read_checkpoint,
)
from repro.errors import DurabilityError
from repro.heron.wordcount import WordCountParams, build_word_count


class TestAtomicWriteJson:
    def test_round_trip_and_no_temp_leftovers(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"a": 1})
        atomic_write_json(target, {"a": 2})  # overwrite is fine
        assert json.loads(target.read_text()) == {"a": 2}
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


class TestReadCheckpoint:
    def test_missing_is_none(self, tmp_path):
        assert read_checkpoint(tmp_path) is None

    @pytest.mark.parametrize("content", ["", "{trunc", "[1, 2]"])
    def test_corrupt_or_wrong_shape_raises(self, tmp_path, content):
        (tmp_path / CHECKPOINT_FILENAME).write_text(content)
        with pytest.raises(DurabilityError, match=CHECKPOINT_FILENAME):
            read_checkpoint(tmp_path)

    def test_wrong_format_raises(self, tmp_path):
        (tmp_path / CHECKPOINT_FILENAME).write_text('{"format": "other"}')
        with pytest.raises(DurabilityError, match="repro-checkpoint-v1"):
            read_checkpoint(tmp_path)


class TestCheckpointRecovery:
    def test_snapshot_plus_replay_round_trip(self, tmp_path):
        store, tracker = open_data_dir(tmp_path, fsync="always")
        topology, packing, _ = build_word_count(WordCountParams())
        tracker.register(topology, packing)
        for i in range(20):
            store.write("m", 60 * (i + 1), float(i), {"topology": "word-count"})
        manager = CheckpointManager(store, tracker)
        summary = manager.checkpoint()
        assert summary["last_lsn"] == 20
        assert summary["topologies"] == 1
        # post-checkpoint writes live only in the WAL
        for i in range(20, 25):
            store.write("m", 60 * (i + 1), float(i), {"topology": "word-count"})
        store.close()

        recovered, recovered_tracker = open_data_dir(tmp_path)
        report = recovered.recovery
        assert report.checkpoint_lsn == 20
        assert report.snapshot_samples == 20
        assert report.replayed_records == 5
        series = recovered.get("m", {"topology": "word-count"})
        assert list(series.values) == [float(i) for i in range(25)]
        # the tracker's packing plan rode along in the snapshot
        tracked = recovered_tracker.get("word-count")
        assert tracked.topology.name == "word-count"
        assert len(tracked.packing.containers) == len(packing.containers)
        recovered.close()

    def test_checkpoint_prunes_replayed_segments(self, tmp_path):
        store, tracker = open_data_dir(
            tmp_path, fsync="never", segment_max_bytes=1024
        )
        for i in range(200):
            store.write("m", 60 * (i + 1), float(i))
        wal_dir = tmp_path / "wal"
        before = len(list(wal_dir.glob("wal-*.log")))
        assert before > 1
        summary = CheckpointManager(store, tracker).checkpoint()
        # the drain during checkpointing may add a tail segment, so the
        # prune can reclaim more than were visible before — but never
        # fewer, and nothing replayable may be left behind
        assert summary["segments_pruned"] >= before
        assert list(wal_dir.glob("wal-*.log")) == []
        store.close()

    def test_restart_after_full_prune_keeps_lsns_monotonic(self, tmp_path):
        """Regression: an all-pruned WAL must not restart numbering at 1.

        If it did, post-restart appends would sit below the checkpoint's
        ``last_lsn`` and the *next* recovery would skip them — silently
        losing acknowledged writes.
        """
        store, tracker = open_data_dir(tmp_path, fsync="always")
        for i in range(10):
            store.write("m", 60 * (i + 1), float(i))
        CheckpointManager(store, tracker).checkpoint()
        store.close()

        store, tracker = open_data_dir(tmp_path, fsync="always")
        assert store.wal.last_lsn == 10
        for i in range(10, 15):
            store.write("m", 60 * (i + 1), float(i))
        store.close()

        store, _ = open_data_dir(tmp_path)
        assert len(store.get("m").timestamps) == 15
        assert store.recovery.replayed_records == 5
        store.close()

    def test_checkpoint_without_tracker(self, tmp_path):
        store, _ = open_data_dir(tmp_path)
        store.write("m", 60, 1.0)
        summary = CheckpointManager(store).checkpoint()
        assert summary["topologies"] == 0
        store.close()
        recovered, tracker = open_data_dir(tmp_path)
        assert tracker.names() == []
        assert len(recovered.get("m").timestamps) == 1
        recovered.close()
