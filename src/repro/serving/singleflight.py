"""Single-flight coalescing: one computation per key, shared by waiters.

When N identical requests arrive concurrently, exactly one of them (the
*leader*) runs the computation; the other N-1 block on an event and
receive the leader's result (or its exception).  Keys are the same
content-addressed fingerprints the cache uses, so "identical" means
identical inputs, not merely identical URLs.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from typing import Any

__all__ = ["SingleFlight"]

_UNSET = object()


class _Call:
    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = _UNSET
        self.error: BaseException | None = None


class SingleFlight:
    """Coalesce concurrent calls that share a key."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls: dict[str, _Call] = {}
        self.coalesced = 0
        self.led = 0

    def do(self, key: str, fn: Callable[[], Any]) -> tuple[Any, bool]:
        """Run ``fn`` once per in-flight key; returns ``(result, led)``.

        ``led`` is True for the call that actually executed ``fn``.  An
        exception raised by the leader propagates to every waiter.
        """
        with self._lock:
            call = self._calls.get(key)
            if call is None:
                call = _Call()
                self._calls[key] = call
                leader = True
                self.led += 1
            else:
                leader = False
                self.coalesced += 1
        if not leader:
            call.done.wait()
            if call.error is not None:
                raise call.error
            return call.result, False
        try:
            call.result = fn()
        except BaseException as exc:
            call.error = exc
            raise
        finally:
            with self._lock:
                del self._calls[key]
            call.done.set()
        return call.result, True

    def in_flight(self) -> int:
        """Number of keys currently being computed."""
        with self._lock:
            return len(self._calls)

    def stats(self) -> dict[str, int]:
        """Leader/waiter counters (for ``/serving/stats``)."""
        with self._lock:
            return {"led": self.led, "coalesced": self.coalesced}
