"""Quickstart: simulate a topology, calibrate Caladrius, predict scaling.

This walks the paper's core loop end to end in one script:

1. build the Word Count topology and run it on the simulated cluster,
   sweeping the source rate so the metrics cover both the linear and the
   saturated regime;
2. calibrate the piecewise-linear component models from those metrics;
3. ask the performance model what the topology can sustain today, and
   what it would sustain after a dry-run ``heron update`` that scales
   the Splitter — without deploying anything.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ThroughputPredictionModel
from repro.core.performance_models import calibrate_topology
from repro.heron import (
    HeronSimulation,
    SimulationConfig,
    TopologyTracker,
    WordCountParams,
    build_word_count,
)
from repro.timeseries import MetricsStore

M = 1e6


def main() -> None:
    # 1. Deploy (simulate) the topology and let it run through a sweep.
    params = WordCountParams(splitter_parallelism=2, counter_parallelism=4)
    topology, packing, logic = build_word_count(params)
    store = MetricsStore()
    simulation = HeronSimulation(
        topology, packing, logic, store, SimulationConfig(seed=7)
    )
    print(f"simulating {topology.name!r} "
          f"({topology.total_instances()} instances, "
          f"{packing.num_containers()} containers)...")
    for rate in np.arange(4 * M, 44 * M + 1, 8 * M):
        simulation.set_source_rate("sentence-spout", float(rate))
        simulation.run(minutes=2)

    # 2. Register it with the tracker and calibrate from live metrics.
    tracker = TopologyTracker()
    tracked = tracker.register(topology, packing)
    model, fits = calibrate_topology(tracked, store)
    print("\ncalibrated component models:")
    for name, fit in fits.items():
        st = fit.saturation_throughput
        print(
            f"  {name:>10}: alpha = {fit.alpha:6.3f}, "
            f"SP = {fit.saturation_point / M:7.1f}M tuples/min, "
            f"ST = {'inf' if st == float('inf') else f'{st / M:.1f}M'}"
        )

    # 3. Predict performance — current config, then a dry-run scale-out.
    predictor = ThroughputPredictionModel(tracker, store)
    current = predictor.predict("word-count", source_rate=30 * M)
    print(f"\nat 30M tuples/min with the current configuration:")
    print(f"  predicted output  : {current.output_rate / M:8.1f}M tuples/min")
    print(f"  saturation point  : {current.saturation_source_rate / M:8.1f}M")
    print(f"  backpressure risk : {current.backpressure_risk} "
          f"(bottleneck: {current.bottleneck})")

    proposal = predictor.predict(
        "word-count", source_rate=30 * M, parallelisms={"splitter": 4}
    )
    print(f"\nafter `update --dry-run splitter=4` (nothing deployed):")
    print(f"  predicted output  : {proposal.output_rate / M:8.1f}M tuples/min")
    print(f"  saturation point  : {proposal.saturation_source_rate / M:8.1f}M")
    print(f"  backpressure risk : {proposal.backpressure_risk}")
    assert tracker.get("word-count").topology.parallelism("splitter") == 2
    print("\ntracker still shows splitter parallelism = 2: it was a dry run.")


if __name__ == "__main__":
    main()
