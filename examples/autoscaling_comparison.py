"""Watch a reactive autoscaler and a Caladrius-guided one race to an SLO.

The scenario: the Word Count topology was provisioned for light traffic
(Splitter 2, Counter 2) and demand has grown to 40 M sentences/min.  The
consumers need the word stream to keep up.

* The reactive scaler (Dhalion-style) can only see symptoms: it watches
  for backpressure, scales the loudest component one step, redeploys and
  waits for stabilisation — repeatedly.
* The model-guided scaler calibrates Caladrius's piecewise-linear models
  from the same metrics, sizes every component analytically, and
  deploys once.

Run with:  python examples/autoscaling_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.autoscaler import ModelGuidedScaler, ReactiveScaler, SimulatedCluster
from repro.heron.simulation import SimulationConfig
from repro.heron.wordcount import WordCountParams

M = 1e6
DEMAND = 40 * M
SLO = 0.95 * 7.635 * DEMAND


def fresh_cluster(seed: int) -> SimulatedCluster:
    cluster = SimulatedCluster(
        word_count_params=WordCountParams(
            splitter_parallelism=2, counter_parallelism=2
        ),
        config=SimulationConfig(seed=seed),
    )
    print("  ramping traffic up to the new demand...")
    for rate in np.arange(8 * M, DEMAND + 1, 8 * M):
        cluster.set_source_rate("sentence-spout", float(rate))
        cluster.run(2)
    return cluster


def show(trace, observe_minutes: int) -> None:
    for r in trace.rounds:
        bolts = {k: v for k, v in r.parallelisms.items()
                 if k != "sentence-spout"}
        print(f"  round {r.index}: {bolts}  "
              f"output {r.output_tpm / M:6.0f}M  "
              f"bp {r.backpressure_ms:6.0f}ms  -> {r.action}")
    print(f"  => {'CONVERGED' if trace.converged else 'DID NOT CONVERGE'} "
          f"after {len(trace.rounds)} rounds, {trace.deployments} "
          f"redeployments, {trace.observe_minutes(observe_minutes)} "
          "simulated minutes of observation\n")


def main() -> None:
    observe = 3
    print(f"demand: {DEMAND / M:.0f}M sentences/min  "
          f"SLO: {SLO / M:.0f}M words/min\n")

    print("[reactive scaler — Dhalion-style]")
    reactive = ReactiveScaler(
        fresh_cluster(seed=1), slo_output_tpm=SLO, observe_minutes=observe
    )
    show(reactive.run(), observe)

    print("[model-guided scaler — Caladrius]")
    guided = ModelGuidedScaler(
        fresh_cluster(seed=2), slo_output_tpm=SLO, observe_minutes=observe
    )
    show(guided.run(source_tpm=DEMAND), observe)

    print("The guided scaler reaches the SLO in a single deployment; the")
    print("reactive one pays a stabilisation window per probing step —")
    print("the tuning loop the paper set out to eliminate.")


if __name__ == "__main__":
    main()
