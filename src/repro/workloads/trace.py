"""Canonical simulation traces and their regression hashes.

The simulator's determinism contract — same (workload, schedule, seed)
in, byte-identical metrics out — is the foundation the whole matrix
stands on: a cell whose trace hash changed is a cell whose simulation
changed, whatever its calibration error says.  This module turns a run
into a canonical, JSON-stable trace and hashes it, powering both the
committed golden fixtures under ``tests/data/`` and the per-cell
``trace_hash`` field of ``matrix_report.json``.

Canonical form: per component, the full per-minute ``execute-count``
series (timestamps and values as plain Python numbers), plus the
topology backpressure series; serialised with sorted keys and no
whitespace, hashed with SHA-256.  Float values pass through ``repr``
via ``json`` — exact for IEEE doubles — so the hash is sensitive to
any numeric drift, not just gross breakage.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence
from typing import Any

from repro.heron.metrics import MetricNames
from repro.heron.simulation import HeronSimulation, SimulationConfig
from repro.timeseries.store import MetricsStore
from repro.workloads.generator import GeneratedWorkload, generate_workload

__all__ = [
    "canonical_store_trace",
    "workload_trace",
    "trace_hash",
    "golden_trace_payload",
    "config_trace",
]


def canonical_store_trace(store: MetricsStore, topology) -> dict[str, Any]:
    """Canonical per-component series from an existing metrics store.

    Spouts contribute their ``emit-count``, bolts their
    ``execute-count``, plus the topology backpressure gauge — the
    signals whose drift would change every downstream calibration.
    """
    series: dict[str, Any] = {}
    for name, spec in topology.components.items():
        component_series = store.aggregate(
            MetricNames.EMIT_COUNT if spec.is_spout
            else MetricNames.EXECUTE_COUNT,
            {"topology": topology.name, "component": name},
        )
        series[name] = {
            "timestamps": [int(t) for t in component_series.timestamps],
            "values": [float(v) for v in component_series.values],
        }
    backpressure = store.get(
        MetricNames.TOPOLOGY_BACKPRESSURE_TIME_MS,
        {"topology": topology.name},
    )
    return {
        "series": series,
        "backpressure_ms": {
            "timestamps": [int(t) for t in backpressure.timestamps],
            "values": [float(v) for v in backpressure.values],
        },
    }


def workload_trace(
    workload: GeneratedWorkload,
    schedule_tpm: Sequence[float],
    seed: int = 0,
) -> dict[str, Any]:
    """Run one workload through a rate schedule and canonicalise it.

    Each schedule entry is a topology-level source rate held for one
    minute (divided evenly over the spouts).  Returns a JSON-stable
    mapping; hash it with :func:`trace_hash`.
    """
    store = MetricsStore()
    topology, packing, logic = workload.deployment()
    simulation = HeronSimulation(
        topology, packing, logic, store, SimulationConfig(seed=seed)
    )
    for rate_tpm in schedule_tpm:
        workload.set_source_rates(simulation, float(rate_tpm))
        simulation.run(1)
    trace = {
        "topology": topology.name,
        "seed": int(seed),
        "minutes": len(schedule_tpm),
        "schedule_tpm": [float(r) for r in schedule_tpm],
    }
    trace.update(canonical_store_trace(store, topology))
    return trace


def trace_hash(trace: dict[str, Any]) -> str:
    """SHA-256 of the trace's canonical (sorted, compact) JSON."""
    canonical = json.dumps(
        trace, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("utf8")).hexdigest()


def config_trace(
    shape: str,
    seed: int,
    minutes: int = 4,
    *,
    tick_seconds: float = 1.0,
    stmgr_capacity_tps: float | None = None,
    fault: str | None = None,
) -> dict[str, Any]:
    """Canonical trace under a non-default simulator configuration.

    Exercises the configuration axes the default golden fixtures do not
    reach — sub-second ``tick_seconds``, finite ``stmgr_capacity_tps``
    (the explicit stream-manager queueing path), and each fault kind —
    so every code path of the engine is pinned by a committed hash, not
    just the transparent fault-free one.
    """
    from repro.workloads.scenarios import fault_plan_for

    workload = generate_workload(shape, seed)
    plan = fault_plan_for(fault, workload) if fault else None
    store = MetricsStore()
    topology, packing, logic = workload.deployment()
    simulation = HeronSimulation(
        topology,
        packing,
        logic,
        store,
        SimulationConfig(
            seed=seed,
            tick_seconds=tick_seconds,
            stmgr_capacity_tps=stmgr_capacity_tps,
        ),
        faults=plan,
    )
    schedule = [0.6 * workload.base_rate_tpm] * minutes
    for rate_tpm in schedule:
        workload.set_source_rates(simulation, float(rate_tpm))
        simulation.run(1)
    trace = {
        "topology": topology.name,
        "seed": int(seed),
        "minutes": int(minutes),
        "schedule_tpm": [float(r) for r in schedule],
        "tick_seconds": float(tick_seconds),
        "stmgr_capacity_tps": (
            None
            if stmgr_capacity_tps is None
            else float(stmgr_capacity_tps)
        ),
        "fault": fault,
    }
    trace.update(canonical_store_trace(store, topology))
    return trace


def golden_trace_payload(
    shape: str, seed: int, minutes: int = 4
) -> dict[str, Any]:
    """The committed-fixture payload for one (shape, seed) identity.

    A fixture stores the full trace alongside its hash: the test only
    compares hashes, but a mismatch investigation needs the series that
    produced the committed one.
    """
    workload = generate_workload(shape, seed)
    schedule = [0.6 * workload.base_rate_tpm] * minutes
    trace = workload_trace(workload, schedule, seed=seed)
    return {
        "shape": shape,
        "seed": int(seed),
        "minutes": int(minutes),
        "trace_hash": trace_hash(trace),
        "trace": trace,
    }
