"""Topology metadata service: the Heron Tracker substitute.

The Heron Tracker "continuously gathers information about Heron topologies
running on a cluster, including information about their running status,
logical representations and resource allocations, and exposes a RESTful
API" (paper Section III-C1).  Caladrius reads topology graphs from it and
caches them, invalidating on update.

:class:`TopologyTracker` is the in-process version of that service; the
REST surface over it lives in :mod:`repro.api`.  It also implements the
metadata-freshness contract the paper describes: every registration or
update bumps a monotonically increasing revision, so cached graph state
can be invalidated precisely.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.errors import TopologyError
from repro.heron.packing import PackingPlan
from repro.heron.topology import LogicalTopology

__all__ = ["TrackedTopology", "TopologyTracker"]


@dataclass(frozen=True)
class TrackedTopology:
    """One registered topology: plans plus tracker bookkeeping."""

    topology: LogicalTopology
    packing: PackingPlan
    cluster: str
    environ: str
    revision: int

    @property
    def name(self) -> str:
        """The topology name."""
        return self.topology.name

    def logical_plan(self) -> dict[str, object]:
        """A JSON-friendly logical plan, Tracker-style."""
        spouts = {
            c.name: {"parallelism": c.parallelism}
            for c in self.topology.spouts()
        }
        bolts = {}
        for bolt in self.topology.bolts():
            bolts[bolt.name] = {
                "parallelism": bolt.parallelism,
                "inputs": [
                    {
                        "component": s.source,
                        "stream": s.name,
                        "grouping": s.grouping.name,
                    }
                    for s in self.topology.inputs(bolt.name)
                ],
            }
        return {"name": self.name, "spouts": spouts, "bolts": bolts}

    def packing_plan(self) -> dict[str, object]:
        """A JSON-friendly packing plan, Tracker-style."""
        return self.packing.summary()


class TopologyTracker:
    """An in-memory registry of running topologies.

    Thread-safe: the API tier serves requests from worker threads while
    experiments register and update topologies.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._topologies: dict[tuple[str, str, str], TrackedTopology] = {}
        self._revision = 0
        self._listeners: list[Callable[[str], None]] = []

    def _key(self, cluster: str, environ: str, name: str) -> tuple[str, str, str]:
        return (cluster, environ, name)

    def register(
        self,
        topology: LogicalTopology,
        packing: PackingPlan,
        cluster: str = "local",
        environ: str = "test",
    ) -> TrackedTopology:
        """Register (or re-register) a topology and return its record."""
        if packing.topology_name != topology.name:
            raise TopologyError(
                "packing plan belongs to "
                f"{packing.topology_name!r}, not {topology.name!r}"
            )
        with self._lock:
            self._revision += 1
            tracked = TrackedTopology(
                topology, packing, cluster, environ, self._revision
            )
            self._topologies[self._key(cluster, environ, topology.name)] = tracked
            listeners = list(self._listeners)
        for listener in listeners:
            listener(topology.name)
        return tracked

    def update(
        self,
        name: str,
        topology: LogicalTopology,
        packing: PackingPlan,
        cluster: str = "local",
        environ: str = "test",
    ) -> TrackedTopology:
        """Replace a registered topology's plans (a deployed scaling).

        The new record gets a fresh revision, signalling cached graph
        state to invalidate (the paper's graph-metadata component).
        """
        key = self._key(cluster, environ, name)
        with self._lock:
            if key not in self._topologies:
                raise TopologyError(f"topology {name!r} is not registered")
            if topology.name != name:
                raise TopologyError(
                    f"cannot update {name!r} with topology {topology.name!r}"
                )
            self._revision += 1
            tracked = TrackedTopology(
                topology, packing, cluster, environ, self._revision
            )
            self._topologies[key] = tracked
            listeners = list(self._listeners)
        for listener in listeners:
            listener(name)
        return tracked

    def get(
        self,
        name: str,
        cluster: str = "local",
        environ: str = "test",
    ) -> TrackedTopology:
        """The record for one topology (raises when unknown)."""
        with self._lock:
            record = self._topologies.get(self._key(cluster, environ, name))
        if record is None:
            raise TopologyError(
                f"topology {name!r} is not registered in "
                f"{cluster}/{environ}"
            )
        return record

    def topologies(self) -> list[TrackedTopology]:
        """Every registered topology."""
        with self._lock:
            return list(self._topologies.values())

    def names(self) -> list[str]:
        """Sorted names of registered topologies."""
        with self._lock:
            return sorted(t.name for t in self._topologies.values())

    def revision_of(
        self,
        name: str,
        cluster: str = "local",
        environ: str = "test",
    ) -> int:
        """The registered revision (cache-invalidation token)."""
        return self.get(name, cluster, environ).revision

    def add_listener(self, listener: Callable[[str], None]) -> None:
        """Call ``listener(name)`` after every register/update.

        Listeners run outside the tracker lock; the serving tier uses
        them to invalidate cached modelling results on plan changes.
        """
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[str], None]) -> None:
        """Unsubscribe a previously added listener (idempotent)."""
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)


class GraphCache:
    """Revision-keyed cache for derived graph state.

    The paper: "a topology's logical and physical representation is cached
    in the graph metadata component ... if a change is made to a topology,
    the information in the graph component is invalidated and updated."
    Values are cached per (topology, revision); a new revision naturally
    misses, and stale revisions are evicted on insert.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, tuple[int, object]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, name: str, revision: int) -> object | None:
        """Cached value for this topology at this revision, if fresh."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None and entry[0] == revision:
                self.hits += 1
                return entry[1]
            self.misses += 1
            return None

    def put(self, name: str, revision: int, value: object) -> None:
        """Store a derived value for this topology revision."""
        with self._lock:
            self._entries[name] = (revision, value)

    def stats(self) -> Mapping[str, int]:
        """Hit/miss counters (for the cache-efficacy test)."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses}
