"""Graceful-shutdown races: concurrent drains, SIGTERM mid-request,
SIGTERM while a shard is still replaying its WAL.

The in-process tests drive :meth:`CaladriusServer.shutdown_gracefully`
directly; the subprocess test reproduces the cluster drain story — a
worker hard-killed mid-storm, restarted (WAL replay), and SIGTERMed
immediately — and asserts a clean exit with every acknowledged write
still present.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api.app import CaladriusApp
from repro.api.client import CaladriusClient
from repro.api.server import CaladriusServer
from repro.config import load_config
from repro.durability import open_data_dir
from repro.errors import ApiError
from repro.heron.tracker import TopologyTracker
from repro.timeseries.store import MetricsStore

REPO_SRC = Path(__file__).resolve().parents[2] / "src"
_PORT_LINE = re.compile(r"caladrius serving on ([\d.]+):(\d+)")


def _build_service(deployed_wordcount):
    _, _, _, store, tracker = deployed_wordcount
    config = load_config(
        {
            "traffic_models": ["stats-summary"],
            "performance_models": ["throughput-prediction"],
        }
    )
    app = CaladriusApp(config, tracker, store)
    server = CaladriusServer(app, port=0)
    server.start()
    return app, server


class TestConcurrentShutdown:
    def test_concurrent_graceful_shutdowns_collapse_to_one(
        self, deployed_wordcount
    ):
        app, server = _build_service(deployed_wordcount)
        try:
            results: list[bool] = []
            errors: list[BaseException] = []

            def drain():
                try:
                    results.append(
                        server.shutdown_gracefully(drain_timeout=5.0)
                    )
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=drain) for _ in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not errors
            assert results == [True] * 8
            assert server._shutdown_done.is_set()
        finally:
            app.shutdown()

    def test_shutdown_after_stop_is_a_noop(self, deployed_wordcount):
        app, server = _build_service(deployed_wordcount)
        try:
            assert server.shutdown_gracefully(drain_timeout=1.0) is True
            # A second call (late signal, atexit, …) must not raise.
            assert server.shutdown_gracefully(drain_timeout=1.0) is True
        finally:
            app.shutdown()


class TestSigtermMidRequest:
    def test_sigterm_during_inflight_plan_sweep(self, deployed_wordcount):
        """The drain waits for an in-flight plan sweep to finish."""
        app, server = _build_service(deployed_wordcount)
        saved_term = signal.getsignal(signal.SIGTERM)
        saved_int = signal.getsignal(signal.SIGINT)
        client = CaladriusClient(server.host, server.port, retries=0)
        try:
            done = server.install_signal_handlers(drain_timeout=30.0)
            sweep_result: list = []
            sweep_errors: list[BaseException] = []

            def sweep():
                try:
                    sweep_result.append(
                        client.plan_sweep(
                            "word-count",
                            source_rate=10e6,
                            plans=[
                                {"splitter": 1, "counter": 2},
                                {"splitter": 2, "counter": 4},
                                {"splitter": 4, "counter": 4},
                            ],
                        )
                    )
                except BaseException as exc:  # noqa: BLE001
                    sweep_errors.append(exc)

            worker = threading.Thread(target=sweep, daemon=True)
            worker.start()
            deadline = time.monotonic() + 10
            while (
                app.lifecycle.inflight() == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.002)
            assert app.lifecycle.inflight() > 0, "sweep never went in flight"
            signal.raise_signal(signal.SIGTERM)
            assert done.wait(timeout=60), "shutdown never completed"
            worker.join(timeout=30)
            # The in-flight request completed despite the SIGTERM.
            assert not sweep_errors
            assert sweep_result and sweep_result[0]["ranked"]
        finally:
            signal.signal(signal.SIGTERM, saved_term)
            signal.signal(signal.SIGINT, saved_int)
            client.close()
            app.shutdown()

    def test_draining_service_refuses_new_work(self, deployed_wordcount):
        app, server = _build_service(deployed_wordcount)
        client = CaladriusClient(server.host, server.port, retries=0)
        try:
            assert app.lifecycle.begin_drain()
            with pytest.raises(ApiError) as excinfo:
                client.performance("word-count", source_rate=10e6)
            assert excinfo.value.status == 503
            with pytest.raises(ApiError) as probe:
                client.readyz()
            assert probe.value.status == 503
        finally:
            client.close()
            server.stop()
            app.shutdown()


class TestDrainDuringReplay:
    def test_sigterm_during_wal_replay_loses_nothing(self, tmp_path):
        """kill -9, restart (replay), immediate SIGTERM: clean + complete."""
        data_dir = tmp_path / "data"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC)
        argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--data-dir", str(data_dir),
            "--fsync", "always",
            "--port", "0",
        ]

        def spawn() -> tuple[subprocess.Popen, int]:
            process = subprocess.Popen(
                argv,
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                match = _PORT_LINE.search(line)
                if match:
                    return process, int(match.group(2))
                if process.poll() is not None:
                    break
                time.sleep(0.01)
            stderr = process.stderr.read() if process.stderr else ""
            process.kill()
            raise AssertionError(f"no announce line\n{stderr}")

        process, port = spawn()
        client = CaladriusClient("127.0.0.1", port, retries=0)
        acked: list[int] = []
        try:
            client.wait_ready(timeout=30)
            for batch in range(1, 120):
                base = batch * 1000
                client.write_metrics(
                    "replaytest",
                    [(base + i, float(base + i)) for i in range(10)],
                    {"topology": "drainy", "batch": str(batch)},
                )
                acked.append(batch)
        finally:
            client.close()
        process.kill()  # SIGKILL: no checkpoint, full WAL replay on boot
        process.wait(timeout=30)

        # Restart (recovery replays ~1200 WAL records before the
        # announce line) and SIGTERM the instant the port appears —
        # racing the drain against the freshly-replayed state's final
        # checkpoint.
        process2, _ = spawn()
        process2.send_signal(signal.SIGTERM)
        stdout, stderr = process2.communicate(timeout=90)
        assert process2.returncode == 0, (
            f"unclean exit {process2.returncode}\n{stderr}"
        )

        # Every acknowledged batch survived both the kill and the
        # drain-during-replay restart.
        store, _ = open_data_dir(data_dir)
        try:
            names = {
                key.tag_dict().get("batch")
                for key in store.keys("replaytest")
            }
            for batch in acked:
                assert str(batch) in names, f"acked batch {batch} lost"
        finally:
            store.close()
