"""Logical topology definition: components, streams and validation.

A topology (paper Section II-A) is a directed acyclic graph of components.
Spouts pull tuples into the topology; bolts process them.  Each component
has a developer-chosen parallelism, and every edge (stream) carries a
grouping that decides how tuples are partitioned across the downstream
component's instances.

The classes here are pure structure — no behaviour.  Processing behaviour
(rates, I/O coefficients, CPU costs) is attached separately in
:mod:`repro.heron.simulation` so that a single logical topology can be
simulated, re-packed and scaled without rebuilding.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, replace

from repro.errors import TopologyError
from repro.heron.groupings import Grouping

__all__ = ["ComponentSpec", "Stream", "LogicalTopology", "TopologyBuilder"]

SPOUT = "spout"
BOLT = "bolt"
DEFAULT_STREAM = "default"


@dataclass(frozen=True)
class ComponentSpec:
    """One logical component: name, kind (spout/bolt) and parallelism."""

    name: str
    kind: str
    parallelism: int

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("component name must be non-empty")
        if self.kind not in (SPOUT, BOLT):
            raise TopologyError(f"component kind must be spout or bolt, got {self.kind!r}")
        if self.parallelism < 1:
            raise TopologyError(
                f"component {self.name!r} parallelism must be >= 1, "
                f"got {self.parallelism}"
            )

    @property
    def is_spout(self) -> bool:
        """True for source components."""
        return self.kind == SPOUT


@dataclass(frozen=True)
class Stream:
    """A directed edge between two components.

    ``name`` distinguishes multiple streams between the same component
    pair (a component may emit several logical output streams).
    """

    source: str
    destination: str
    grouping: Grouping
    name: str = DEFAULT_STREAM

    def key(self) -> tuple[str, str, str]:
        """The unique identity of this stream."""
        return (self.source, self.destination, self.name)


class LogicalTopology:
    """An immutable, validated topology DAG.

    Build instances through :class:`TopologyBuilder`; the constructor
    validates and should be considered internal to this module.
    """

    def __init__(
        self,
        name: str,
        components: Mapping[str, ComponentSpec],
        streams: Iterable[Stream],
    ) -> None:
        if not name:
            raise TopologyError("topology name must be non-empty")
        self.name = name
        self._components = dict(components)
        self._streams = list(streams)
        self._validate()
        self._out: dict[str, list[Stream]] = {c: [] for c in self._components}
        self._in: dict[str, list[Stream]] = {c: [] for c in self._components}
        for stream in self._streams:
            self._out[stream.source].append(stream)
            self._in[stream.destination].append(stream)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self._components:
            raise TopologyError("topology has no components")
        seen: set[tuple[str, str, str]] = set()
        for stream in self._streams:
            for endpoint in (stream.source, stream.destination):
                if endpoint not in self._components:
                    raise TopologyError(
                        f"stream references unknown component {endpoint!r}"
                    )
            if self._components[stream.destination].is_spout:
                raise TopologyError(
                    f"spout {stream.destination!r} cannot receive a stream"
                )
            if stream.key() in seen:
                raise TopologyError(f"duplicate stream {stream.key()!r}")
            seen.add(stream.key())
        spouts = [c for c in self._components.values() if c.is_spout]
        if not spouts:
            raise TopologyError("topology needs at least one spout")
        self._check_acyclic()
        self._check_bolts_connected()

    def _check_acyclic(self) -> None:
        adjacency: dict[str, list[str]] = {c: [] for c in self._components}
        for stream in self._streams:
            adjacency[stream.source].append(stream.destination)
        state: dict[str, int] = {}

        def visit(node: str) -> None:
            state[node] = 1
            for nxt in adjacency[node]:
                mark = state.get(nxt, 0)
                if mark == 1:
                    raise TopologyError(f"topology contains a cycle through {nxt!r}")
                if mark == 0:
                    visit(nxt)
            state[node] = 2

        for node in self._components:
            if state.get(node, 0) == 0:
                visit(node)

    def _check_bolts_connected(self) -> None:
        receiving = {s.destination for s in self._streams}
        for component in self._components.values():
            if not component.is_spout and component.name not in receiving:
                raise TopologyError(
                    f"bolt {component.name!r} receives no input stream"
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def components(self) -> dict[str, ComponentSpec]:
        """Name-to-spec mapping (a copy; the topology stays immutable)."""
        return dict(self._components)

    @property
    def streams(self) -> list[Stream]:
        """All streams (a copy)."""
        return list(self._streams)

    def component(self, name: str) -> ComponentSpec:
        """The spec for one component (raises on unknown names)."""
        try:
            return self._components[name]
        except KeyError:
            raise TopologyError(f"unknown component {name!r}") from None

    def parallelism(self, name: str) -> int:
        """Shorthand for ``component(name).parallelism``."""
        return self.component(name).parallelism

    def spouts(self) -> list[ComponentSpec]:
        """All source components, in insertion order."""
        return [c for c in self._components.values() if c.is_spout]

    def bolts(self) -> list[ComponentSpec]:
        """All processing components, in insertion order."""
        return [c for c in self._components.values() if not c.is_spout]

    def sinks(self) -> list[ComponentSpec]:
        """Components with no outgoing streams."""
        return [
            c for c in self._components.values() if not self._out[c.name]
        ]

    def outputs(self, name: str) -> list[Stream]:
        """Streams leaving a component."""
        self.component(name)
        return list(self._out[name])

    def inputs(self, name: str) -> list[Stream]:
        """Streams arriving at a component."""
        self.component(name)
        return list(self._in[name])

    def topological_order(self) -> list[ComponentSpec]:
        """Components ordered so every stream goes forward."""
        in_degree = {name: len(self._in[name]) for name in self._components}
        ready = [name for name, deg in in_degree.items() if deg == 0]
        order: list[ComponentSpec] = []
        while ready:
            name = ready.pop(0)
            order.append(self._components[name])
            for stream in self._out[name]:
                in_degree[stream.destination] -= 1
                if in_degree[stream.destination] == 0:
                    ready.append(stream.destination)
        return order

    def total_instances(self) -> int:
        """Sum of parallelisms over all components."""
        return sum(c.parallelism for c in self._components.values())

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_parallelism(self, changes: Mapping[str, int]) -> "LogicalTopology":
        """A copy of this topology with some components' parallelism changed.

        This is the logical half of the ``heron update`` command; packing
        and (optionally) model evaluation happen in
        :mod:`repro.heron.scaling`.
        """
        components = dict(self._components)
        for name, parallelism in changes.items():
            if name not in components:
                raise TopologyError(f"unknown component {name!r}")
            components[name] = replace(components[name], parallelism=parallelism)
        return LogicalTopology(self.name, components, self._streams)

    def __repr__(self) -> str:
        return (
            f"LogicalTopology({self.name!r}, components={len(self._components)}, "
            f"streams={len(self._streams)})"
        )


class TopologyBuilder:
    """Fluent builder for :class:`LogicalTopology`.

    Example
    -------
    >>> builder = TopologyBuilder("wc")
    >>> builder.add_spout("sentence-spout", parallelism=8)
    >>> builder.add_bolt("splitter", parallelism=3)
    >>> builder.add_bolt("counter", parallelism=3)
    >>> builder.connect("sentence-spout", "splitter", ShuffleGrouping())
    >>> builder.connect("splitter", "counter", fields_grouping)
    >>> topology = builder.build()
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._components: dict[str, ComponentSpec] = {}
        self._streams: list[Stream] = []

    def _add(self, name: str, kind: str, parallelism: int) -> "TopologyBuilder":
        if name in self._components:
            raise TopologyError(f"component {name!r} already defined")
        self._components[name] = ComponentSpec(name, kind, parallelism)
        return self

    def add_spout(self, name: str, parallelism: int) -> "TopologyBuilder":
        """Declare a source component."""
        return self._add(name, SPOUT, parallelism)

    def add_bolt(self, name: str, parallelism: int) -> "TopologyBuilder":
        """Declare a processing component."""
        return self._add(name, BOLT, parallelism)

    def connect(
        self,
        source: str,
        destination: str,
        grouping: Grouping,
        stream: str = DEFAULT_STREAM,
    ) -> "TopologyBuilder":
        """Add a stream between two declared components."""
        for endpoint in (source, destination):
            if endpoint not in self._components:
                raise TopologyError(
                    f"connect references undeclared component {endpoint!r}"
                )
        self._streams.append(Stream(source, destination, grouping, stream))
        return self

    def build(self) -> LogicalTopology:
        """Validate and return the immutable topology."""
        return LogicalTopology(self._name, self._components, self._streams)
