"""Tests for configuration loading and the model registry."""

from __future__ import annotations

import pytest

from repro.config import build_registry, load_config
from repro.core.performance_models import (
    BackpressureEvaluationModel,
    ThroughputPredictionModel,
)
from repro.core.traffic_models import (
    ProphetTrafficModel,
    StatsSummaryTrafficModel,
)
from repro.errors import ConfigError
from repro.heron.tracker import TopologyTracker
from repro.timeseries.store import MetricsStore


class TestLoadConfig:
    def test_defaults_from_empty_document(self):
        config = load_config({})
        assert config.traffic_models == ("prophet", "stats-summary")
        assert "throughput-prediction" in config.performance_models
        assert config.api_port == 8080

    def test_nested_caladrius_section(self):
        config = load_config(
            {"caladrius": {"traffic_models": ["stats-summary"]}}
        )
        assert config.traffic_models == ("stats-summary",)

    def test_model_options(self):
        config = load_config(
            {
                "model_options": {
                    "stats-summary": {"statistic": "p90", "window": 120}
                }
            }
        )
        assert config.options_for("stats-summary") == {
            "statistic": "p90",
            "window": 120,
        }
        assert config.options_for("prophet") == {}

    def test_yaml_file_round_trip(self, tmp_path):
        path = tmp_path / "caladrius.yaml"
        path.write_text(
            "caladrius:\n"
            "  traffic_models: [prophet]\n"
            "  performance_models: [backpressure-evaluation]\n"
            "  api: {host: 0.0.0.0, port: 9090}\n"
            "  log_level: DEBUG\n"
        )
        config = load_config(path)
        assert config.traffic_models == ("prophet",)
        assert config.api_host == "0.0.0.0"
        assert config.api_port == 9090
        assert config.log_level == "DEBUG"

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            load_config(tmp_path / "missing.yaml")

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError, match="unknown traffic_models"):
            load_config({"traffic_models": ["arima"]})

    def test_empty_model_list_rejected(self):
        with pytest.raises(ConfigError, match="at least one"):
            load_config({"performance_models": []})

    def test_bad_port(self):
        with pytest.raises(ConfigError, match="port"):
            load_config({"api": {"port": -1}})

    def test_bad_host(self):
        with pytest.raises(ConfigError, match="host"):
            load_config({"api": {"host": ""}})

    def test_bad_log_level(self):
        with pytest.raises(ConfigError, match="log_level"):
            load_config({"log_level": "TRACE"})

    def test_bad_model_options_shape(self):
        with pytest.raises(ConfigError, match="model_options"):
            load_config({"model_options": {"prophet": "yes"}})

    def test_non_mapping_root(self, tmp_path):
        path = tmp_path / "list.yaml"
        path.write_text("- a\n- b\n")
        with pytest.raises(ConfigError, match="mapping"):
            load_config(path)


class TestRegistry:
    def test_default_registry_instantiates_all_models(self):
        config = load_config({})
        registry = build_registry(config, TopologyTracker(), MetricsStore())
        assert isinstance(registry.traffic["prophet"], ProphetTrafficModel)
        assert isinstance(
            registry.traffic["stats-summary"], StatsSummaryTrafficModel
        )
        assert isinstance(
            registry.performance["throughput-prediction"],
            ThroughputPredictionModel,
        )
        assert isinstance(
            registry.performance["backpressure-evaluation"],
            BackpressureEvaluationModel,
        )

    def test_per_instance_prophet_variant(self):
        config = load_config(
            {"traffic_models": ["prophet-per-instance"]}
        )
        registry = build_registry(config, TopologyTracker(), MetricsStore())
        assert registry.traffic["prophet-per-instance"].per_instance

    def test_options_are_forwarded(self):
        config = load_config(
            {
                "traffic_models": ["stats-summary"],
                "model_options": {"stats-summary": {"statistic": "p90"}},
            }
        )
        registry = build_registry(config, TopologyTracker(), MetricsStore())
        assert registry.traffic["stats-summary"].statistic == "p90"

    def test_model_selection(self):
        config = load_config({})
        registry = build_registry(config, TopologyTracker(), MetricsStore())
        assert len(registry.traffic_model(None)) == 2
        assert len(registry.traffic_model("prophet")) == 1
        with pytest.raises(ConfigError, match="not enabled"):
            registry.traffic_model("arima")
        with pytest.raises(ConfigError, match="not enabled"):
            registry.performance_model("nonsense")


class TestHoltWintersRegistration:
    def test_holt_winters_is_a_known_traffic_model(self):
        config = load_config(
            {
                "traffic_models": ["holt-winters"],
                "model_options": {"holt-winters": {"season_length": 24}},
            }
        )
        registry = build_registry(config, TopologyTracker(), MetricsStore())
        model = registry.traffic["holt-winters"]
        assert model.name == "holt-winters"
        from repro.forecasting import HoltWinters

        forecaster = model.make_forecaster()
        assert isinstance(forecaster, HoltWinters)
        assert forecaster.season_length == 24


class TestServingConfig:
    def test_defaults(self):
        config = load_config({})
        serving = config.serving
        assert serving.enabled is True
        assert serving.cache_mb == 64.0
        assert serving.cache_bytes == 64 * 1024 * 1024
        assert serving.ttl_seconds == 300.0
        assert serving.max_concurrent == 4
        assert serving.max_queue == 32
        assert serving.precompute_top_k == 8
        assert serving.job_result_ttl_seconds == 60.0

    def test_overrides(self):
        config = load_config(
            {
                "serving": {
                    "enabled": False,
                    "cache_mb": 8,
                    "ttl_seconds": None,
                    "max_concurrent": 2,
                    "max_queue": 4,
                    "precompute_top_k": 3,
                    "job_result_ttl_seconds": 10,
                }
            }
        )
        serving = config.serving
        assert serving.enabled is False
        assert serving.cache_mb == 8.0
        assert serving.cache_bytes == 8 * 1024 * 1024
        assert serving.ttl_seconds is None
        assert serving.max_concurrent == 2
        assert serving.max_queue == 4
        assert serving.precompute_top_k == 3
        assert serving.job_result_ttl_seconds == 10.0

    def test_section_must_be_a_mapping(self):
        with pytest.raises(ConfigError, match="mapping"):
            load_config({"serving": ["cache_mb"]})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown serving keys"):
            load_config({"serving": {"cache_gb": 1}})

    def test_enabled_must_be_boolean(self):
        with pytest.raises(ConfigError, match="enabled"):
            load_config({"serving": {"enabled": "yes"}})

    @pytest.mark.parametrize(
        "key", ["cache_mb", "ttl_seconds", "job_result_ttl_seconds"]
    )
    def test_numbers_must_be_positive(self, key):
        with pytest.raises(ConfigError, match=key):
            load_config({"serving": {key: 0}})
        with pytest.raises(ConfigError, match=key):
            load_config({"serving": {key: "lots"}})

    @pytest.mark.parametrize(
        "key", ["max_concurrent", "max_queue", "precompute_top_k"]
    )
    def test_counts_must_be_positive_integers(self, key):
        with pytest.raises(ConfigError, match=key):
            load_config({"serving": {key: 0}})
        with pytest.raises(ConfigError, match=key):
            load_config({"serving": {key: 2.5}})


class TestClusterConfig:
    def test_defaults(self):
        cluster = load_config({}).cluster
        assert cluster.shards == 1
        assert cluster.virtual_nodes == 64
        assert cluster.replicate is False
        assert cluster.ship_interval_seconds == 0.5
        assert cluster.restart_backoff_seconds == 0.2
        assert cluster.proxy_timeout_seconds == 30.0

    def test_overrides(self):
        cluster = load_config(
            {
                "cluster": {
                    "shards": 4,
                    "virtual_nodes": 128,
                    "replicate": True,
                    "ship_interval_seconds": 0.1,
                    "restart_backoff_seconds": 1,
                    "proxy_timeout_seconds": 5,
                }
            }
        ).cluster
        assert cluster.shards == 4
        assert cluster.virtual_nodes == 128
        assert cluster.replicate is True
        assert cluster.ship_interval_seconds == 0.1
        assert cluster.restart_backoff_seconds == 1.0
        assert cluster.proxy_timeout_seconds == 5.0

    def test_section_must_be_a_mapping(self):
        with pytest.raises(ConfigError, match="mapping"):
            load_config({"cluster": [4]})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown cluster keys"):
            load_config({"cluster": {"shard_count": 4}})

    def test_replicate_must_be_boolean(self):
        with pytest.raises(ConfigError, match="replicate"):
            load_config({"cluster": {"replicate": "yes"}})

    @pytest.mark.parametrize("key", ["shards", "virtual_nodes"])
    def test_counts_must_be_positive_integers(self, key):
        with pytest.raises(ConfigError, match=key):
            load_config({"cluster": {key: 0}})
        with pytest.raises(ConfigError, match=key):
            load_config({"cluster": {key: 2.5}})

    @pytest.mark.parametrize(
        "key",
        [
            "ship_interval_seconds",
            "restart_backoff_seconds",
            "proxy_timeout_seconds",
        ],
    )
    def test_numbers_must_be_positive(self, key):
        with pytest.raises(ConfigError, match=key):
            load_config({"cluster": {key: 0}})
        with pytest.raises(ConfigError, match=key):
            load_config({"cluster": {key: "fast"}})
