"""DurableMetricsStore: journalled mutations and the recovery contract.

"Crashes" here are simulated the honest way: the store object is
abandoned without ``close()`` (so nothing is flushed beyond what the
fsync policy already persisted) and the directory is reopened fresh.
"""

from __future__ import annotations

import pytest

from repro.durability import DurableMetricsStore, open_data_dir
from repro.errors import MetricsError


def _fill(store, n, name="m", topology="t"):
    for i in range(n):
        store.write(name, 60 * (i + 1), float(i), {"topology": topology})


class TestJournalledWrites:
    def test_acked_writes_survive_abandonment(self, tmp_path):
        store = DurableMetricsStore(tmp_path, fsync="always")
        _fill(store, 30)
        # no close(): the process "dies" here
        recovered = DurableMetricsStore(tmp_path)
        series = recovered.get("m", {"topology": "t"})
        assert list(series.values) == [float(i) for i in range(30)]
        assert recovered.recovery.replayed_records == 30
        recovered.close()

    def test_validation_errors_do_not_pollute_the_log(self, tmp_path):
        store = DurableMetricsStore(tmp_path, fsync="always")
        store.write("m", 120, 1.0)
        with pytest.raises(MetricsError):
            store.write("m", 60, 2.0)  # out of order: rejected pre-journal
        store.close()
        recovered = DurableMetricsStore(tmp_path)
        assert recovered.recovery.replayed_records == 1
        assert recovered.recovery.skipped_records == 0
        recovered.close()

    def test_clear_is_journalled(self, tmp_path):
        store = DurableMetricsStore(tmp_path, fsync="always")
        _fill(store, 5)
        store.clear()
        store.write("fresh", 60, 9.0)
        recovered = DurableMetricsStore(tmp_path)
        assert recovered.metric_names() == ["fresh"]
        recovered.close()

    def test_unknown_wal_op_is_skipped_not_fatal(self, tmp_path):
        store = DurableMetricsStore(tmp_path, fsync="always")
        store.write("m", 60, 1.0)
        store.wal.append({"op": "frobnicate"})
        store.write("m", 120, 2.0)
        recovered = DurableMetricsStore(tmp_path)
        assert recovered.recovery.replayed_records == 2
        assert recovered.recovery.skipped_records == 1
        assert list(recovered.get("m").values) == [1.0, 2.0]
        recovered.close()


class TestVersionsAcrossRestart:
    def test_data_version_never_rewinds(self, tmp_path):
        store = DurableMetricsStore(tmp_path, fsync="always")
        _fill(store, 25, topology="wc")
        before = store.data_version("wc")
        assert before == 25
        recovered = DurableMetricsStore(tmp_path)
        assert recovered.data_version("wc") >= before
        recovered.write("m", 60 * 26, 25.0, {"topology": "wc"})
        assert recovered.data_version("wc") > before
        recovered.close()

    def test_retention_comes_back_from_the_checkpoint(self, tmp_path):
        from repro.durability import CheckpointManager

        store, tracker = open_data_dir(tmp_path, retention_seconds=600)
        _fill(store, 5)
        CheckpointManager(store, tracker).checkpoint()
        store.close()
        # reopened without re-specifying retention
        recovered, _ = open_data_dir(tmp_path)
        assert recovered.retention_seconds == 600
        recovered.close()

    def test_retention_trims_replay_without_losing_new_writes(self, tmp_path):
        store = DurableMetricsStore(tmp_path, retention_seconds=300, fsync="always")
        _fill(store, 20)  # spans 60..1200s; retention keeps the last 300s
        version = store.data_version("t")
        store.close()
        recovered = DurableMetricsStore(tmp_path, retention_seconds=300)
        series = recovered.get("m", {"topology": "t"})
        assert series.timestamps[0] >= 1200 - 300
        assert series.timestamps[-1] == 1200
        # the version counter still reflects every write ever applied
        assert recovered.data_version("t") >= version
        recovered.close()


class TestFsyncPolicies:
    def test_interval_policy_persists_on_close(self, tmp_path):
        store = DurableMetricsStore(
            tmp_path, fsync="interval", fsync_interval_seconds=3600
        )
        _fill(store, 10)
        store.close()  # close flushes regardless of the interval
        recovered = DurableMetricsStore(tmp_path)
        assert len(recovered.get("m", {"topology": "t"}).timestamps) == 10
        recovered.close()

    def test_flush_forces_durability_mid_interval(self, tmp_path):
        store = DurableMetricsStore(
            tmp_path, fsync="interval", fsync_interval_seconds=3600
        )
        _fill(store, 7)
        store.flush()
        recovered = DurableMetricsStore(tmp_path)  # store never closed
        assert len(recovered.get("m", {"topology": "t"}).timestamps) == 7
        recovered.close()
