"""Process-pool fan-out for simulator-backed plan validation.

The analytic kernel ranks plans in microseconds; *validating* the top
candidates means running the discrete-event simulator per plan, which is
CPU-bound Python.  :func:`validate_plans` fans those runs out over a
``ProcessPoolExecutor``: the pickled :class:`ValidationSpec` (topology,
component logic, traffic program) is shipped **once per worker** via the
pool initializer, the plan list is chunked through ``Executor.map``, and
every plan gets a deterministic seed derived from the spec's base seed
and the plan's canonical JSON — so results are bitwise independent of
worker count, chunking and scheduling order.
"""

from __future__ import annotations

import math
import pickle
import zlib
from collections.abc import Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.heron.metrics import MetricNames
from repro.heron.packing import Resources, RoundRobinPacking
from repro.heron.simulation import (
    ComponentLogic,
    HeronSimulation,
    SimulationConfig,
    SpoutLogic,
    warm_shares_memo,
)
from repro.heron.topology import LogicalTopology
from repro.serving.fingerprint import canonical_json
from repro.timeseries.store import MetricsStore

__all__ = ["ValidationSpec", "plan_seed", "validate_plans"]


@dataclass(frozen=True)
class ValidationSpec:
    """Everything a worker needs to simulate one candidate plan.

    Immutable and pickleable: shipped to each pool worker exactly once.
    """

    topology: LogicalTopology
    logic: Mapping[str, SpoutLogic | ComponentLogic]
    source_rates_tpm: Mapping[str, float]
    minutes: int = 5
    tick_seconds: float = 1.0
    base_seed: int = 0
    warmup_minutes: int = 1
    instances_per_container: int = 2
    container_resources: Resources = field(
        default_factory=lambda: Resources(cpu=1.0, ram_bytes=2 * 1024**3)
    )


def plan_seed(base_seed: int, plan: Mapping[str, int]) -> int:
    """Deterministic, process-independent seed for one plan.

    CRC32 of the canonical JSON of ``(base_seed, plan)``: stable across
    Python processes and platforms (unlike ``hash``), cheap, and unique
    enough that distinct plans in one sweep draw independent noise.
    """
    payload = canonical_json({"seed": int(base_seed), "plan": dict(plan)})
    return zlib.crc32(payload.encode("utf8"))


def _validate_one(
    spec: ValidationSpec, plan: dict[str, int], seed: int
) -> dict[str, object]:
    """Simulate one plan in a fresh store and summarize steady state."""
    topology = spec.topology.with_parallelism(dict(plan))
    containers = max(
        1,
        math.ceil(
            topology.total_instances() / max(1, spec.instances_per_container)
        ),
    )
    packing = RoundRobinPacking(spec.container_resources).pack(
        topology, containers
    )
    store = MetricsStore()
    config = SimulationConfig(tick_seconds=spec.tick_seconds, seed=seed)
    simulation = HeronSimulation(topology, packing, spec.logic, store, config)
    for spout, rate_tpm in spec.source_rates_tpm.items():
        simulation.set_source_rate(spout, float(rate_tpm))
    simulation.run(spec.minutes)
    tags = {"topology": topology.name}
    output_tpm = 0.0
    for sink in topology.sinks():
        series = store.aggregate(
            MetricNames.EXECUTE_COUNT, {**tags, "component": sink.name}
        )
        values = series.values[spec.warmup_minutes:]
        if values.shape[0]:
            output_tpm += float(values.mean())
    backpressure = store.aggregate(
        MetricNames.TOPOLOGY_BACKPRESSURE_TIME_MS, tags
    )
    bp_values = backpressure.values[spec.warmup_minutes:]
    backpressure_ms = float(bp_values.mean()) if bp_values.shape[0] else 0.0
    return {
        "plan": dict(plan),
        "seed": int(seed),
        "output_tpm": output_tpm,
        "backpressure_ms": backpressure_ms,
    }


# Worker-side state: the spec is unpickled once per worker process by
# the pool initializer, not once per task.
_WORKER_SPEC: ValidationSpec | None = None


def _init_worker(payload: bytes) -> None:
    global _WORKER_SPEC
    _WORKER_SPEC = pickle.loads(payload)
    # Resolve every stream's routing shares once per worker process:
    # the per-plan simulations then hit the process memo instead of
    # recomputing identical share vectors for each candidate.
    warm_shares_memo(_WORKER_SPEC.topology)


def _worker_validate(task: tuple[dict[str, int], int]) -> dict[str, object]:
    plan, seed = task
    assert _WORKER_SPEC is not None, "pool worker missing its spec"
    return _validate_one(_WORKER_SPEC, plan, seed)


def validate_plans(
    spec: ValidationSpec,
    plans: Sequence[Mapping[str, int]],
    workers: int = 0,
    chunk_size: int | None = None,
) -> list[dict[str, object]]:
    """Simulate every plan; fan out over processes when ``workers > 0``.

    ``workers <= 0`` runs inline in this process — producing results
    identical to the pooled path, which the determinism tests assert.
    Results are returned in plan order regardless of scheduling.
    """
    tasks = [
        (dict(plan), plan_seed(spec.base_seed, plan)) for plan in plans
    ]
    if workers <= 0 or len(tasks) <= 1:
        return [_validate_one(spec, plan, seed) for plan, seed in tasks]
    chunk = chunk_size or max(1, math.ceil(len(tasks) / (workers * 4)))
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(pickle.dumps(spec),),
    ) as executor:
        return list(executor.map(_worker_validate, tasks, chunksize=chunk))
