"""Fault injection: deterministic degraded-condition modelling.

This package supplies the three pieces of the robustness story:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultEvent`,
  seeded deterministic schedules of crashes, stragglers, stream-manager
  stalls and metric dropouts (plus YAML loading for the CLI);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which threads a
  plan through :class:`~repro.heron.simulation.HeronSimulation` tick by
  tick;
* :mod:`repro.faults.health` — :func:`assess_topology_metrics`, the
  metrics-health check behind the API tier's structured 503s;
* :mod:`repro.faults.service` — :class:`ServiceFaultInjector`,
  storage-layer faults (torn write, fsync error, disk full) driving the
  durability subsystem's crash-recovery tests.
"""

from repro.faults.health import MetricsHealth, assess_topology_metrics
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    load_fault_plan,
    single_event_plan,
)
from repro.faults.service import (
    ServiceFault,
    ServiceFaultInjector,
    parse_service_fault_spec,
)

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "MetricsHealth",
    "ServiceFault",
    "ServiceFaultInjector",
    "assess_topology_metrics",
    "load_fault_plan",
    "parse_service_fault_spec",
    "single_event_plan",
]
