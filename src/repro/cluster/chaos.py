"""Cluster chaos harness: seeded fault injection with invariant checks.

:class:`ChaosController` stands up a real replicated cluster (``serve
--shards N --replicate --sync-ship``) as a subprocess and subjects it to
a deterministic, seeded schedule of the failures the failover design
claims to survive:

``kill9``
    SIGKILL a shard worker mid-traffic (crash; WAL replay on respawn).
``pause``
    SIGSTOP a worker for a few seconds — a live-but-wedged process the
    manager's liveness probe must detect and kill.
``partition``
    SIGSTOP a follower, severing the shipping link; the shipper's 409
    offset handshake must resynchronise once the link heals.
``wipe``
    SIGSTOP the worker, delete its data directory, SIGKILL it — total
    disk loss.  Recovery validation must refuse the empty directory and
    promote the follower's byte mirror instead.

One shard additionally boots with a storage-fault schedule from
:mod:`repro.faults.service` (``torn_write`` / ``fsync_error`` /
``disk_full``) armed on its WAL, exercising the worker's WAL-failure
watchdog.

Throughout the run a writer thread appends metric samples through
:class:`~repro.cluster.client.ClusterClient` (keeping a ledger of every
*acknowledged* sample) and a prober thread reads every chaos topology
through the router (stale reads opted in), polls ring epochs, and fires
deliberate stale-epoch writes at respawned shards.  At the end the
harness checks four invariants:

1. **no_acked_write_lost** — every acknowledged sample is readable;
2. **single_writer_per_epoch** — epochs never regress and every
   stale-epoch write was fenced with a 409;
3. **replica_convergence** — each shard's store content hash equals its
   follower's;
4. **bounded_unavailability** — no topology was unreadable for longer
   than the bound (promotions and respawns are windows, not outages).

Everything derives from ``seed``: same seed, same schedule.  The
harness is wall-clock driven, so event *interleavings* can differ run
to run — the invariants are exactly the properties that must hold under
every interleaving.
"""

from __future__ import annotations

import json
import logging
import os
import random
import re
import shutil
import signal
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

from repro.api.client import CaladriusClient
from repro.cluster.client import ClusterClient
from repro.cluster.ring import HashRing
from repro.errors import ApiError, ReproError
from repro.faults.service import SERVICE_KINDS

__all__ = ["ChaosController", "ChaosEvent", "build_schedule"]

logger = logging.getLogger("repro.cluster.chaos")

KILL9 = "kill9"
PAUSE = "pause"
PARTITION = "partition"
WIPE = "wipe"
EVENT_KINDS = (KILL9, PAUSE, PARTITION, WIPE)

_ANNOUNCE = re.compile(r"cluster .* serving on ([\d.]+):(\d+)")


class ChaosError(ReproError):
    """The chaos harness itself failed (not an invariant violation)."""


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled failure injection."""

    kind: str
    shard_id: int
    at_seconds: float
    duration_seconds: float = 0.0


def build_schedule(
    shards: int, seed: int, duration_seconds: float, events: int
) -> tuple[list[ChaosEvent], dict[int, str]]:
    """The seeded plan: timed events plus per-shard storage-fault specs.

    Deterministic in its arguments.  Two rules bound the blast radius so
    invariant failures stay attributable:

    * at most one ``wipe`` per run, and the wiped shard receives *only*
      its wipe (a wipe composed with a shipping partition genuinely
      loses acked writes — that is a disaster-recovery scenario, not a
      failover bug);
    * the storage-fault shard is never the wiped shard.
    """
    rng = random.Random(seed)
    kinds = [KILL9, KILL9, PAUSE, PARTITION, WIPE]
    raw: list[ChaosEvent] = []
    wipe_shard: int | None = None
    for _ in range(max(0, events)):
        kind = kinds[rng.randrange(len(kinds))]
        at = rng.uniform(0.15, 0.65) * duration_seconds
        shard_id = rng.randrange(shards)
        duration = 0.0
        if kind == WIPE and (wipe_shard is not None or shards < 2):
            kind = KILL9
        if kind == WIPE:
            wipe_shard = shard_id
        if kind in (PAUSE, PARTITION):
            duration = rng.uniform(1.0, 3.0)
        raw.append(
            ChaosEvent(kind, shard_id, round(at, 2), round(duration, 2))
        )
    schedule = sorted(
        (
            event
            for event in raw
            if event.shard_id != wipe_shard or event.kind == WIPE
        ),
        key=lambda event: event.at_seconds,
    )
    service_faults: dict[int, str] = {}
    candidates = [s for s in range(shards) if s != wipe_shard]
    if candidates and events > 0:
        victim = rng.choice(candidates)
        fault_kind = rng.choice(list(SERVICE_KINDS))
        service_faults[victim] = f"{fault_kind}@{rng.randint(8, 30)}"
    return schedule, service_faults


def chaos_topologies(
    shards: int, per_shard: int = 2, virtual_nodes: int = 64
) -> dict[str, int]:
    """Synthetic topology names covering every shard, with their owners.

    Metric writes and reads need no registration, so the harness just
    needs names the consistent-hash ring spreads across the fleet.
    """
    ring = HashRing(list(range(shards)), virtual_nodes)
    owned: dict[int, list[str]] = {shard: [] for shard in range(shards)}
    index = 0
    while any(len(names) < per_shard for names in owned.values()):
        name = f"chaos-t{index}"
        index += 1
        shard = ring.shard_for(name)
        if len(owned[shard]) < per_shard:
            owned[shard].append(name)
        if index > 10_000:  # pragma: no cover - ring is well distributed
            break
    return {
        name: shard for shard, names in owned.items() for name in names
    }


class ChaosController:
    """Runs one seeded chaos campaign against a freshly-spawned cluster.

    Parameters
    ----------
    shards / seed / duration_seconds / events:
        The campaign shape; the schedule derives deterministically from
        these via :func:`build_schedule`.
    data_root:
        Scratch directory for the cluster's shard and replica dirs.
    unavailability_bound_seconds:
        Invariant 4's ceiling on any topology's longest unreadable
        window (stale reads count as available).
    """

    def __init__(
        self,
        shards: int = 2,
        seed: int = 0,
        duration_seconds: float = 25.0,
        data_root: str | Path = ".",
        events: int = 6,
        write_interval_seconds: float = 0.04,
        probe_interval_seconds: float = 0.25,
        unavailability_bound_seconds: float = 15.0,
        quiesce_timeout_seconds: float = 60.0,
    ) -> None:
        if shards < 1:
            raise ChaosError("chaos needs at least one shard")
        if duration_seconds <= 0:
            raise ChaosError("duration must be positive")
        self.shards = shards
        self.seed = seed
        self.duration_seconds = duration_seconds
        self.data_root = Path(data_root)
        self.events = events
        self.write_interval_seconds = write_interval_seconds
        self.probe_interval_seconds = probe_interval_seconds
        self.unavailability_bound = unavailability_bound_seconds
        self.quiesce_timeout = quiesce_timeout_seconds

        self.host = "127.0.0.1"
        self.port: int | None = None
        self._process: subprocess.Popen | None = None
        self._log_tail: deque[str] = deque(maxlen=400)
        self.topologies: dict[str, int] = {}

        self._stop_threads = threading.Event()
        self._ledger_lock = threading.Lock()
        self.acked: dict[str, list[tuple[int, float]]] = {}
        self._counters: dict[str, int] = {}
        self.failed_writes = 0

        self._probe_client: CaladriusClient | None = None
        self._client: ClusterClient | None = None
        self._probes = 0
        self._stale_reads = 0
        self._epoch_high: dict[int, int] = {}
        self._epoch_regressions: list[tuple[int, int, int]] = []
        self._fence_probed: dict[int, int] = {}
        self._fence_attempts = 0
        self._fence_rejections = 0
        self._fence_accepted = 0
        self._fence_ts = 0
        self._open_windows: dict[str, float] = {}
        self._windows: list[float] = []
        self._stopped_pids: set[int] = set()
        self._known_pids: set[int] = set()
        self._executed: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Campaign
    # ------------------------------------------------------------------
    def run(self) -> dict[str, Any]:
        """Execute the campaign; returns the machine-readable report."""
        schedule, service_faults = build_schedule(
            self.shards, self.seed, self.duration_seconds, self.events
        )
        self.topologies = chaos_topologies(self.shards)
        quiesced = False
        quiesce_detail = ""
        convergence: list[dict[str, Any]] = []
        missing: list[dict[str, Any]] = []
        total_acked = 0
        try:
            self._start_cluster(service_faults)
            self._warmup()
            writer = threading.Thread(
                target=self._write_loop, name="chaos-writer", daemon=True
            )
            prober = threading.Thread(
                target=self._probe_loop, name="chaos-prober", daemon=True
            )
            writer.start()
            prober.start()
            self._execute(schedule)
            self._stop_threads.set()
            writer.join(timeout=15)
            prober.join(timeout=15)
            self._resume_all()
            quiesced, quiesce_detail = self._quiesce()
            if quiesced:
                self._settle_windows()
                convergence = self._check_convergence()
                missing, total_acked = self._check_acked_writes()
            else:
                with self._ledger_lock:
                    total_acked = sum(
                        len(samples) for samples in self.acked.values()
                    )
        finally:
            self._stop_threads.set()
            self._teardown()
        return self._report(
            schedule,
            service_faults,
            quiesced,
            quiesce_detail,
            convergence,
            missing,
            total_acked,
        )

    # ------------------------------------------------------------------
    # Cluster lifecycle
    # ------------------------------------------------------------------
    def _start_cluster(self, service_faults: dict[int, str]) -> None:
        self.data_root.mkdir(parents=True, exist_ok=True)
        config_path = self.data_root / "chaos-config.yaml"
        config_path.write_text(
            "caladrius:\n"
            "  cluster:\n"
            "    sync_ship: true\n"
            "    unresponsive_timeout_seconds: 2.0\n"
            "    ship_interval_seconds: 0.05\n"
            "    restart_backoff_seconds: 0.1\n"
            "    proxy_timeout_seconds: 3.0\n",
            encoding="utf8",
        )
        argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--config", str(config_path),
            "--shards", str(self.shards),
            "--replicate",
            "--data-dir", str(self.data_root),
            "--host", self.host, "--port", "0",
            "--fsync", "always",
            "--no-serving",
            "--drain-timeout", "2.0",
        ]
        if service_faults:
            spec = ";".join(
                f"{shard_id}:{fragment}"
                for shard_id, fragment in sorted(service_faults.items())
            )
            argv += ["--service-faults", spec]
        self._process = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        deadline = time.monotonic() + 120.0
        port = None
        assert self._process.stdout is not None
        while time.monotonic() < deadline:
            line = self._process.stdout.readline()
            if line:
                self._log_tail.append(line)
                match = _ANNOUNCE.search(line)
                if match:
                    port = int(match.group(2))
                    break
            elif self._process.poll() is not None:
                break
            else:
                time.sleep(0.01)
        if port is None:
            tail = "".join(list(self._log_tail)[-20:])
            raise ChaosError(
                f"cluster never announced a port\n{tail}"
            )
        threading.Thread(
            target=self._drain_log, daemon=True, name="chaos-log"
        ).start()
        self.port = port
        self._probe_client = CaladriusClient(
            self.host, port, timeout=2.0, retries=0
        )
        self._client = ClusterClient(
            self.host,
            port,
            ring_ttl_seconds=1.0,
            failover_retries=1,
            timeout=3.0,
            retries=1,
            backoff_seconds=0.05,
            backoff_max_seconds=0.5,
        )

    def _drain_log(self) -> None:
        process = self._process
        if process is None or process.stdout is None:
            return
        try:
            for line in process.stdout:
                self._log_tail.append(line)
        except (OSError, ValueError):
            pass

    def _teardown(self) -> None:
        self._resume_all()
        if self._client is not None:
            self._client.close()
        if self._probe_client is not None:
            self._probe_client.close()
        process = self._process
        if process is None:
            return
        if process.poll() is None:
            try:
                process.send_signal(signal.SIGTERM)
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                # Killing the front door orphans its children; take the
                # last-known worker/follower pids down with it.
                process.kill()
                for pid in self._known_pids:
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except (ProcessLookupError, OSError):
                        pass
                try:
                    process.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
            except (ProcessLookupError, OSError):  # pragma: no cover
                pass

    def _resume_all(self) -> None:
        for pid in list(self._stopped_pids):
            try:
                os.kill(pid, signal.SIGCONT)
            except (ProcessLookupError, OSError):
                pass
            self._stopped_pids.discard(pid)

    # ------------------------------------------------------------------
    # Load and probing
    # ------------------------------------------------------------------
    def _warmup(self) -> None:
        """One acknowledged write per topology before chaos begins."""
        assert self._client is not None
        deadline = time.monotonic() + 30.0
        pending = list(self.topologies)
        while pending and time.monotonic() < deadline:
            name = pending[0]
            if self._write_one(name):
                pending.pop(0)
            else:
                time.sleep(0.1)
        if pending:
            raise ChaosError(
                f"warmup writes never succeeded for {pending}"
            )

    def _write_one(self, name: str) -> bool:
        """One sample to ``name``'s series; ledger it if acknowledged.

        The per-topology counter advances on failure too: an errored
        write may still have landed (ack lost in flight), and reusing
        its timestamp would be rejected as a duplicate forever after.
        """
        assert self._client is not None
        counter = self._counters.get(name, 0) + 1
        self._counters[name] = counter
        sample = (counter * 60, float(counter))
        try:
            self._client.write_metrics(
                "chaos-samples", [list(sample)], {"topology": name}
            )
        except (ApiError, OSError):
            self.failed_writes += 1
            return False
        with self._ledger_lock:
            self.acked.setdefault(name, []).append(sample)
        return True

    def _write_loop(self) -> None:
        names = list(self.topologies)
        index = 0
        while not self._stop_threads.is_set():
            self._write_one(names[index % len(names)])
            index += 1
            self._stop_threads.wait(self.write_interval_seconds)

    def _probe_loop(self) -> None:
        while not self._stop_threads.is_set():
            self._probe_pass()
            self._stop_threads.wait(self.probe_interval_seconds)

    def _probe_pass(self) -> None:
        """One sweep: ring epochs, fence probes, per-topology reads."""
        assert self._probe_client is not None
        addresses: dict[str, Any] = {}
        try:
            ring = self._probe_client._request("GET", "/cluster/ring")
            statuses = {
                status["shard_id"]: status
                for status in self._probe_client._request(
                    "GET", "/cluster/stats"
                )["shards"]
            }
            for status in statuses.values():
                for key in ("pid", "follower_pid"):
                    if status.get(key):
                        self._known_pids.add(status[key])
            for shard_text, epoch in (ring.get("epochs") or {}).items():
                shard_id = int(shard_text)
                last = self._epoch_high.get(shard_id, 0)
                if int(epoch) < last:
                    self._epoch_regressions.append(
                        (shard_id, last, int(epoch))
                    )
                else:
                    self._epoch_high[shard_id] = int(epoch)
            addresses = ring.get("addresses") or {}
        except (ApiError, OSError):
            pass
        self._fence_probes(addresses)
        now = time.monotonic()
        for name in self.topologies:
            ok, stale = self._read_probe(name)
            self._probes += 1
            if stale:
                self._stale_reads += 1
            window_start = self._open_windows.get(name)
            if ok:
                if window_start is not None:
                    self._windows.append(now - window_start)
                    del self._open_windows[name]
            elif window_start is None:
                self._open_windows[name] = now

    def _read_probe(self, name: str) -> tuple[bool, bool]:
        assert self._probe_client is not None
        try:
            payload = self._probe_client._request(
                "GET",
                "/metrics/read",
                {"name": "chaos-samples", "topology": name},
                headers={"X-Allow-Stale-Read": "1"},
            )
        except (ApiError, OSError):
            return False, False
        return True, bool(payload.get("stale_read"))

    def _fence_probes(self, addresses: dict[str, Any]) -> None:
        """Write with a superseded epoch at respawned shards; expect 409.

        Each (shard, epoch) pair is probed once, and only on a
        *definitive* outcome — fenced 409 or (a violation) acceptance.
        Transport errors and unrelated rejections leave the pair
        unprobed for the next pass.
        """
        for shard_text, address in addresses.items():
            shard_id = int(shard_text)
            epoch = self._epoch_high.get(shard_id, 0)
            if (
                not address
                or epoch < 2
                or self._fence_probed.get(shard_id) == epoch
            ):
                continue
            host, _, port = address.rpartition(":")
            client = CaladriusClient(
                host, int(port), timeout=2.0, retries=0
            )
            self._fence_ts += 60
            try:
                client.write_metrics(
                    "chaos-fence-probe",
                    [[self._fence_ts, 1.0]],
                    {"topology": f"fence-{shard_id}"},
                    epoch=epoch - 1,
                )
            except ApiError as exc:
                if exc.status == 409 and (exc.payload or {}).get("fenced"):
                    self._fence_attempts += 1
                    self._fence_rejections += 1
                    self._fence_probed[shard_id] = epoch
            except OSError:
                pass
            else:
                self._fence_attempts += 1
                self._fence_accepted += 1
                self._fence_probed[shard_id] = epoch
            finally:
                client.close()

    # ------------------------------------------------------------------
    # Event execution
    # ------------------------------------------------------------------
    def _execute(self, schedule: list[ChaosEvent]) -> None:
        start = time.monotonic()
        timeline: list[tuple[float, Any]] = [
            (event.at_seconds, event) for event in schedule
        ]
        while timeline:
            timeline.sort(key=lambda item: item[0])
            at, action = timeline.pop(0)
            delay = start + at - time.monotonic()
            if delay > 0:
                if self._stop_threads.wait(delay):
                    return
            if isinstance(action, ChaosEvent):
                self._fire(action, timeline)
            else:
                action()
        remaining = start + self.duration_seconds - time.monotonic()
        if remaining > 0:
            self._stop_threads.wait(remaining)

    def _fire(
        self, event: ChaosEvent, timeline: list[tuple[float, Any]]
    ) -> None:
        record = dict(asdict(event), executed=False)
        self._executed.append(record)
        status = self._shard_status(event.shard_id)
        target_key = "follower_pid" if event.kind == PARTITION else "pid"
        pid = status.get(target_key)
        if not pid or (
            event.kind == WIPE and status.get("state") != "ready"
        ):
            record["skipped"] = (
                f"no live target (state={status.get('state', 'unknown')})"
            )
            return
        try:
            if event.kind == KILL9:
                os.kill(pid, signal.SIGKILL)
            elif event.kind in (PAUSE, PARTITION):
                os.kill(pid, signal.SIGSTOP)
                self._stopped_pids.add(pid)
                timeline.append(
                    (
                        event.at_seconds + event.duration_seconds,
                        lambda pid=pid: self._resume(pid),
                    )
                )
            elif event.kind == WIPE:
                # Stop-first ordering: a running worker could ack writes
                # into already-unlinked files between rmtree and SIGKILL,
                # and those acks would be genuinely unrecoverable.
                os.kill(pid, signal.SIGSTOP)
                shutil.rmtree(
                    self.data_root / f"shard-{event.shard_id}",
                    ignore_errors=True,
                )
                os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, OSError) as exc:
            record["skipped"] = f"signal failed: {exc}"
            return
        record["executed"] = True
        logger.info(
            "chaos: %s shard %d at t=%.1fs",
            event.kind,
            event.shard_id,
            event.at_seconds,
        )

    def _resume(self, pid: int) -> None:
        try:
            os.kill(pid, signal.SIGCONT)
        except (ProcessLookupError, OSError):
            pass  # the liveness probe killed it first; recovery handles it
        self._stopped_pids.discard(pid)

    def _shard_status(self, shard_id: int) -> dict[str, Any]:
        assert self._probe_client is not None
        try:
            stats = self._probe_client._request("GET", "/cluster/stats")
        except (ApiError, OSError):
            return {}
        for status in stats.get("shards", []):
            if status.get("shard_id") == shard_id:
                return status
        return {}

    # ------------------------------------------------------------------
    # Post-run verification
    # ------------------------------------------------------------------
    def _quiesce(self) -> tuple[bool, str]:
        """Wait for every shard to be ready again after the last event."""
        assert self._probe_client is not None
        deadline = time.monotonic() + self.quiesce_timeout
        states: dict[int, str] = {}
        while time.monotonic() < deadline:
            try:
                stats = self._probe_client._request("GET", "/cluster/stats")
                states = {
                    status["shard_id"]: status.get("state", "?")
                    for status in stats.get("shards", [])
                }
                if states and all(
                    state == "ready" for state in states.values()
                ):
                    return True, "all shards ready"
            except (ApiError, OSError):
                pass
            time.sleep(0.2)
        return False, f"shards never quiesced: {states}"

    def _settle_windows(self) -> None:
        """Close any still-open unavailability window with live probes."""
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            self._probe_pass()
            if not self._open_windows:
                return
            time.sleep(0.2)
        now = time.monotonic()
        for start in self._open_windows.values():
            self._windows.append(now - start)
        self._open_windows.clear()

    def _check_convergence(self) -> list[dict[str, Any]]:
        """Each shard's content hash must match its follower's."""
        assert self._probe_client is not None
        results: dict[int, dict[str, Any]] = {}
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                ring = self._probe_client._request("GET", "/cluster/ring")
                stats = self._probe_client._request("GET", "/cluster/stats")
            except (ApiError, OSError):
                time.sleep(0.2)
                continue
            followers = {
                status["shard_id"]: status.get("follower_port")
                for status in stats.get("shards", [])
            }
            for shard_text, address in (ring.get("addresses") or {}).items():
                shard_id = int(shard_text)
                entry = self._compare_hashes(
                    shard_id, address, followers.get(shard_id)
                )
                results[shard_id] = entry
            if len(results) == self.shards and all(
                entry["converged"] for entry in results.values()
            ):
                break
            time.sleep(0.3)
        return [results[shard_id] for shard_id in sorted(results)]

    def _compare_hashes(
        self, shard_id: int, address: str | None, follower_port: int | None
    ) -> dict[str, Any]:
        entry: dict[str, Any] = {
            "shard_id": shard_id,
            "converged": False,
            "worker_hash": None,
            "follower_hash": None,
        }
        if not address or not follower_port:
            return entry
        host, _, port = address.rpartition(":")
        worker = CaladriusClient(host, int(port), timeout=3.0, retries=0)
        follower = CaladriusClient(
            self.host, follower_port, timeout=3.0, retries=0
        )
        try:
            entry["worker_hash"] = worker.state_hash().get("content_hash")
            entry["follower_hash"] = follower._request(
                "GET", "/replica/status"
            ).get("content_hash")
        except (ApiError, OSError):
            return entry
        finally:
            worker.close()
            follower.close()
        entry["converged"] = (
            entry["worker_hash"] is not None
            and entry["worker_hash"] == entry["follower_hash"]
        )
        return entry

    def _check_acked_writes(self) -> tuple[list[dict[str, Any]], int]:
        """Every ledgered (acked) sample must be readable post-recovery."""
        assert self._client is not None
        with self._ledger_lock:
            ledger = {
                name: list(samples) for name, samples in self.acked.items()
            }
        total = sum(len(samples) for samples in ledger.values())
        missing: list[dict[str, Any]] = []
        for name, samples in sorted(ledger.items()):
            stored: set[tuple[int, float]] = set()
            for attempt in range(3):
                try:
                    series = self._client.read_metrics(
                        "chaos-samples", {"topology": name}
                    )
                except (ApiError, OSError):
                    time.sleep(0.5)
                    continue
                for entry in series:
                    stored.update(
                        zip(
                            (int(t) for t in entry["timestamps"]),
                            (float(v) for v in entry["values"]),
                        )
                    )
                break
            lost = [s for s in samples if s not in stored]
            if lost:
                missing.append(
                    {
                        "topology": name,
                        "lost": len(lost),
                        "first": list(lost[0]),
                    }
                )
        return missing, total

    # ------------------------------------------------------------------
    # Report
    # ------------------------------------------------------------------
    def _report(
        self,
        schedule: list[ChaosEvent],
        service_faults: dict[int, str],
        quiesced: bool,
        quiesce_detail: str,
        convergence: list[dict[str, Any]],
        missing: list[dict[str, Any]],
        total_acked: int,
    ) -> dict[str, Any]:
        lost = sum(entry["lost"] for entry in missing)
        max_window = max(self._windows, default=0.0)
        invariants = {
            "no_acked_write_lost": {
                "ok": quiesced and lost == 0,
                "detail": (
                    f"{lost} of {total_acked} acked samples missing"
                    if lost
                    else f"all {total_acked} acked samples present"
                ),
            },
            "single_writer_per_epoch": {
                "ok": (
                    not self._epoch_regressions
                    and self._fence_accepted == 0
                ),
                "detail": (
                    f"{self._fence_rejections}/{self._fence_attempts} "
                    f"stale-epoch writes fenced, "
                    f"{len(self._epoch_regressions)} epoch regressions"
                ),
            },
            "replica_convergence": {
                "ok": quiesced
                and len(convergence) == self.shards
                and all(entry["converged"] for entry in convergence),
                "detail": (
                    f"{sum(1 for e in convergence if e['converged'])}"
                    f"/{self.shards} shards converged"
                ),
            },
            "bounded_unavailability": {
                "ok": quiesced
                and max_window <= self.unavailability_bound,
                "detail": (
                    f"max window {max_window:.1f}s "
                    f"(bound {self.unavailability_bound:.1f}s)"
                    + ("" if quiesced else f"; {quiesce_detail}")
                ),
            },
        }
        client = self._client
        with self._ledger_lock:
            acked = sum(len(samples) for samples in self.acked.values())
        report = {
            "ok": all(entry["ok"] for entry in invariants.values()),
            "seed": self.seed,
            "shards": self.shards,
            "duration_seconds": self.duration_seconds,
            "events": self._executed
            or [dict(asdict(event), executed=False) for event in schedule],
            "service_faults": {
                str(shard): spec for shard, spec in service_faults.items()
            },
            "invariants": invariants,
            "counters": {
                "acked_writes": acked,
                "failed_writes": self.failed_writes,
                "fenced_writes": client.fenced_writes if client else 0,
                "router_fallbacks": client.router_fallbacks if client else 0,
                "retry_after_waits": (
                    client.retry_after_waits if client else 0
                ),
                "probes": self._probes,
                "stale_reads": self._stale_reads,
                "fence_attempts": self._fence_attempts,
                "fence_rejections": self._fence_rejections,
                "fence_accepted": self._fence_accepted,
            },
            "unavailability_windows": [
                round(window, 2) for window in sorted(self._windows)
            ],
            "epochs": {
                str(shard): epoch
                for shard, epoch in sorted(self._epoch_high.items())
            },
            "convergence": convergence,
            "missing": missing,
            "quiesced": quiesced,
        }
        return report
