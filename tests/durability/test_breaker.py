"""Circuit breaker state machine around model evaluation."""

from __future__ import annotations

import pytest

from repro.durability import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, CircuitOpenError
from repro.errors import ApiError, ConfigError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def boom():
    raise ValueError("evaluation blew up")


def make(clock, **overrides):
    options = dict(
        failure_threshold=0.5,
        window=10,
        min_calls=4,
        open_seconds=5.0,
        clock=clock,
    )
    options.update(overrides)
    return CircuitBreaker(**options)


class TestTripping:
    def test_stays_closed_below_min_calls(self):
        clock = FakeClock()
        breaker = make(clock)
        for _ in range(3):
            with pytest.raises(ValueError):
                breaker.call(boom)
        assert breaker.state == CLOSED  # 3 < min_calls: rate not trusted

    def test_trips_open_at_failure_rate(self):
        clock = FakeClock()
        breaker = make(clock)
        for _ in range(4):
            with pytest.raises(ValueError):
                breaker.call(boom)
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.call(lambda: "never runs")
        assert excinfo.value.status == 503
        assert excinfo.value.payload["retry_after"] >= 1

    def test_api_errors_do_not_count_as_failures(self):
        clock = FakeClock()
        breaker = make(clock)

        def refuse():
            raise ApiError("degraded metrics", 503)

        for _ in range(10):
            with pytest.raises(ApiError):
                breaker.call(refuse)
        assert breaker.state == CLOSED

    def test_mixed_outcomes_below_threshold_stay_closed(self):
        clock = FakeClock()
        breaker = make(clock)
        for i in range(12):
            if i % 4 == 0:
                with pytest.raises(ValueError):
                    breaker.call(boom)
            else:
                breaker.call(lambda: "ok")
        assert breaker.state == CLOSED


class TestHalfOpen:
    def _trip(self, breaker):
        for _ in range(4):
            with pytest.raises(ValueError):
                breaker.call(boom)
        assert breaker.state == OPEN

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = make(clock)
        self._trip(breaker)
        clock.advance(5.1)
        assert breaker.state == HALF_OPEN
        assert breaker.call(lambda: 42) == 42
        assert breaker.state == CLOSED
        # the window was wiped: one old failure must not re-trip
        with pytest.raises(ValueError):
            breaker.call(boom)
        assert breaker.state == CLOSED

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = make(clock)
        self._trip(breaker)
        clock.advance(5.1)
        with pytest.raises(ValueError):
            breaker.call(boom)
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "rejected")

    def test_stats_shape(self):
        clock = FakeClock()
        breaker = make(clock)
        self._trip(breaker)
        stats = breaker.stats()
        assert stats["state"] == OPEN
        assert stats["opened_count"] == 1
        assert 0.0 < stats["failure_rate"] <= 1.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0.0},
            {"failure_threshold": 1.5},
            {"window": 0},
            {"min_calls": 0},
            {"open_seconds": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            make(FakeClock(), **kwargs)
