"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "--rate", "1e6"])
        args = build_parser().parse_args(
            ["simulate", "--rate", "1000000"]
        )
        assert args.minutes == 5
        assert args.splitter == 3

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])


class TestSimulate:
    def test_table_output(self, capsys):
        code = main(
            ["simulate", "--rate", "8000000", "--minutes", "2",
             "--splitter", "1", "--counter", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "splitter in" in out
        assert out.count("\n") >= 3

    def test_json_output(self, capsys):
        code = main(
            ["simulate", "--rate", "8000000", "--minutes", "2",
             "--splitter", "1", "--counter", "2", "--json"]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2
        assert rows[0]["splitter_in_tpm"] == pytest.approx(8e6, rel=0.05)

    def test_saturated_rate_shows_backpressure(self, capsys):
        main(
            ["simulate", "--rate", "14000000", "--minutes", "3",
             "--splitter", "1", "--counter", "2", "--json"]
        )
        rows = json.loads(capsys.readouterr().out)
        assert rows[-1]["backpressure_ms"] > 10_000


class TestPredict:
    def test_plain_output(self, capsys):
        code = main(["predict", "--rate", "30000000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "risk" in out
        assert "saturation" in out

    def test_json_with_proposal(self, capsys):
        code = main(
            ["predict", "--rate", "30000000",
             "--propose", "splitter=4,counter=6", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["parallelisms"]["splitter"] == 4
        assert payload["parallelisms"]["counter"] == 6
        assert payload["backpressure_risk"] == "low"

    def test_bad_proposal_string(self):
        with pytest.raises(SystemExit):
            main(["predict", "--rate", "1000000", "--propose", "nonsense"])


class TestForecast:
    def test_stats_summary_model(self, capsys):
        code = main(
            ["forecast", "--history-minutes", "60",
             "--horizon-minutes", "10", "--model", "stats-summary"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stats-summary" in out

    def test_prophet_json(self, capsys):
        code = main(
            ["forecast", "--history-minutes", "120",
             "--horizon-minutes", "10", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "prophet"
        assert payload["summary"]["mean"] > 0


class TestServe:
    def test_serve_once_with_demo(self, capsys):
        code = main(["serve", "--demo", "--port", "0", "--once"])
        assert code == 0
        assert "caladrius serving on" in capsys.readouterr().out

    def test_serve_once_empty(self, capsys):
        code = main(["serve", "--port", "0", "--once"])
        assert code == 0

    def test_serve_with_config(self, tmp_path, capsys):
        config = tmp_path / "c.yaml"
        config.write_text(
            "caladrius:\n  traffic_models: [stats-summary]\n"
        )
        code = main(
            ["serve", "--config", str(config), "--port", "0", "--once"]
        )
        assert code == 0

    def test_serve_bad_config_is_reported(self, tmp_path, capsys):
        config = tmp_path / "c.yaml"
        config.write_text("caladrius:\n  traffic_models: [nope]\n")
        code = main(
            ["serve", "--config", str(config), "--port", "0", "--once"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSimulateYamlTopology:
    def test_yaml_topology_runs(self, tmp_path, capsys):
        path = tmp_path / "topo.yaml"
        path.write_text(
            "topology: cli-yaml\n"
            "components:\n"
            "  src: {kind: spout, parallelism: 2, streams: {default: 1.0}}\n"
            "  work: {kind: bolt, parallelism: 2, capacity_tpm: 5000000}\n"
            "connections:\n"
            "  - {from: src, to: work}\n"
        )
        code = main(
            ["simulate", "--rate", "2000000", "--minutes", "2",
             "--topology", str(path), "--json"]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["work_in_tpm"] == pytest.approx(2e6, rel=0.05)

    def test_missing_yaml_reports_error(self, tmp_path, capsys):
        code = main(
            ["simulate", "--rate", "1000000",
             "--topology", str(tmp_path / "nope.yaml")]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err


class TestMatrix:
    def test_report_byte_identical_across_runs(self, tmp_path, capsys):
        first_path = tmp_path / "first.json"
        second_path = tmp_path / "second.json"
        for path in (first_path, second_path):
            code = main(
                ["matrix", "--seed", "7", "--cells", "4",
                 "--report", str(path)]
            )
            assert code == 0
        assert first_path.read_bytes() == second_path.read_bytes()
        report = json.loads(first_path.read_text())
        assert report["schema"] == "caladrius.matrix_report/v1"
        assert len(report["cells"]) == 4
        assert report["summary"]["ok"] is True

    def test_table_output_lists_cells(self, capsys):
        code = main(["matrix", "--seed", "7", "--cells", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "diamond/crash/steady" in out
        assert "fanin/crash/steady" in out

    def test_json_output(self, capsys):
        code = main(
            ["matrix", "--seed", "7", "--cells", "1", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["cells"] == 1

    def test_unknown_shape_rejected(self):
        with pytest.raises(SystemExit):
            main(["matrix", "--shapes", "pentagon"])
