"""Durability subsystem tests: WAL, checkpoints, recovery, lifecycle."""
