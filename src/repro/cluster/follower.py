"""Follower replica: replays shipped WAL segments into a read mirror.

A follower is a separate process paired with one shard.  The shard's
:class:`~repro.cluster.shipping.SegmentShipper` streams it two things —
``checkpoint.json`` whenever it changes, and raw segment bytes — and the
follower maintains:

* **a byte mirror**: shipped bytes are appended verbatim (and fsynced)
  under ``replica_dir/wal/`` with the checkpoint beside them, so the
  replica directory is a valid Caladrius data directory.  Losing a
  shard's disk is recoverable by pointing
  :func:`repro.durability.recovery.open_data_dir` (or ``caladrius
  recover``) at the replica;
* **a live read replica**: every *complete* frame past the applied LSN
  is decoded with the same codec recovery uses
  (:func:`~repro.durability.wal.read_segment_records` +
  :func:`~repro.durability.store.apply_wal_record`) into an in-memory
  store and tracker, served read-only through an embedded
  :class:`~repro.api.app.CaladriusApp` — modelling queries
  (``/model/…``, ``/topologies``) work against the follower; writes are
  refused with 403.

Replication is asynchronous: a follower read may trail the shard by up
to one ship interval.  ``GET /replica/status`` reports the applied LSN
and a content hash so callers (and the scale-out benchmark) can verify
convergence.

The follower also enforces epoch fencing: it records the highest
writer-generation epoch ever stamped onto a ``/replica/…`` post
(persisted to ``shipper.epoch`` so a follower restart cannot forget a
fence) and answers 409 ``"fenced": true`` to any *older* epoch.  A
superseded zombie primary — fenced off by a promotion — can therefore
never mutate replica state, no matter how late its shipper wakes up.
"""

from __future__ import annotations

import json
import logging
import os
import re
import threading
from pathlib import Path
from typing import Any

from repro.cluster.epoch import fencing_rejection
from repro.durability.checkpoint import (
    CHECKPOINT_FILENAME,
    CHECKPOINT_FORMAT,
)
from repro.durability.codec import (
    restore_store_state,
    restore_tracker_state,
    store_content_hash,
)
from repro.durability.store import apply_wal_record
from repro.durability.wal import read_segment_records
from repro.errors import DurabilityError, MetricsError
from repro.heron.tracker import TopologyTracker
from repro.timeseries.store import MetricsStore

__all__ = ["FollowerReplica", "FollowerApp"]

logger = logging.getLogger("repro.cluster.follower")

_SEGMENT_NAME = re.compile(r"^wal-\d{16}\.log$")
_WAL_SUBDIR = "wal"
#: Where the highest fenced epoch persists inside the replica dir.
_EPOCH_FILENAME = "shipper.epoch"


class FollowerReplica:
    """Receives shipped checkpoint + segment bytes; serves replica state."""

    def __init__(self, replica_dir: str | Path) -> None:
        self.replica_dir = Path(replica_dir)
        self.wal_dir = self.replica_dir / _WAL_SUBDIR
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        self._mutex = threading.RLock()
        self.store: MetricsStore = MetricsStore(None)
        self.tracker = TopologyTracker()
        self.applied_lsn = 0
        self.checkpoint_lsn = 0
        self.applied_records = 0
        self.skipped_records = 0
        self.checkpoints_received = 0
        self.highest_epoch = 0
        self.fencing_409s = 0
        self._parse_offsets: dict[str, int] = {}
        self._load_epoch()
        self._bootstrap()

    # ------------------------------------------------------------------
    # Ingest endpoints (called by the HTTP layer)
    # ------------------------------------------------------------------
    def receive_checkpoint(self, raw: bytes) -> dict[str, Any]:
        """Accept a shipped ``checkpoint.json`` and reset replica state."""
        try:
            payload = json.loads(raw.decode("utf8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise DurabilityError(f"shipped checkpoint is not JSON: {exc}")
        if (
            not isinstance(payload, dict)
            or payload.get("format") != CHECKPOINT_FORMAT
        ):
            raise DurabilityError("shipped checkpoint has the wrong format")
        with self._mutex:
            self._write_atomic(self.replica_dir / CHECKPOINT_FILENAME, raw)
            self._reset_from_checkpoint(payload)
            self._replay_all_segments()
            self.checkpoints_received += 1
            return {"applied_lsn": self.applied_lsn}

    def receive_segment(
        self, name: str, offset: int, data: bytes
    ) -> tuple[int, dict[str, Any]]:
        """Append shipped bytes at ``offset``; 409 + our offset on a gap."""
        if not _SEGMENT_NAME.match(name):
            return 400, {"error": f"not a WAL segment name: {name!r}"}
        path = self.wal_dir / name
        with self._mutex:
            size = path.stat().st_size if path.exists() else 0
            if offset != size:
                return 409, {"offset": size}
            if data:
                with open(path, "ab") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                self._apply_new_frames(path)
            return 200, {
                "offset": size + len(data),
                "applied_lsn": self.applied_lsn,
            }

    def fence(self, epoch: int | None) -> dict[str, Any] | None:
        """Check a post's epoch; the 409 body when it is superseded.

        Accepting an epoch records it (persistently) as the new high
        water mark; anything *below* the mark is refused.  ``None``
        (an unstamped post) passes — the protocol is opt-in for
        single-process and test deployments.
        """
        if epoch is None:
            return None
        with self._mutex:
            if epoch < self.highest_epoch:
                self.fencing_409s += 1
                rejection = fencing_rejection(self.highest_epoch, epoch)
                rejection["follower_epoch"] = self.highest_epoch
                return rejection
            if epoch > self.highest_epoch:
                self.highest_epoch = epoch
                self._write_atomic(
                    self.replica_dir / _EPOCH_FILENAME,
                    str(epoch).encode("utf8"),
                )
            return None

    def _load_epoch(self) -> None:
        path = self.replica_dir / _EPOCH_FILENAME
        try:
            self.highest_epoch = int(path.read_text("utf8").strip())
        except FileNotFoundError:
            pass
        except (ValueError, OSError):
            logger.warning("replica epoch file is unreadable; resetting to 0")

    def status(self) -> dict[str, Any]:
        """Replication position + content hash, for convergence checks."""
        with self._mutex:
            return {
                "role": "follower",
                "replica_dir": str(self.replica_dir),
                "highest_epoch": self.highest_epoch,
                "fencing_409s": self.fencing_409s,
                "applied_lsn": self.applied_lsn,
                "checkpoint_lsn": self.checkpoint_lsn,
                "applied_records": self.applied_records,
                "skipped_records": self.skipped_records,
                "checkpoints_received": self.checkpoints_received,
                "segments": dict(sorted(self._parse_offsets.items())),
                "content_hash": store_content_hash(self.store),
                "topologies": self.tracker.names(),
            }

    # ------------------------------------------------------------------
    # Replay machinery
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        """A restarted follower rebuilds from its own mirrored files."""
        checkpoint_path = self.replica_dir / CHECKPOINT_FILENAME
        if checkpoint_path.exists():
            try:
                payload = json.loads(checkpoint_path.read_text("utf8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                logger.warning(
                    "replica checkpoint is torn; rebuilding from WAL only"
                )
                payload = None
            if isinstance(payload, dict) and (
                payload.get("format") == CHECKPOINT_FORMAT
            ):
                self._reset_from_checkpoint(payload)
        self._replay_all_segments()

    def _reset_from_checkpoint(self, payload: dict[str, Any]) -> None:
        retention = payload.get("retention_seconds")
        store = MetricsStore(retention)
        restore_store_state(store, payload["store"])
        tracker = TopologyTracker()
        if payload.get("tracker"):
            restore_tracker_state(tracker, payload["tracker"])
        # Swap wholesale: the embedded read-only app resolves
        # self.store/self.tracker per request, so assignment is enough.
        self.store = store
        self.tracker = tracker
        self.checkpoint_lsn = int(payload.get("last_lsn", 0))
        self.applied_lsn = self.checkpoint_lsn
        self._parse_offsets.clear()

    def _replay_all_segments(self) -> None:
        for path in sorted(self.wal_dir.glob("wal-*.log")):
            self._apply_new_frames(path)

    def _apply_new_frames(self, path: Path) -> None:
        """Decode complete frames past our parse offset and apply them.

        A shipped chunk may end mid-frame; ``read_segment_records``
        stops at the first incomplete or corrupt frame, and the parse
        offset stays just before it so the next shipment resumes there.
        """
        start = self._parse_offsets.get(path.name, 0)
        end = start
        for record, end in read_segment_records(path, start):
            lsn = int(record.get("lsn", 0))
            if lsn <= self.applied_lsn:
                continue
            try:
                apply_wal_record(self.store, record)
                self.applied_records += 1
            except MetricsError:
                # Same stance as crash recovery: a record the store
                # rejects (duplicate of checkpointed data) is skipped.
                self.skipped_records += 1
            self.applied_lsn = lsn
        self._parse_offsets[path.name] = end

    @staticmethod
    def _write_atomic(path: Path, raw: bytes) -> None:
        """Byte-preserving atomic replace (keeps the mirror exact)."""
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as handle:
            handle.write(raw)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)


class FollowerApp:
    """Routes ``/replica/*`` to the replica, everything else read-only.

    Duck-types :class:`~repro.api.app.CaladriusApp` just enough for
    :class:`~repro.api.server.CaladriusServer` to host it: ``handle``,
    ``lifecycle``, ``config`` and ``raw_body_paths`` (which makes the
    server hand ``/replica/…`` bodies through as raw bytes).
    """

    raw_body_paths = ("/replica/",)

    def __init__(self, replica: FollowerReplica, app: Any) -> None:
        self.replica = replica
        self.app = app

    @property
    def lifecycle(self):
        return self.app.lifecycle

    @property
    def config(self):
        return self.app.config

    def handle(
        self,
        method: str,
        path: str,
        query: dict[str, str],
        body: Any,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, Any]]:
        if path.startswith("/replica/"):
            return self._handle_replica(method, path, query, body)
        # Reads go to the embedded app over the replica's live state.
        self.app.store = self.replica.store
        self.app.tracker = self.replica.tracker
        return self.app.handle(method, path, query, body, headers=headers)

    def _handle_replica(
        self, method: str, path: str, query: dict[str, str], body: Any
    ) -> tuple[int, dict[str, Any]]:
        raw = body if isinstance(body, bytes) else b""
        if method == "GET" and path == "/replica/status":
            return 200, self.replica.status()
        if method == "POST":
            raw_epoch = query.get("epoch")
            if raw_epoch is not None:
                try:
                    epoch = int(raw_epoch)
                except ValueError:
                    return 400, {"error": "epoch must be an integer"}
                rejection = self.replica.fence(epoch)
                if rejection is not None:
                    return 409, rejection
        if method == "POST" and path == f"/replica/{CHECKPOINT_FILENAME}":
            try:
                return 200, self.replica.receive_checkpoint(raw)
            except DurabilityError as exc:
                return 400, {"error": str(exc)}
        if method == "POST" and path == "/replica/segment":
            name = query.get("name", "")
            try:
                offset = int(query.get("offset", "0"))
            except ValueError:
                return 400, {"error": "offset must be an integer"}
            return self.replica.receive_segment(name, offset, raw)
        return 404, {"error": f"no replica route for {method} {path}"}

    def close(self) -> None:
        self.app.shutdown()
