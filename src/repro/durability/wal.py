"""An append-only write-ahead log with CRC-framed records.

The log is a directory of segment files named ``wal-<first_lsn>.log``.
Each record is framed as::

    u32 payload_length | u32 crc32(payload) | payload (UTF-8 JSON)

(little-endian header).  Records carry a monotonically increasing log
sequence number (LSN) inside the payload; segments are rotated at a
configurable size so checkpoints can reclaim space by deleting whole
files rather than rewriting them.

Durability is governed by the fsync policy:

``always``
    ``fsync`` after every append — an acknowledged record survives
    ``kill -9`` (the crash-recovery harness runs in this mode).
``interval``
    ``fsync`` at most once per ``fsync_interval_seconds``; a crash can
    lose the unsynced suffix but never an earlier record.
``never``
    Leave flushing to the OS (benchmarks and tests).

Under ``interval`` and ``never``, appends are group-committed: framed
records buffer in memory and hit the file in batches (on the fsync
tick, on ``flush()``/``replay()``/``rotate()``, or when the buffer
tops 256 KB).  That keeps the per-append cost near a list append
without widening the policies' loss window.

Replay tolerates a *torn tail*: a crash mid-append leaves a truncated or
CRC-broken final record, which is skipped (and counted) rather than
aborting recovery.  Corruption anywhere else — a bad frame followed by
more data, or any damage in a non-final segment — is a real integrity
failure and raises :class:`~repro.errors.DurabilityError`.
"""

from __future__ import annotations

import io
import json
import os
import struct
import threading
import time
import zlib
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass
from json.encoder import encode_basestring_ascii as _escape
from pathlib import Path
from typing import Any

from repro.errors import DurabilityError

__all__ = [
    "FSYNC_ALWAYS",
    "FSYNC_INTERVAL",
    "FSYNC_NEVER",
    "FSYNC_POLICIES",
    "WalScan",
    "WriteAheadLog",
    "read_segment_records",
]

FSYNC_ALWAYS = "always"
FSYNC_INTERVAL = "interval"
FSYNC_NEVER = "never"
FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_INTERVAL, FSYNC_NEVER)

_HEADER = struct.Struct("<II")
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"
#: Frames larger than this are treated as corruption, not allocation
#: requests — a torn length word must not make replay try to read 4 GB.
_MAX_RECORD_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class WalScan:
    """What a segment scan found: the recoverable extent of the log."""

    last_lsn: int
    torn_records: int
    segments: int
    records: int


def _encode_value(value: Any) -> str | None:
    """Compact JSON for the plain types WAL records are made of.

    ``json.dumps`` builds a fresh encoder per call, which dominates the
    append path; records are flat dicts of strings, numbers and string
    maps, so render those directly and return ``None`` (fall back to
    ``json.dumps``) for anything fancier — subclasses, non-finite
    floats, exotic containers.
    """
    kind = type(value)
    if kind is str:
        return _escape(value)
    if kind is bool:
        return "true" if value else "false"
    if kind is int:
        return str(value)
    if kind is float:
        if value != value or value in (float("inf"), float("-inf")):
            return None
        return repr(value)
    if value is None:
        return "null"
    if kind is dict:
        return _encode_object(value)
    if kind is list or kind is tuple:
        items = [_encode_value(item) for item in value]
        if None in items:
            return None
        return "[" + ",".join(items) + "]"
    return None


def _encode_object(mapping: dict) -> str | None:
    parts = []
    for key, value in mapping.items():
        if type(key) is not str:
            return None
        encoded = _encode_value(value)
        if encoded is None:
            return None
        parts.append(_escape(key) + ":" + encoded)
    return "{" + ",".join(parts) + "}"


def _segment_path(directory: Path, first_lsn: int) -> Path:
    return directory / f"{_SEGMENT_PREFIX}{first_lsn:016d}{_SEGMENT_SUFFIX}"


def _segment_first_lsn(path: Path) -> int:
    stem = path.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        raise DurabilityError(f"not a WAL segment name: {path}") from None


def read_segment_records(
    source: "str | Path | io.BufferedReader",
    start_offset: int = 0,
) -> Iterator[tuple[dict[str, Any], int]]:
    """Yield ``(record, end_offset)`` for each whole frame in a segment.

    This is the one CRC-framed decoder: the WAL's own replay, the
    cluster tier's segment shipping and the follower's incremental
    replay all parse segment bytes through it.  Parsing stops silently
    at the first incomplete or CRC-broken frame (a torn tail, or bytes
    that simply have not arrived yet); ``end_offset`` is where the next
    parse attempt should resume.
    """
    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            yield from read_segment_records(handle, start_offset)
            return
    handle = source
    handle.seek(start_offset)
    while True:
        header = handle.read(_HEADER.size)
        if len(header) < _HEADER.size:
            return
        length, crc = _HEADER.unpack(header)
        if length > _MAX_RECORD_BYTES:
            return
        payload = handle.read(length)
        if len(payload) < length or zlib.crc32(payload) != crc:
            return
        try:
            record = json.loads(payload.decode("utf8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return
        yield record, handle.tell()


def _fsync_directory(directory: Path) -> None:
    """Persist directory metadata (new/renamed/deleted segment files)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # e.g. platforms without directory fds; best effort
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WriteAheadLog:
    """Append-only segmented log of JSON records.

    Parameters
    ----------
    directory:
        Where segment files live; created if missing.
    segment_max_bytes:
        Rotate to a new segment once the active one exceeds this size.
    fsync:
        One of :data:`FSYNC_POLICIES` (see module docstring).
    fsync_interval_seconds:
        Minimum spacing of fsyncs under the ``interval`` policy.
    clock:
        Monotonic time source (injectable for tests).
    faults:
        Optional :class:`~repro.faults.service.ServiceFaultInjector`
        driving torn-write / fsync-error / disk-full fault tests.
    lock:
        Optional re-entrant lock to use as the internal state lock.  A
        caller that already serialises its own writes can share its lock
        so the append path pays a re-entrant acquire (an owner check)
        instead of a second full lock round-trip.
    """

    def __init__(
        self,
        directory: str | Path,
        segment_max_bytes: int = 4 * 1024 * 1024,
        fsync: str = FSYNC_INTERVAL,
        fsync_interval_seconds: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
        faults: Any | None = None,
        lock: Any | None = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise DurabilityError(
                f"unknown fsync policy {fsync!r}; known: {FSYNC_POLICIES}"
            )
        if segment_max_bytes < 1024:
            raise DurabilityError("segment_max_bytes must be >= 1024")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_max_bytes = segment_max_bytes
        self.fsync_policy = fsync
        self.fsync_interval_seconds = fsync_interval_seconds
        self._sync_always = fsync == FSYNC_ALWAYS
        self._sync_timed = fsync == FSYNC_INTERVAL
        # Group commit: under the interval/never policies framed records
        # buffer here and hit the file in batches.  The loss window is
        # unchanged (flush()/the fsync tick drain first), but the hot
        # append path drops to a list.append.
        self._pending: list[bytes] = []
        self._pending_bytes = 0
        self._pending_first_lsn = 0
        self._group_max_bytes = min(segment_max_bytes, 256 * 1024)
        # Internal state lock (re-entrant: flush → drain → rotate nest).
        # _fd_lock serialises fsync against handle close so the interval
        # flusher can fsync *outside* _mutex — appends never stall
        # behind the disk.
        self._mutex = lock if lock is not None else threading.RLock()
        self._fd_lock = threading.Lock()
        self._flusher: threading.Thread | None = None
        self._flusher_stop = threading.Event()
        self._clock = clock
        self._faults = faults
        self._handle: io.BufferedWriter | None = None
        self._active_path: Path | None = None
        self._active_bytes = 0
        self._last_sync = self._clock()
        self._unsynced = False
        self._failed: str | None = None
        self.appended = 0
        self.fsyncs = 0
        self._scan = self._scan_segments()
        self._next_lsn = self._scan.last_lsn + 1
        if self._sync_timed:
            # The fsync tick runs on this thread, off the append path:
            # a slow disk delays durability (within the interval
            # contract) instead of stalling writers.
            self._sync_timed = False
            self._flusher = threading.Thread(
                target=self._flush_loop, name="wal-flusher", daemon=True
            )
            self._flusher.start()

    # ------------------------------------------------------------------
    # Reading back
    # ------------------------------------------------------------------
    def _segment_paths(self) -> list[Path]:
        paths = [
            p
            for p in self.directory.iterdir()
            if p.name.startswith(_SEGMENT_PREFIX)
            and p.name.endswith(_SEGMENT_SUFFIX)
        ]
        return sorted(paths, key=_segment_first_lsn)

    def _scan_segments(self) -> WalScan:
        """Walk every segment, truncating a torn tail on the last one."""
        last_lsn = 0
        torn = 0
        records = 0
        paths = self._segment_paths()
        for position, path in enumerate(paths):
            final = position == len(paths) - 1
            valid_end, segment_records, segment_last, segment_torn = (
                self._scan_one(path, final)
            )
            records += segment_records
            torn += segment_torn
            if segment_last is not None:
                last_lsn = segment_last
            if final and segment_torn:
                # Cut the file back to the last whole record so appends
                # resume at a clean frame boundary.
                with open(path, "r+b") as handle:
                    handle.truncate(valid_end)
                _fsync_directory(self.directory)
        return WalScan(last_lsn, torn, len(paths), records)

    def _scan_one(
        self, path: Path, final: bool
    ) -> tuple[int, int, int | None, int]:
        """One segment: (valid_end_offset, records, last_lsn, torn)."""
        records = 0
        last_lsn: int | None = None
        valid_end = 0
        with open(path, "rb") as handle:
            while True:
                header = handle.read(_HEADER.size)
                if not header:
                    return valid_end, records, last_lsn, 0
                if len(header) < _HEADER.size:
                    break  # torn mid-header
                length, crc = _HEADER.unpack(header)
                if length > _MAX_RECORD_BYTES:
                    break  # torn/corrupt length word
                payload = handle.read(length)
                if len(payload) < length:
                    break  # torn mid-payload
                if zlib.crc32(payload) != crc:
                    break  # torn mid-overwrite (or bit rot)
                try:
                    record = json.loads(payload.decode("utf8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    break
                records += 1
                last_lsn = int(record.get("lsn", 0)) or last_lsn
                valid_end = handle.tell()
            # A frame failed to parse.  Torn-tail tolerance only covers
            # the *end of the log*: the final segment, with nothing but
            # the damaged bytes after the last whole record.
            handle.seek(0, os.SEEK_END)
            file_end = handle.tell()
        if not final:
            raise DurabilityError(
                f"WAL segment {path} is corrupt at offset {valid_end} "
                "and is not the final segment; refusing to replay past it"
            )
        torn = 1 if file_end > valid_end else 0
        return valid_end, records, last_lsn, torn

    def replay(self, after_lsn: int = 0) -> Iterator[dict[str, Any]]:
        """Yield every recoverable record with ``lsn > after_lsn``.

        The torn tail (if any) was already truncated by the opening
        scan, so this simply walks the remaining frames in order.
        """
        # Surface buffered (not-yet-fsynced) appends to this reader;
        # durability is still governed by the fsync policy.
        with self._mutex:
            if self._pending:
                self._drain()
            if self._handle is not None:
                self._handle.flush()
        for path in self._segment_paths():
            for record, _ in read_segment_records(path):
                if int(record.get("lsn", 0)) > after_lsn:
                    yield record

    @property
    def scan(self) -> WalScan:
        """What the opening scan found (torn records, extent)."""
        return self._scan

    def segments(self) -> list[Path]:
        """Every segment file in LSN order (the last one is active)."""
        with self._mutex:
            return self._segment_paths()

    @property
    def active_path(self) -> Path | None:
        """The segment currently being appended to, if one is open."""
        with self._mutex:
            return self._active_path

    @property
    def last_lsn(self) -> int:
        """The LSN of the most recently appended (or recovered) record."""
        return self._next_lsn - 1

    @property
    def failed(self) -> str | None:
        """Why the log is permanently failed, or ``None`` while healthy.

        A failed log refuses every further append until the data
        directory is reopened; supervised shard workers watch this and
        exit so their manager can respawn (or promote) them.
        """
        return self._failed

    def advance_to(self, lsn: int) -> None:
        """Never issue an LSN at or below ``lsn``.

        A checkpoint that subsumes every segment leaves the directory
        empty, so a reopened log would otherwise restart numbering at 1
        — below the checkpoint's ``last_lsn`` — and recovery would skip
        the new records as already snapshotted.  The store calls this
        with the checkpoint LSN before journalling resumes.
        """
        with self._mutex:
            self._next_lsn = max(self._next_lsn, lsn + 1)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, record: dict[str, Any]) -> int:
        """Frame, write and (per policy) sync one record; returns its LSN."""
        body = None if "lsn" in record else _encode_object(record)
        if body is None:
            body = json.dumps(record, separators=(",", ":"))
        return self.append_body(body)

    def append_body(self, body: str) -> int:
        """Append a pre-rendered JSON object (sans LSN); returns its LSN.

        ``body`` must be compact JSON object text — the LSN field is
        spliced in here so callers on the hot write path can cache the
        rendered record fragments instead of re-encoding every append.
        This is the hot path: it stays flat (no helper calls, locals
        over attributes) because its overhead versus a plain in-memory
        write is a benchmarked gate (``bench_wal_overhead``).
        """
        with self._mutex:
            if self._failed:
                raise DurabilityError(
                    f"write-ahead log is failed ({self._failed}); "
                    "reopen the data directory to recover"
                )
            lsn = self._next_lsn
            if body == "{}":
                payload = b'{"lsn":%d}' % lsn
            else:
                payload = ('{"lsn":%d,%s' % (lsn, body[1:])).encode("utf8")
            frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
            if not self._pending:
                self._pending_first_lsn = lsn
            self._pending.append(frame)
            self._pending_bytes += len(frame)
            self._next_lsn = lsn + 1
            self.appended += 1
            self._unsynced = True
            if self._sync_always:
                self.flush()
            elif self._pending_bytes >= self._group_max_bytes:
                self._drain()
            elif self._sync_timed:
                if self._clock() - self._last_sync >= self.fsync_interval_seconds:
                    self.flush()
            return lsn

    def append_bodies(self, bodies: Sequence[str]) -> int:
        """Append many pre-rendered bodies as one commit group.

        Each element of ``bodies`` is compact JSON object text *without*
        an LSN — exactly what :meth:`append_body` takes; the LSN prefix
        is spliced per frame, so client-encoded frames hit the log
        without re-serialization.  The whole batch is enqueued under a
        single lock acquisition and issued contiguous LSNs; under
        ``fsync=always`` the batch is synced with **one** ``fsync`` at
        the end instead of one per record — the group-commit amortisation
        the batched ingest path is gated on.  Returns the first LSN (the
        last is ``first + len(bodies) - 1``).
        """
        with self._mutex:
            if self._failed:
                raise DurabilityError(
                    f"write-ahead log is failed ({self._failed}); "
                    "reopen the data directory to recover"
                )
            first = self._next_lsn
            lsn = first
            for body in bodies:
                if body == "{}":
                    payload = b'{"lsn":%d}' % lsn
                else:
                    payload = ('{"lsn":%d,%s' % (lsn, body[1:])).encode("utf8")
                frame = (
                    _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
                )
                if not self._pending:
                    self._pending_first_lsn = lsn
                self._pending.append(frame)
                self._pending_bytes += len(frame)
                lsn += 1
                if (
                    self._pending_bytes >= self._group_max_bytes
                    and not self._sync_always
                ):
                    # Keep the LSN counter coherent mid-batch: _drain
                    # names fresh segments from it.
                    self._next_lsn = lsn
                    self._drain()
            count = lsn - first
            self._next_lsn = lsn
            self.appended += count
            if count:
                self._unsynced = True
                if self._sync_always:
                    self.flush()
                elif self._pending_bytes >= self._group_max_bytes:
                    self._drain()
            return first

    def append_template(self, template: str, *args: Any) -> int:
        """Append via a cached ``%``-format template; returns the LSN.

        ``template`` must render to compact JSON object text, with the
        LSN as its *first* placeholder followed by one placeholder per
        element of ``args``.  Callers that append the same record shape
        repeatedly (the durable store's write path) cache the template
        once per series, so the whole payload is rendered by a single
        format pass here — no intermediate body string, no splice.
        Shares :meth:`append_body`'s enqueue tail verbatim: both are the
        benchmarked hot path and stay flat.
        """
        with self._mutex:
            if self._failed:
                raise DurabilityError(
                    f"write-ahead log is failed ({self._failed}); "
                    "reopen the data directory to recover"
                )
            lsn = self._next_lsn
            payload = (template % (lsn, *args)).encode("utf8")
            frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
            if not self._pending:
                self._pending_first_lsn = lsn
            self._pending.append(frame)
            self._pending_bytes += len(frame)
            self._next_lsn = lsn + 1
            self.appended += 1
            self._unsynced = True
            if self._sync_always:
                self.flush()
            elif self._pending_bytes >= self._group_max_bytes:
                self._drain()
            elif self._sync_timed:
                if self._clock() - self._last_sync >= self.fsync_interval_seconds:
                    self.flush()
            return lsn

    def _drain(self) -> None:
        """Write buffered frames to the active segment (no fsync)."""
        frames = self._pending
        if not frames:
            return
        first_lsn = self._pending_first_lsn
        self._pending = []
        self._pending_bytes = 0
        if self._faults is None:
            total = sum(map(len, frames))
            handle = self._handle
            if handle is None:
                handle = self._handle_for(total, first_lsn)
            if (
                self._active_bytes + total <= self.segment_max_bytes
                or self._active_bytes == 0
            ):
                try:
                    handle.write(b"".join(frames))
                except OSError as exc:
                    self._failed = f"append failed: {exc}"
                    raise DurabilityError(
                        f"WAL append failed: {exc}"
                    ) from exc
                self._active_bytes += total
                return
        # Slow path: rotation boundaries inside the batch, or fault
        # injection that must see each frame individually.
        for offset, frame in enumerate(frames):
            frame_len = len(frame)
            handle = self._handle
            if handle is None or (
                self._active_bytes + frame_len > self.segment_max_bytes
                and self._active_bytes > 0
            ):
                handle = self._handle_for(frame_len, first_lsn + offset)
            if self._faults is not None:
                frame = self._inject_append_faults(handle, frame)
            try:
                handle.write(frame)
            except OSError as exc:
                self._failed = f"append failed: {exc}"
                raise DurabilityError(f"WAL append failed: {exc}") from exc
            self._active_bytes += frame_len

    def _inject_append_faults(
        self, handle: io.BufferedWriter, frame: bytes
    ) -> bytes:
        """Apply service-level fault injection to one append."""
        try:
            self._faults.before_write(len(frame))  # may raise ENOSPC
        except OSError as exc:
            self._failed = f"append failed: {exc}"
            raise DurabilityError(f"WAL append failed: {exc}") from exc
        torn = self._faults.torn_prefix(frame)
        if torn is not None:
            # Simulate a crash mid-write: persist only a prefix of the
            # frame, then fail the log as the dying process would.
            handle.write(torn)
            handle.flush()
            os.fsync(handle.fileno())
            self._failed = "torn write injected"
            raise DurabilityError(
                "WAL append torn mid-write (injected fault); "
                "reopen the data directory to recover"
            )
        return frame

    def _handle_for(
        self, frame_bytes: int, first_lsn: int | None = None
    ) -> io.BufferedWriter:
        """The active segment handle, rotating when over the size bound.

        ``first_lsn`` names a fresh segment after the first record that
        will land in it (drains carry records appended earlier than
        ``_next_lsn`` says).
        """
        if first_lsn is None:
            first_lsn = self._next_lsn
        if (
            self._handle is not None
            and self._active_bytes + frame_bytes > self.segment_max_bytes
            and self._active_bytes > 0
        ):
            self.rotate()
        if self._handle is None:
            path = _segment_path(self.directory, first_lsn)
            existing = self._segment_paths()
            if existing and _segment_first_lsn(existing[-1]) < first_lsn:
                last = existing[-1]
                if last.stat().st_size + frame_bytes <= self.segment_max_bytes:
                    path = last  # resume the recovered tail segment
            self._handle = open(path, "ab", buffering=256 * 1024)
            self._active_path = path
            self._active_bytes = path.stat().st_size
            _fsync_directory(self.directory)
        return self._handle

    def flush(self) -> None:
        """Force buffered appends to disk (fsync)."""
        with self._mutex:
            if self._pending:
                self._drain()
            if self._handle is None or not self._unsynced:
                return
            self._handle.flush()
            if self._faults is not None:
                try:
                    self._faults.before_fsync()  # may raise EIO
                except OSError as exc:
                    self._failed = f"fsync failed: {exc}"
                    raise DurabilityError(f"WAL fsync failed: {exc}") from exc
            with self._fd_lock:
                os.fsync(self._handle.fileno())
            self.fsyncs += 1
            self._last_sync = self._clock()
            self._unsynced = False

    def _flush_loop(self) -> None:
        """Interval policy's fsync tick, run off the append path.

        State changes happen under ``_mutex``; the fsync itself happens
        outside it (guarded only by ``_fd_lock`` against a concurrent
        segment close) so a slow disk delays durability rather than
        blocking appenders.
        """
        while not self._flusher_stop.wait(self.fsync_interval_seconds):
            with self._mutex:
                if self._failed:
                    return
                if not self._pending and not self._unsynced:
                    continue
                try:
                    self._drain()
                except DurabilityError:
                    return
                handle = self._handle
                if handle is None:
                    continue
                try:
                    handle.flush()
                except OSError as exc:
                    self._failed = f"flush failed: {exc}"
                    return
                self._last_sync = self._clock()
                self._unsynced = False
            try:
                if self._faults is not None:
                    self._faults.before_fsync()
                with self._fd_lock:
                    os.fsync(handle.fileno())
                self.fsyncs += 1
            except (OSError, ValueError) as exc:
                with self._mutex:
                    self._failed = f"fsync failed: {exc}"
                return

    def rotate(self) -> None:
        """Close the active segment; the next append opens a fresh one."""
        with self._mutex:
            if self._handle is None and not self._pending:
                return
            self.flush()
            if self._handle is not None:
                with self._fd_lock:
                    self._handle.close()
                self._handle = None
            self._active_path = None
            self._active_bytes = 0

    def prune_through(self, lsn: int) -> int:
        """Delete whole segments containing only records with ``<= lsn``.

        Call after a checkpoint: everything at or below the snapshot's
        LSN is reconstructable from the snapshot.  The active segment is
        rotated first so it can be reclaimed too.  Returns the number of
        segment files deleted.
        """
        with self._mutex:
            self.rotate()
            deleted = 0
            paths = self._segment_paths()
            for position, path in enumerate(paths):
                # A segment's records run from its first LSN up to the
                # next segment's first LSN (exclusive), or to last_lsn
                # for the final one.
                if position + 1 < len(paths):
                    segment_last = _segment_first_lsn(paths[position + 1]) - 1
                else:
                    segment_last = self.last_lsn
                if segment_last <= lsn:
                    path.unlink()
                    deleted += 1
            if deleted:
                _fsync_directory(self.directory)
            return deleted

    def close(self) -> None:
        """Flush and close the active segment; stops the fsync tick."""
        if self._flusher is not None:
            self._flusher_stop.set()
            self._flusher.join(timeout=5)
            self._flusher = None
        with self._mutex:
            if not self._failed:
                self.flush()
            if self._handle is not None:
                with self._fd_lock:
                    self._handle.close()
                self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
