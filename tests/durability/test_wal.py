"""Write-ahead log invariants: framing, torn tails, rotation, pruning.

The property tests simulate the only crash model a WAL must survive —
the file ends mid-frame — by truncating arbitrary byte counts off the
end and asserting replay returns an exact prefix of what was appended.
"""

from __future__ import annotations

import json
import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability.wal import (
    FSYNC_ALWAYS,
    FSYNC_NEVER,
    WriteAheadLog,
)
from repro.errors import DurabilityError

_HEADER = struct.Struct("<II")


def _records(wal: WriteAheadLog, after_lsn: int = 0) -> list[dict]:
    return list(wal.replay(after_lsn=after_lsn))


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync=FSYNC_ALWAYS) as wal:
            for i in range(5):
                lsn = wal.append({"op": "write", "i": i})
                assert lsn == i + 1
        with WriteAheadLog(tmp_path) as wal:
            records = _records(wal)
            assert [r["i"] for r in records] == list(range(5))
            assert [r["lsn"] for r in records] == [1, 2, 3, 4, 5]
            assert wal.last_lsn == 5

    def test_replay_after_lsn_filters(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for i in range(10):
                wal.append({"i": i})
        with WriteAheadLog(tmp_path) as wal:
            assert [r["i"] for r in _records(wal, after_lsn=7)] == [7, 8, 9]

    def test_appends_resume_after_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.append({"i": 0})
        with WriteAheadLog(tmp_path) as wal:
            assert wal.append({"i": 1}) == 2
            assert [r["lsn"] for r in _records(wal)] == [1, 2]

    def test_advance_to_skips_issued_range(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            wal.advance_to(100)
            assert wal.append({"i": 0}) == 101
        with WriteAheadLog(tmp_path) as wal:
            assert wal.last_lsn == 101
            # advance_to never moves backwards
            wal.advance_to(5)
            assert wal.append({"i": 1}) == 102

    def test_rejects_unknown_fsync_policy(self, tmp_path):
        with pytest.raises(DurabilityError):
            WriteAheadLog(tmp_path, fsync="sometimes")

    def test_fsync_counters(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync=FSYNC_ALWAYS) as wal:
            for i in range(3):
                wal.append({"i": i})
            assert wal.fsyncs == 3
        with WriteAheadLog(tmp_path / "never", fsync=FSYNC_NEVER) as wal:
            wal.append({"i": 0})
            assert wal.fsyncs == 0
            wal.flush()  # explicit flush works regardless of policy
            assert wal.fsyncs == 1


class TestTornTail:
    def _write(self, tmp_path, n: int) -> None:
        with WriteAheadLog(tmp_path, fsync=FSYNC_ALWAYS) as wal:
            for i in range(n):
                wal.append({"i": i})

    def test_truncated_final_record_is_skipped(self, tmp_path):
        self._write(tmp_path, 4)
        segment = next(tmp_path.glob("wal-*.log"))
        data = segment.read_bytes()
        segment.write_bytes(data[:-3])  # tear the last record's payload
        with WriteAheadLog(tmp_path) as wal:
            assert wal.scan.torn_records == 1
            assert [r["i"] for r in _records(wal)] == [0, 1, 2]
            # appends resume cleanly at the next LSN after the survivors
            assert wal.append({"i": 99}) == 4
        with WriteAheadLog(tmp_path) as wal:
            assert [r["i"] for r in _records(wal)] == [0, 1, 2, 99]
            assert wal.scan.torn_records == 0  # the tear was truncated away

    def test_corrupt_crc_on_tail_is_skipped(self, tmp_path):
        self._write(tmp_path, 3)
        segment = next(tmp_path.glob("wal-*.log"))
        data = bytearray(segment.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the final record
        segment.write_bytes(bytes(data))
        with WriteAheadLog(tmp_path) as wal:
            assert wal.scan.torn_records == 1
            assert [r["i"] for r in _records(wal)] == [0, 1]

    def test_corruption_in_non_final_segment_raises(self, tmp_path):
        # Force several segments with a tiny rotation bound.
        with WriteAheadLog(tmp_path, segment_max_bytes=1024) as wal:
            for i in range(40):
                wal.append({"i": i, "pad": "x" * 100})
        segments = sorted(tmp_path.glob("wal-*.log"))
        assert len(segments) > 2
        data = bytearray(segments[0].read_bytes())
        data[10] ^= 0xFF
        segments[0].write_bytes(bytes(data))
        with pytest.raises(DurabilityError, match="not the final segment"):
            WriteAheadLog(tmp_path)

    def test_oversize_length_word_treated_as_torn(self, tmp_path):
        self._write(tmp_path, 2)
        segment = next(tmp_path.glob("wal-*.log"))
        payload = json.dumps({"lsn": 3}).encode()
        bogus = _HEADER.pack(2**31, zlib.crc32(payload)) + payload
        segment.write_bytes(segment.read_bytes() + bogus)
        with WriteAheadLog(tmp_path) as wal:
            assert wal.scan.torn_records == 1
            assert [r["i"] for r in _records(wal)] == [0, 1]


class TestRotationAndPruning:
    def test_rotation_produces_multiple_segments(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_max_bytes=1024) as wal:
            for i in range(50):
                wal.append({"i": i, "pad": "y" * 60})
        assert len(list(tmp_path.glob("wal-*.log"))) > 1
        with WriteAheadLog(tmp_path, segment_max_bytes=1024) as wal:
            assert [r["i"] for r in _records(wal)] == list(range(50))

    def test_prune_keeps_segments_with_newer_records(self, tmp_path):
        with WriteAheadLog(tmp_path, segment_max_bytes=1024) as wal:
            for i in range(50):
                wal.append({"i": i, "pad": "z" * 60})
            segments = sorted(tmp_path.glob("wal-*.log"))
            assert len(segments) > 2
            # prune exactly through the first segment's records
            second_first = int(segments[1].name[4:-4])
            assert wal.prune_through(second_first - 1) == 1
            # a checkpoint LSN *inside* a segment must not delete it
            assert wal.prune_through(second_first) == 0
            # every record past the checkpoint LSN must still replay
            assert [
                r["lsn"] for r in _records(wal, after_lsn=second_first - 1)
            ] == list(range(second_first, 51))

    def test_prune_everything_then_append(self, tmp_path):
        with WriteAheadLog(tmp_path) as wal:
            for i in range(5):
                wal.append({"i": i})
            assert wal.prune_through(wal.last_lsn) == 1
            assert wal.append({"i": 5}) == 6  # LSNs keep moving forward
            assert [r["i"] for r in _records(wal, after_lsn=5)] == [5]


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        payloads=st.lists(
            st.dictionaries(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=0, max_value=10**6),
                max_size=3,
            ),
            min_size=1,
            max_size=30,
        ),
        cut=st.integers(min_value=1, max_value=200),
    )
    def test_truncation_yields_exact_prefix(self, tmp_path_factory, payloads, cut):
        """Chopping bytes off the tail loses only a suffix of records."""
        root = tmp_path_factory.mktemp("wal-prop")
        with WriteAheadLog(root, fsync=FSYNC_NEVER) as wal:
            for payload in payloads:
                wal.append({"p": payload})
        segment = max(root.glob("wal-*.log"))
        data = segment.read_bytes()
        segment.write_bytes(data[: max(0, len(data) - cut)])
        with WriteAheadLog(root) as wal:
            recovered = [r["p"] for r in _records(wal)]
        assert recovered == payloads[: len(recovered)]
        assert len(recovered) < len(payloads) or cut >= 0

    @settings(max_examples=20, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=40),
        segment_max=st.integers(min_value=1024, max_value=4096),
        prune_at=st.integers(min_value=0, max_value=40),
    )
    def test_prune_never_loses_unsubsumed_records(
        self, tmp_path_factory, count, segment_max, prune_at
    ):
        root = tmp_path_factory.mktemp("wal-prune")
        with WriteAheadLog(root, segment_max_bytes=segment_max) as wal:
            for i in range(count):
                wal.append({"i": i, "pad": "p" * 50})
            wal.prune_through(prune_at)
            survivors = [r["lsn"] for r in _records(wal, after_lsn=prune_at)]
        assert survivors == list(range(prune_at + 1, count + 1))
