"""The cluster front door: consistent-hash routing over shard workers.

:class:`RouterApp` duck-types :class:`~repro.api.app.CaladriusApp`
(``handle`` / ``lifecycle`` / ``config``) so the plain
:class:`~repro.api.server.CaladriusServer` can host it.  It owns a
:class:`~repro.cluster.shard.ShardManager` and routes every
topology-keyed request — modelling calls, topology lookups, metric
writes — to the shard that owns the topology id on the
:class:`~repro.cluster.ring.HashRing`.  Fleet-wide endpoints fan out:

* ``GET /healthz`` — per-shard health plus an overall status that
  degrades when any shard is down or restarting;
* ``GET /serving/stats`` — per-shard serving counters plus a summed
  aggregate (hits, requests, shed, …);
* ``GET /topologies`` — the union of every shard's registry;
* ``GET /cluster/ring`` — the current ring (shard ids, virtual nodes,
  addresses, version) for shard-aware clients;
* ``POST /cluster/resize`` — grow or shrink the fleet; the ring is
  rebuilt and the version bumped so clients refresh.

While a shard is down or replaying its WAL after a crash, requests for
its topologies are answered 503 + ``Retry-After`` — the router never
silently reroutes a topology to a shard that doesn't own it, because
per-shard data directories mean only the owner has the data.  Two
exceptions soften that during failover windows:

* **stale reads** — a GET carrying ``X-Allow-Stale-Read`` is served
  from the shard's live follower replica while the primary is
  restarting or promoting; the response is annotated with
  ``"stale_read": true`` plus the shard's state so the caller knows
  what it got;
* **epoch stamping** — every proxied request carries ``X-Shard-Epoch``
  (the owner's current writer generation), so a write that races a
  promotion and lands on the superseded zombie is refused with a
  structured 409 instead of diverging state.

The router is the *control* plane and slow-path proxy.  Throughput-
critical callers use :class:`~repro.cluster.client.ClusterClient`,
which fetches the ring once and talks to shards directly.
"""

from __future__ import annotations

import http.client
import json
import logging
import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.api.ingest import (
    FRAMES_CONTENT_TYPE,
    STREAM_CONTENT_TYPE,
    decode_frames,
    frame_bytes,
    merge_stream_lines,
    rebase_refused,
)
from repro.cluster.epoch import EPOCH_HEADER
from repro.cluster.ring import DEFAULT_VIRTUAL_NODES, HashRing
from repro.cluster.shard import READY, ShardManager
from repro.config.loader import CaladriusConfig
from repro.durability.lifecycle import LifecycleController

__all__ = ["RouterApp"]

logger = logging.getLogger("repro.cluster.router")

_RESULT_ID = re.compile(r"^s(\d+)-")
#: Fleet fan-out parallelism for /healthz, /serving/stats, /topologies.
_FANOUT_WORKERS = 8


class RouterApp:
    """Routes requests across the shard fleet (hosted by CaladriusServer)."""

    # The hosting server hands these paths' bodies over as raw bytes
    # (WAL-framed samples), not parsed JSON.
    raw_body_paths = ("/metrics/write_batch",)

    def __init__(
        self,
        config: CaladriusConfig,
        manager: ShardManager,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
        proxy_timeout: float = 30.0,
        retry_after_seconds: int = 1,
    ) -> None:
        self.config = config
        self.manager = manager
        self.virtual_nodes = virtual_nodes
        self.proxy_timeout = proxy_timeout
        self.retry_after_seconds = retry_after_seconds
        self.lifecycle = LifecycleController()
        self._ring_lock = threading.Lock()
        self._ring: HashRing | None = None
        self._ring_version = -1
        self._fanout = ThreadPoolExecutor(
            max_workers=_FANOUT_WORKERS, thread_name_prefix="router-fanout"
        )
        self._proxied = 0
        self._unavailable = 0
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    # Ring
    # ------------------------------------------------------------------
    def ring(self) -> HashRing:
        """The current ring, rebuilt when fleet membership changed."""
        version = self.manager.version
        with self._ring_lock:
            if self._ring is None or self._ring_version != version:
                self._ring = HashRing(
                    self.manager.shard_ids(), self.virtual_nodes
                )
                self._ring_version = version
            return self._ring

    def shard_for(self, topology: str) -> int:
        return self.ring().shard_for(topology)

    # ------------------------------------------------------------------
    # Entry point (CaladriusServer calls this)
    # ------------------------------------------------------------------
    def handle(
        self,
        method: str,
        path: str,
        query: dict[str, str] | None = None,
        body: Any = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, Any]]:
        method = method.upper()
        query = dict(query or {})
        raw = bytes(body) if isinstance(body, (bytes, bytearray)) else None
        body = body if isinstance(body, dict) else {}
        parts = [p for p in path.split("/") if p]
        try:
            if method == "POST" and parts == ["metrics", "write_batch"]:
                return self._write_batch(raw, headers or {})
            return self._route(method, parts, query, body, headers or {})
        except Exception:
            logger.exception("router failed on %s %s", method, path)
            return 500, {"error": f"router error handling {method} {path}"}

    def _route(
        self,
        method: str,
        parts: list[str],
        query: dict[str, str],
        body: dict[str, Any],
        headers: dict[str, str],
    ) -> tuple[int, dict[str, Any]]:
        if method == "GET" and parts == ["healthz"]:
            return self._healthz()
        if method == "GET" and parts == ["readyz"]:
            return self._readyz()
        if method == "GET" and parts == ["serving", "stats"]:
            return self._serving_stats()
        if method == "GET" and parts == ["topologies"]:
            return self._topologies()
        if method == "GET" and parts == ["cluster", "ring"]:
            return 200, self._ring_payload()
        if method == "GET" and parts == ["cluster", "stats"]:
            return self._cluster_stats()
        if method == "POST" and parts == ["cluster", "resize"]:
            return self._resize(body)
        if (
            method == "GET"
            and len(parts) == 3
            and parts[:2] == ["model", "result"]
        ):
            return self._route_result(parts[2], query, headers)
        topology = self._topology_for(method, parts, query, body)
        if topology is not None:
            return self._proxy_for_topology(
                topology, method, parts, query, body, headers
            )
        return 404, {
            "error": f"no cluster route for {method} /{'/'.join(parts)}"
        }

    # ------------------------------------------------------------------
    # Topology-keyed routing
    # ------------------------------------------------------------------
    @staticmethod
    def _topology_for(
        method: str,
        parts: list[str],
        query: dict[str, str],
        body: dict[str, Any],
    ) -> str | None:
        """The routing key for a request, or ``None`` when unroutable."""
        if len(parts) == 3 and parts[0] == "topology":
            return parts[1]
        if (
            len(parts) == 4
            and parts[0] == "model"
            and parts[1] in ("traffic", "topology", "plan_sweep")
        ):
            return parts[3]
        if parts == ["metrics", "write"]:
            tags = body.get("tags") or {}
            if isinstance(tags, dict) and tags.get("topology"):
                return str(tags["topology"])
            # Untagged series hash on the metric name: stable, spreads
            # load, and reads route the same way.
            name = body.get("name")
            return str(name) if name else None
        if parts == ["metrics", "read"]:
            return query.get("topology") or query.get("name")
        return None

    def _proxy_for_topology(
        self,
        topology: str,
        method: str,
        parts: list[str],
        query: dict[str, str],
        body: dict[str, Any],
        headers: dict[str, str],
    ) -> tuple[int, dict[str, Any]]:
        shard_id = self.shard_for(topology)
        return self._proxy(shard_id, method, parts, query, body, headers)

    def _route_result(
        self, request_id: str, query: dict[str, str], headers: dict[str, str]
    ) -> tuple[int, dict[str, Any]]:
        match = _RESULT_ID.match(request_id)
        if not match:
            return 404, {
                "error": (
                    f"request id {request_id!r} carries no shard prefix; "
                    "poll the shard that issued it"
                )
            }
        shard_id = int(match.group(1))
        if shard_id not in self.ring().shard_ids:
            return 404, {"error": f"no shard {shard_id} in the cluster"}
        return self._proxy(
            shard_id, "GET", ["model", "result", request_id], query, {}, headers
        )

    # ------------------------------------------------------------------
    # Proxy plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _wants_stale(headers: dict[str, str]) -> bool:
        value = next(
            (
                v
                for k, v in headers.items()
                if k.lower() == "x-allow-stale-read"
            ),
            "",
        )
        return value.strip().lower() in ("1", "true", "yes")

    def _proxy(
        self,
        shard_id: int,
        method: str,
        parts: list[str],
        query: dict[str, str],
        body: dict[str, Any],
        headers: dict[str, str],
    ) -> tuple[int, dict[str, Any]]:
        address = self.manager.address_of(shard_id)
        if address is None:
            state = self.manager.state_of(shard_id)
            if method == "GET" and self._wants_stale(headers):
                follower = self.manager.follower_address_of(shard_id)
                if follower is not None:
                    # Promotion-window read: the follower's mirror may
                    # trail the primary by the replication lag, but the
                    # caller opted in explicitly.
                    status, payload = self._proxy_to(
                        shard_id, follower, method, parts, query, body, {}
                    )
                    if status < 500:
                        payload["stale_read"] = True
                        payload["shard_state"] = state
                    return status, payload
            self._unavailable += 1
            return 503, {
                "error": (
                    f"shard {shard_id} is {state or 'unknown'} "
                    "(recovering its WAL); retry shortly"
                ),
                "retry_after": self.retry_after_seconds,
                "shard_id": shard_id,
                "shard_state": state,
            }
        forward = {
            k: v
            for k, v in headers.items()
            if k.lower() in ("x-request-deadline", "x-request-priority")
        }
        # Stamp the owner's writer generation: a zombie primary that
        # was fenced off by a promotion answers 409 instead of silently
        # accepting a write for a shard it no longer owns.
        forward[EPOCH_HEADER] = str(self.manager.epoch_of(shard_id))
        return self._proxy_to(
            shard_id, address, method, parts, query, body, forward
        )

    def _proxy_to(
        self,
        shard_id: int,
        address: tuple[str, int],
        method: str,
        parts: list[str],
        query: dict[str, str],
        body: dict[str, Any],
        forward: dict[str, str],
    ) -> tuple[int, dict[str, Any]]:
        host, port = address
        path = "/" + "/".join(parts)
        if query:
            path += "?" + "&".join(f"{k}={v}" for k, v in query.items())
        payload = json.dumps(body).encode("utf8") if body else None
        if payload:
            forward = {**forward, "Content-Type": "application/json"}
        conn = http.client.HTTPConnection(
            host, port, timeout=self.proxy_timeout
        )
        try:
            conn.request(method, path, body=payload, headers=forward)
            response = conn.getresponse()
            raw = response.read()
        except (OSError, http.client.HTTPException) as exc:
            self._unavailable += 1
            return 503, {
                "error": f"shard {shard_id} is unreachable: {exc}",
                "retry_after": self.retry_after_seconds,
                "shard_id": shard_id,
            }
        finally:
            conn.close()
        self._proxied += 1
        try:
            decoded = json.loads(raw.decode("utf8")) if raw else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            decoded = {"error": "shard returned a non-JSON response"}
        return response.status, decoded

    # ------------------------------------------------------------------
    # Batched ingest: split by ring owner, forward sub-batches raw
    # ------------------------------------------------------------------
    def _write_batch(
        self, raw: bytes | None, headers: dict[str, str]
    ) -> tuple[int, dict[str, Any]]:
        """Split a mixed-topology frame batch across its owning shards.

        Frames are regrouped by ring owner and each sub-batch is
        forwarded concurrently as raw frames (payload bytes untouched),
        stamped with the owner's epoch.  Per-shard outcomes are merged
        with frame indexes rebased onto the original batch; a refused
        sub-batch (owner down, fenced) is reported retryably in
        ``refused`` without poisoning the others.  Only when *no* frame
        was accepted anywhere does the whole request answer 503 +
        ``Retry-After``.
        """
        from repro.errors import ApiError

        if raw is None:
            return 400, {
                "error": "write_batch requires a framed binary body "
                f"(Content-Type: {FRAMES_CONTENT_TYPE})"
            }
        try:
            frames = decode_frames(raw)
        except ApiError as exc:
            return exc.status, {"error": str(exc), **exc.payload}
        if not frames:
            return 400, {"error": "write_batch body contains no frames"}
        groups: dict[int, list[int]] = {}
        for idx, (record, _) in enumerate(frames):
            key = ""
            if isinstance(record, dict):
                tags = record.get("tags") or {}
                topology = (
                    tags.get("topology") if isinstance(tags, dict) else None
                )
                key = str(topology or record.get("name") or "")
            groups.setdefault(self.shard_for(key), []).append(idx)
        futures = {
            shard_id: self._fanout.submit(
                self._forward_batch,
                shard_id,
                [frames[i][1] for i in indexes],
                headers,
            )
            for shard_id, indexes in groups.items()
        }
        acked = 0
        rejected: list[dict[str, Any]] = []
        refused: list[dict[str, Any]] = []
        per_shard: dict[str, Any] = {}
        retry_after: int | None = None
        for shard_id, future in sorted(futures.items()):
            status, payload = future.result()
            indexes = groups[shard_id]
            per_shard[str(shard_id)] = {
                "status": status,
                "frames": len(indexes),
                "acked": payload.get("acked", 0) if status == 200 else 0,
                "first_lsn": payload.get("first_lsn"),
                "last_lsn": payload.get("last_lsn"),
            }
            if status == 200:
                acked += payload.get("acked", 0)
                for entry in payload.get("rejected", ()):
                    frame = entry.get("frame")
                    if isinstance(frame, int) and 0 <= frame < len(indexes):
                        rejected.append({**entry, "frame": indexes[frame]})
                    else:
                        rejected.append(dict(entry))
                for entry in payload.get("refused", ()):
                    refused.append(rebase_refused(entry, indexes, shard_id))
            else:
                hint = payload.get("retry_after")
                if isinstance(hint, (int, float)) and not isinstance(
                    hint, bool
                ):
                    retry_after = max(retry_after or 0, int(hint))
                refused.append(
                    {
                        "frames": list(indexes),
                        "shard_id": shard_id,
                        "status": status,
                        "error": payload.get("error", f"HTTP {status}"),
                        "retry_after": payload.get("retry_after"),
                    }
                )
        rejected.sort(key=lambda entry: entry.get("frame", -1))
        summary: dict[str, Any] = {
            "frames": len(frames),
            "acked": acked,
            "rejected": rejected,
            "first_lsn": None,
            "last_lsn": None,
            "per_shard": per_shard,
        }
        if refused:
            summary["refused"] = refused
        if acked == 0 and not rejected and refused:
            # Nothing landed anywhere: surface it as one retryable 503
            # so plain clients re-send the whole batch.
            summary["error"] = "no shard accepted the batch; retry shortly"
            summary["retry_after"] = retry_after or self.retry_after_seconds
            return 503, summary
        return 200, summary

    def _forward_batch(
        self,
        shard_id: int,
        bodies: list[str],
        headers: dict[str, str],
    ) -> tuple[int, dict[str, Any]]:
        """POST one shard's sub-batch as raw frames; parse either answer."""
        address = self.manager.address_of(shard_id)
        if address is None:
            state = self.manager.state_of(shard_id)
            self._unavailable += 1
            return 503, {
                "error": (
                    f"shard {shard_id} is {state or 'unknown'} "
                    "(recovering its WAL); retry shortly"
                ),
                "retry_after": self.retry_after_seconds,
                "shard_id": shard_id,
                "shard_state": state,
            }
        raw = b"".join(frame_bytes(body) for body in bodies)
        forward = {
            k: v
            for k, v in headers.items()
            if k.lower() == "x-request-deadline"
        }
        forward[EPOCH_HEADER] = str(self.manager.epoch_of(shard_id))
        forward["Content-Type"] = FRAMES_CONTENT_TYPE
        host, port = address
        conn = http.client.HTTPConnection(
            host, port, timeout=self.proxy_timeout
        )
        try:
            conn.request(
                "POST", "/metrics/write_batch", body=raw, headers=forward
            )
            response = conn.getresponse()
            data = response.read()
            content_type = (
                (response.getheader("Content-Type") or "")
                .split(";")[0]
                .strip()
            )
        except (OSError, http.client.HTTPException) as exc:
            self._unavailable += 1
            return 503, {
                "error": f"shard {shard_id} is unreachable: {exc}",
                "retry_after": self.retry_after_seconds,
                "shard_id": shard_id,
            }
        finally:
            conn.close()
        self._proxied += 1
        try:
            if content_type == STREAM_CONTENT_TYPE:
                decoded = merge_stream_lines(
                    [
                        json.loads(line)
                        for line in data.decode("utf8").splitlines()
                        if line.strip()
                    ]
                )
            else:
                decoded = json.loads(data.decode("utf8")) if data else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            decoded = {"error": "shard returned a non-JSON response"}
        return response.status, decoded

    def _fan_out(
        self, method: str, path: str
    ) -> dict[int, tuple[int, dict[str, Any]]]:
        """Run one request against every shard concurrently."""
        shard_ids = self.manager.shard_ids()
        futures = {
            shard_id: self._fanout.submit(
                self._proxy, shard_id, method,
                [p for p in path.split("/") if p], {}, {}, {},
            )
            for shard_id in shard_ids
        }
        return {shard_id: f.result() for shard_id, f in futures.items()}

    # ------------------------------------------------------------------
    # Fleet-wide endpoints
    # ------------------------------------------------------------------
    def _healthz(self) -> tuple[int, dict[str, Any]]:
        responses = self._fan_out("GET", "/healthz")
        shards = []
        healthy = 0
        for shard_id in self.manager.shard_ids():
            handle = self.manager.handle(shard_id)
            if handle is None:  # resized away mid-request
                continue
            status = handle.status()
            code, payload = responses.get(shard_id, (503, {}))
            if code == 200:
                healthy += 1
                status["health"] = payload
            shards.append(status)
        total = len(shards)
        overall = "ok" if healthy == total and total > 0 else "degraded"
        return 200, {
            "status": overall,
            "role": "router",
            "lifecycle": self.lifecycle.status(),
            "shards_total": total,
            "shards_healthy": healthy,
            "ring_version": self.manager.version,
            "shards": shards,
        }

    def _readyz(self) -> tuple[int, dict[str, Any]]:
        if self.lifecycle.is_draining():
            return 503, {
                "ready": False,
                "error": "router is draining",
                "retry_after": self.retry_after_seconds,
            }
        if not self.manager.all_ready():
            return 503, {
                "ready": False,
                "error": "one or more shards are not ready",
                "retry_after": self.retry_after_seconds,
                "shards": self.manager.statuses(),
            }
        return 200, {"ready": True, "shards": len(self.manager.shard_ids())}

    _SUMMED_STATS = (
        "requests",
        "hits",
        "coalesced",
        "computations",
        "shed",
        "queue_depth",
        "precomputed",
        "precompute_failures",
    )

    def _serving_stats(self) -> tuple[int, dict[str, Any]]:
        responses = self._fan_out("GET", "/serving/stats")
        per_shard: dict[str, Any] = {}
        totals = {key: 0 for key in self._SUMMED_STATS}
        reachable = 0
        for shard_id, (code, payload) in sorted(responses.items()):
            per_shard[str(shard_id)] = payload if code == 200 else {
                "error": payload.get("error", f"status {code}")
            }
            if code != 200:
                continue
            reachable += 1
            for key in self._SUMMED_STATS:
                value = payload.get(key)
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    totals[key] += value
        requests = totals["requests"]
        totals["hit_rate"] = totals["hits"] / requests if requests else 0.0
        return 200, {
            "aggregated": True,
            "shards_reporting": reachable,
            "shards_total": len(responses),
            "totals": totals,
            "router": {
                "proxied": self._proxied,
                "unavailable": self._unavailable,
                "uptime_seconds": time.monotonic() - self._started,
            },
            "per_shard": per_shard,
        }

    def _topologies(self) -> tuple[int, dict[str, Any]]:
        responses = self._fan_out("GET", "/topologies")
        names: set[str] = set()
        for code, payload in responses.values():
            if code == 200:
                names.update(payload.get("topologies", []))
        return 200, {"topologies": sorted(names)}

    def _ring_payload(self) -> dict[str, Any]:
        ring = self.ring()
        addresses = {}
        states = {}
        epochs = {}
        for shard_id in ring.shard_ids:
            address = self.manager.address_of(shard_id)
            addresses[str(shard_id)] = (
                f"{address[0]}:{address[1]}" if address else None
            )
            states[str(shard_id)] = self.manager.state_of(shard_id)
            epochs[str(shard_id)] = self.manager.epoch_of(shard_id)
        return {
            "shards": list(ring.shard_ids),
            "virtual_nodes": ring.virtual_nodes,
            "version": self.manager.version,
            "addresses": addresses,
            "states": states,
            "epochs": epochs,
        }

    def _cluster_stats(self) -> tuple[int, dict[str, Any]]:
        return 200, {
            "ring": self._ring_payload(),
            "shards": self.manager.statuses(),
            "router": {
                "proxied": self._proxied,
                "unavailable": self._unavailable,
                "uptime_seconds": time.monotonic() - self._started,
            },
        }

    def _resize(self, body: dict[str, Any]) -> tuple[int, dict[str, Any]]:
        shards = body.get("shards")
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            return 400, {"error": "shards must be a positive integer"}
        before = self.ring()
        changes = self.manager.resize(shards)
        after = self.ring()
        moved = []
        # Report which currently-registered topologies changed owner —
        # callers see exactly what the consistent hash moved.
        _, payload = self._topologies()
        for name in payload["topologies"]:
            if before.shard_for(name) != after.shard_for(name):
                moved.append(name)
        return 200, {**changes, "version": self.manager.version, "moved": moved}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop the fan-out pool and the whole shard fleet."""
        self._fanout.shutdown(wait=False)
        self.manager.stop_all()
