"""Additional workload topologies beyond the paper's Word Count.

The paper's introduction motivates stream processing with "jobs that
process ad-click rates" and "internal monitoring jobs"; this module
provides such a topology so the models are exercised on shapes Word
Count lacks:

* a *filtering* stage whose I/O coefficient is below 1 (selectivity),
* a *diamond*: one stream consumed by two downstream components, giving
  multiple source→sink paths and multiple critical-path candidates,
* a second fields-grouped hop with a configurable key skew.

::

    event-spout ──shuffle──> parser ──shuffle──> filterer ──fields──> aggregator
                                └────shuffle──> auditor

The parser emits one parsed event per input; the filterer keeps only
billable events (selectivity alpha < 1) keyed by campaign; the
aggregator counts per campaign; the auditor samples the full parsed
stream independently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError
from repro.heron.groupings import FieldsGrouping, KeyDistribution, ShuffleGrouping
from repro.heron.packing import PackingPlan, Resources, RoundRobinPacking
from repro.heron.simulation import ComponentLogic, SpoutLogic
from repro.heron.topology import LogicalTopology, TopologyBuilder

__all__ = ["AdsPipelineParams", "build_ads_pipeline"]

SPOUT = "event-spout"
PARSER = "parser"
FILTERER = "filterer"
AGGREGATOR = "aggregator"
AUDITOR = "auditor"


@dataclass(frozen=True)
class AdsPipelineParams:
    """Tunables for the ad-analytics pipeline.

    Default capacities put the parser's saturation around 20 M
    events/min per instance and make the aggregator comfortable at the
    filterer's reduced output — mirroring a well-tuned production job
    where the expensive stage sits in the middle.
    """

    spout_parallelism: int = 4
    parser_parallelism: int = 3
    filterer_parallelism: int = 2
    aggregator_parallelism: int = 3
    auditor_parallelism: int = 1
    parser_capacity_tps: float = 20.0e6 / 60.0
    filterer_capacity_tps: float = 40.0e6 / 60.0
    aggregator_capacity_tps: float = 15.0e6 / 60.0
    auditor_capacity_tps: float = 100.0e6 / 60.0
    filter_selectivity: float = 0.35
    campaigns: int = 500
    campaign_skew: float = 0.8
    event_bytes: float = 220.0
    billable_bytes: float = 96.0
    containers: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.filter_selectivity <= 1.0:
            raise TopologyError("filter_selectivity must be in (0, 1]")
        if self.campaigns < 1:
            raise TopologyError("campaigns must be positive")

    def campaign_distribution(self) -> KeyDistribution:
        """The campaign-id key distribution for the fields hop."""
        keys = [f"campaign-{i}" for i in range(self.campaigns)]
        return KeyDistribution.zipf(keys, self.campaign_skew)

    def num_containers(self) -> int:
        """Container count: explicit, or ~2 instances per container."""
        if self.containers is not None:
            return self.containers
        total = (
            self.spout_parallelism
            + self.parser_parallelism
            + self.filterer_parallelism
            + self.aggregator_parallelism
            + self.auditor_parallelism
        )
        return -(-total // 2)


def build_ads_pipeline(
    params: AdsPipelineParams | None = None,
) -> tuple[LogicalTopology, PackingPlan, dict[str, SpoutLogic | ComponentLogic]]:
    """Build the ads pipeline: topology, packing plan and logic."""
    params = params or AdsPipelineParams()
    builder = TopologyBuilder("ads-pipeline")
    builder.add_spout(SPOUT, params.spout_parallelism)
    builder.add_bolt(PARSER, params.parser_parallelism)
    builder.add_bolt(FILTERER, params.filterer_parallelism)
    builder.add_bolt(AGGREGATOR, params.aggregator_parallelism)
    builder.add_bolt(AUDITOR, params.auditor_parallelism)
    builder.connect(SPOUT, PARSER, ShuffleGrouping())
    # The parser's single "parsed" stream feeds both the filterer and
    # the auditor (one stream, two subscribers: the diamond).
    builder.connect(PARSER, FILTERER, ShuffleGrouping(), stream="parsed")
    builder.connect(PARSER, AUDITOR, ShuffleGrouping(), stream="parsed")
    builder.connect(
        FILTERER,
        AGGREGATOR,
        FieldsGrouping(["campaign"], params.campaign_distribution()),
        stream="billable",
    )
    topology = builder.build()
    packing = RoundRobinPacking(Resources()).pack(
        topology, params.num_containers()
    )
    logic: dict[str, SpoutLogic | ComponentLogic] = {
        SPOUT: SpoutLogic(alphas={"default": 1.0}),
        PARSER: ComponentLogic(
            capacity_tps=params.parser_capacity_tps,
            alphas={"parsed": 1.0},
            input_tuple_bytes=params.event_bytes,
        ),
        FILTERER: ComponentLogic(
            capacity_tps=params.filterer_capacity_tps,
            alphas={"billable": params.filter_selectivity},
            input_tuple_bytes=params.event_bytes,
        ),
        AGGREGATOR: ComponentLogic(
            capacity_tps=params.aggregator_capacity_tps,
            alphas={},
            input_tuple_bytes=params.billable_bytes,
            state_bytes_per_processed=2.0,
            state_memory_cap_bytes=64e6,
        ),
        AUDITOR: ComponentLogic(
            capacity_tps=params.auditor_capacity_tps,
            alphas={},
            input_tuple_bytes=params.event_bytes,
        ),
    }
    return topology, packing, logic
