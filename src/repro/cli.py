"""Command-line interface for the Caladrius reproduction.

Four subcommands cover the operational surface:

``serve``
    Stand up the web service over a demo cluster (or an empty tracker)
    from a YAML config — the paper's deployment mode.  With
    ``--shards N`` it becomes the cluster front door: a router process
    supervising N shard workers (and, with ``--replicate``, one
    WAL-shipping follower per shard).
``follow``
    Run a follower replica: receives shipped WAL segments from a shard
    and serves read-only modelling queries over the replayed state.
``cluster-stats``
    Query a running cluster router for ring layout, per-shard state and
    proxy counters.
``chaos``
    Stand up a replicated cluster and subject it to a seeded schedule
    of kill -9s, pauses, shipping partitions, data-dir wipes and disk
    faults, checking failover invariants (no acked write lost, a single
    writer per epoch, replica convergence, bounded unavailability).
``simulate``
    Run the Word Count topology at a source rate and print its
    per-minute metrics, useful for exploring the simulator.
``predict``
    One-shot performance prediction: simulate, calibrate and report the
    dry-run verdict for a traffic level and proposed parallelisms.
``forecast``
    Fit the traffic models on a simulated seasonal history and print
    the forecast summary.
``matrix``
    Run the workload-diversity scenario matrix: generated topologies
    (diamond, fan-in, deep chain, multi-spout) × fault kinds × traffic
    patterns, each cell scored as calibration MAPE against a fresh
    validation run, with a machine-readable ``matrix_report.json``.

Every subcommand is pure stdlib + this package; run as
``python -m repro.cli <subcommand>`` or through the ``caladrius``
console script.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections.abc import Sequence
from dataclasses import replace

import numpy as np

from repro.api.app import CaladriusApp
from repro.api.server import CaladriusServer
from repro.config import load_config
from repro.core.performance_models import ThroughputPredictionModel
from repro.core.traffic_models import (
    ProphetTrafficModel,
    StatsSummaryTrafficModel,
)
from repro.errors import ReproError
from repro.heron.metrics import MetricNames
from repro.heron.simulation import HeronSimulation, SimulationConfig
from repro.heron.tracker import TopologyTracker
from repro.heron.wordcount import WordCountParams, build_word_count
from repro.timeseries.store import MetricsStore

__all__ = ["main", "build_parser"]

M = 1e6


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="caladrius",
        description="Caladrius performance-modelling service (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the web service")
    serve.add_argument("--config", help="YAML config file", default=None)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--demo",
        action="store_true",
        help="register a simulated Word Count deployment with metrics",
    )
    serve.add_argument(
        "--demo-count", type=int, default=1, metavar="K",
        help="with --demo: register K demo topologies "
             "(word-count, word-count-2, ...) sharing the same metrics shape",
    )
    serve.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run the cluster tier: a router on --port plus N worker "
             "processes, topologies consistent-hash-routed across them",
    )
    serve.add_argument(
        "--replicate", action="store_true",
        help="pair every shard with a follower replica fed by WAL-segment "
             "shipping (requires --data-dir)",
    )
    serve.add_argument(
        "--shard-id", type=int, default=None,
        help=argparse.SUPPRESS,  # internal: this process is one shard
    )
    serve.add_argument(
        "--ship-to", default=None, metavar="HOST:PORT",
        help=argparse.SUPPRESS,  # internal: ship WAL segments here
    )
    serve.add_argument(
        "--epoch", type=int, default=None,
        help=argparse.SUPPRESS,  # internal: writer-generation epoch
    )
    serve.add_argument(
        "--sync-ship", action="store_true",
        help="ship WAL segments to the follower before acknowledging "
             "writes (stronger durability, higher write latency)",
    )
    serve.add_argument(
        "--async-api", action="store_true",
        help="serve over the asyncio ingestion front-end (keep-alive "
             "event loop bridging into a worker pool)",
    )
    serve.add_argument(
        "--service-faults", default=None, metavar="SPEC",
        help=argparse.SUPPRESS,  # internal: chaos storage-fault schedule
    )
    serve.add_argument(
        "--cache-mb", type=float, default=None, metavar="MB",
        help="serving-layer result cache budget (overrides config)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=None, metavar="N",
        help="admission-control queue bound (overrides config)",
    )
    serve.add_argument(
        "--no-serving", action="store_true",
        help="disable the serving layer (recompute every request)",
    )
    serve.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="durable state directory (WAL + checkpoints); metrics and "
             "packing plans survive crashes and restarts",
    )
    serve.add_argument(
        "--fsync", choices=("always", "interval", "never"), default=None,
        help="WAL fsync policy (overrides config; default: interval)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=None, metavar="SECONDS",
        help="graceful-shutdown bound on waiting for in-flight requests",
    )
    serve.add_argument(
        "--once",
        action="store_true",
        help=argparse.SUPPRESS,  # start and stop immediately (tests)
    )

    follow = sub.add_parser(
        "follow",
        help="run a follower replica fed by WAL-segment shipping",
    )
    follow.add_argument("--replica-dir", required=True, metavar="DIR")
    follow.add_argument("--host", default="127.0.0.1")
    follow.add_argument("--port", type=int, default=0)
    follow.add_argument(
        "--once", action="store_true", help=argparse.SUPPRESS
    )

    cluster_stats = sub.add_parser(
        "cluster-stats",
        help="query a running cluster router's fleet-wide stats",
    )
    cluster_stats.add_argument("--host", default="127.0.0.1")
    cluster_stats.add_argument("--port", type=int, default=8080)
    cluster_stats.add_argument(
        "--json", action="store_true", dest="as_json"
    )

    chaos = sub.add_parser(
        "chaos",
        help="run the cluster chaos harness: seeded fault injection "
             "against a live replicated cluster, with invariant checks",
    )
    chaos.add_argument("--shards", type=int, default=2)
    chaos.add_argument("--seed", type=int, default=0,
                       help="event schedule seed (deterministic)")
    chaos.add_argument("--duration", type=float, default=25.0,
                       metavar="SECONDS",
                       help="how long the chaos run lasts")
    chaos.add_argument("--events", type=int, default=6,
                       help="how many chaos events to schedule")
    chaos.add_argument("--data-dir", default=None, metavar="DIR",
                       help="scratch data root (default: a fresh temp dir)")
    chaos.add_argument("--report", default=None, metavar="PATH",
                       help="write the chaos report JSON here")
    chaos.add_argument("--json", action="store_true", dest="as_json")

    recover = sub.add_parser(
        "recover",
        help="replay a data directory offline and compact its WAL",
    )
    recover.add_argument("--data-dir", required=True, metavar="DIR")
    recover.add_argument(
        "--no-checkpoint", action="store_true",
        help="report only; skip the compacting checkpoint",
    )
    recover.add_argument("--json", action="store_true", dest="as_json")

    simulate = sub.add_parser("simulate", help="run a simulated topology")
    simulate.add_argument("--rate", type=float, required=True,
                          help="source rate, tuples/minute")
    simulate.add_argument("--minutes", type=int, default=5)
    simulate.add_argument("--splitter", type=int, default=3)
    simulate.add_argument("--counter", type=int, default=3)
    simulate.add_argument("--topology", default=None,
                          help="YAML topology file (instead of Word Count)")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--faults", default=None, metavar="PATH",
                          help="YAML fault plan injected during the run")
    simulate.add_argument("--json", action="store_true", dest="as_json")

    predict = sub.add_parser("predict", help="dry-run performance prediction")
    predict.add_argument("--rate", type=float, required=True,
                         help="traffic to evaluate, tuples/minute")
    predict.add_argument("--splitter", type=int, default=2,
                         help="deployed splitter parallelism")
    predict.add_argument("--counter", type=int, default=4,
                         help="deployed counter parallelism")
    predict.add_argument("--propose", default=None,
                         help='proposed parallelisms, e.g. "splitter=4,counter=6"')
    predict.add_argument("--seed", type=int, default=0)
    predict.add_argument("--json", action="store_true", dest="as_json")

    sweep = sub.add_parser(
        "sweep", help="rank candidate parallelism plans in one calibration"
    )
    sweep.add_argument("--rate", type=float, required=True,
                       help="traffic to evaluate, tuples/minute")
    sweep.add_argument("--splitter", type=int, default=3,
                       help="deployed splitter parallelism")
    sweep.add_argument("--counter", type=int, default=3,
                       help="deployed counter parallelism")
    sweep.add_argument("--splitters", default="1-8",
                       help='candidate splitter range, e.g. "2-6" or "4"')
    sweep.add_argument("--counters", default="1-8",
                       help='candidate counter range, e.g. "3-8" or "5"')
    sweep.add_argument("--plans", default=None, metavar="JSON",
                       help="explicit JSON list of plans (overrides ranges)")
    sweep.add_argument("--top-k", type=int, default=10, dest="top_k")
    sweep.add_argument("--validate-top", type=int, default=0,
                       help="simulate the N best plans for validation")
    sweep.add_argument("--workers", type=int, default=0,
                       help="process-pool size for validation (0 = inline)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--json", action="store_true", dest="as_json")

    stats = sub.add_parser(
        "serving-stats", help="query a running service's serving stats"
    )
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, default=8080)
    stats.add_argument("--json", action="store_true", dest="as_json")

    matrix = sub.add_parser(
        "matrix",
        help="run the workload-diversity scenario matrix "
             "(shape x fault x traffic differential tests)",
    )
    matrix.add_argument("--seed", type=int, default=7,
                        help="matrix seed; workloads, faults and traffic "
                             "all derive from it deterministically")
    matrix.add_argument("--cells", type=int, default=None, metavar="N",
                        help="run only the first N grid cells "
                             "(default: the full grid)")
    matrix.add_argument("--shapes", default=None, metavar="CSV",
                        help="comma-separated shape subset "
                             "(diamond,fanin,deep_chain,multi_spout)")
    matrix.add_argument("--minutes", type=int, default=9,
                        help="calibration-run length per cell")
    matrix.add_argument("--report", default=None, metavar="PATH",
                        help="write matrix_report.json here")
    matrix.add_argument("--json", action="store_true", dest="as_json",
                        help="print the full report instead of the table")

    forecast = sub.add_parser("forecast", help="traffic forecasting demo")
    forecast.add_argument("--history-minutes", type=int, default=360)
    forecast.add_argument("--horizon-minutes", type=int, default=60)
    forecast.add_argument("--model", choices=("prophet", "stats-summary"),
                          default="prophet")
    forecast.add_argument("--seed", type=int, default=0)
    forecast.add_argument("--json", action="store_true", dest="as_json")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "serve": _cmd_serve,
        "follow": _cmd_follow,
        "cluster-stats": _cmd_cluster_stats,
        "chaos": _cmd_chaos,
        "recover": _cmd_recover,
        "simulate": _cmd_simulate,
        "predict": _cmd_predict,
        "sweep": _cmd_sweep,
        "matrix": _cmd_matrix,
        "forecast": _cmd_forecast,
        "serving-stats": _cmd_serving_stats,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _demo_deployment(
    splitter: int,
    counter: int,
    seed: int,
    rates: Sequence[float],
    tracker: TopologyTracker | None = None,
    store: MetricsStore | None = None,
) -> tuple[TopologyTracker, MetricsStore]:
    """Simulate Word Count into ``store`` (a fresh one by default).

    With a durable store the simulated metrics are journalled like any
    other write, so a demo deployment survives restart too.
    """
    params = WordCountParams(
        splitter_parallelism=splitter, counter_parallelism=counter
    )
    topology, packing, logic = build_word_count(params)
    if store is None:
        store = MetricsStore()
    sim = HeronSimulation(
        topology, packing, logic, store, SimulationConfig(seed=seed)
    )
    for rate in rates:
        sim.set_source_rate("sentence-spout", float(rate))
        sim.run(2)
    if tracker is None:
        tracker = TopologyTracker()
    tracker.register(topology, packing)
    return tracker, store


def _demo_names(count: int) -> list[str]:
    """The demo topology names for ``--demo --demo-count K``."""
    return ["word-count"] + [f"word-count-{i}" for i in range(2, count + 1)]


def _setup_demo(
    tracker: TopologyTracker,
    store: MetricsStore,
    count: int,
    shard_id: int | None = None,
    shards: int = 1,
    virtual_nodes: int = 64,
) -> list[str]:
    """Register the demo topologies this process owns, with metrics.

    Word Count is simulated once into a scratch store, then cloned under
    each demo name (topology, packing plan and metric series with the
    ``topology`` tag rewritten).  In cluster mode only the names the
    consistent-hash ring assigns to ``shard_id`` are materialised, so
    every shard owns a disjoint slice of the demo fleet — the same
    placement the router computes.
    """
    from repro.durability.codec import (
        _decode_packing,
        _decode_topology,
        _encode_packing,
        _encode_topology,
    )

    names = _demo_names(count)
    if shard_id is not None and shards > 1:
        from repro.cluster.ring import HashRing

        ring = HashRing(list(range(shards)), virtual_nodes)
        names = [n for n in names if ring.shard_for(n) == shard_id]
    missing = [n for n in names if n not in tracker.names()]
    if not missing:
        return names
    scratch_tracker, scratch_store = _demo_deployment(
        splitter=2, counter=4, seed=0,
        rates=np.arange(4 * M, 44 * M + 1, 8 * M),
    )
    base = scratch_tracker.get("word-count")
    series = [
        (key, scratch_store.get(key.name, key.tag_dict()))
        for key in scratch_store.keys()
    ]
    for name in missing:
        logical = _encode_topology(base.topology)
        logical["name"] = name
        packing = _encode_packing(base.packing)
        packing["topology"] = name
        tracker.register(_decode_topology(logical), _decode_packing(packing))
        for key, full in series:
            tags = key.tag_dict()
            if tags.get("topology") != "word-count":
                continue
            tags["topology"] = name
            store.write_many(
                key.name,
                zip(
                    (int(t) for t in full.timestamps),
                    (float(v) for v in full.values),
                ),
                tags,
            )
    return names


def _parse_proposal(text: str | None) -> dict[str, int] | None:
    if not text:
        return None
    proposal: dict[str, int] = {}
    for item in text.split(","):
        name, _, value = item.partition("=")
        if not name or not value:
            raise SystemExit(
                f'cannot parse proposal item {item!r}; use "component=N"'
            )
        proposal[name.strip()] = int(value)
    return proposal


def _arm_service_faults(data_dir: str, spec: str | None):
    """Build the storage-fault injector for ``--service-faults``.

    Faults arm exactly once per data directory: a ``.service-faults-armed``
    marker is dropped beside the WAL, so a supervisor respawn of the same
    worker recovers cleanly instead of re-firing the schedule (the chaos
    harness injects one storage failure, not a permanently broken disk).
    """
    if not spec:
        return None
    from pathlib import Path

    from repro.faults import ServiceFaultInjector, parse_service_fault_spec

    faults = parse_service_fault_spec(spec)
    root = Path(data_dir)
    marker = root / ".service-faults-armed"
    if marker.exists():
        return None
    root.mkdir(parents=True, exist_ok=True)
    marker.write_text(spec, encoding="utf8")
    return ServiceFaultInjector(faults)


def _parse_shard_fault_specs(spec: str | None) -> dict[int, str]:
    """Split ``"0:torn_write@7;2:disk_full@3"`` into per-shard specs.

    The cluster front door hands each worker only its own fragment (as
    a plain ``kind@append`` list); fragments are validated here so a
    typo fails the whole ``serve`` instead of one worker's boot loop.
    """
    if not spec:
        return {}
    from repro.faults import parse_service_fault_spec

    specs: dict[int, str] = {}
    for fragment in spec.split(";"):
        fragment = fragment.strip()
        if not fragment:
            continue
        shard_text, separator, faults = fragment.partition(":")
        if not separator:
            raise SystemExit(
                f"--service-faults fragment {fragment!r} must look like "
                f"SHARD:kind@append"
            )
        try:
            shard_id = int(shard_text)
        except ValueError:
            raise SystemExit(
                f"--service-faults shard {shard_text!r} is not an integer"
            ) from None
        parse_service_fault_spec(faults)  # fail fast on bad fragments
        specs[shard_id] = faults
    return specs


def _start_wal_watchdog(store, poll_seconds: float = 0.2) -> None:
    """Exit the worker hard (code 70) once its WAL has failed.

    A shard whose WAL hit an injected (or real) disk fault can still
    answer reads, but every write will fail forever; dying loudly hands
    the decision to the shard manager, which validates the data dir and
    promotes the follower when the replica holds more than the disk.
    """
    import os
    import threading

    def _watch() -> None:
        while True:
            time.sleep(poll_seconds)
            reason = store.wal.failed
            if reason:
                print(
                    f"wal failed ({reason}); exiting for the supervisor",
                    file=sys.stderr,
                    flush=True,
                )
                os._exit(70)

    threading.Thread(
        target=_watch, name="wal-watchdog", daemon=True
    ).start()


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_serve(args) -> int:
    config = load_config(args.config) if args.config else load_config({})
    serving_overrides = {}
    if args.cache_mb is not None:
        serving_overrides["cache_mb"] = args.cache_mb
    if args.max_queue is not None:
        serving_overrides["max_queue"] = args.max_queue
    if args.no_serving:
        serving_overrides["enabled"] = False
    if serving_overrides:
        config = replace(
            config, serving=replace(config.serving, **serving_overrides)
        )
    durability_overrides = {}
    if args.data_dir is not None:
        durability_overrides["data_dir"] = args.data_dir
    if args.fsync is not None:
        durability_overrides["fsync"] = args.fsync
    if args.drain_timeout is not None:
        durability_overrides["drain_timeout_seconds"] = args.drain_timeout
    if durability_overrides:
        config = replace(
            config,
            durability=replace(config.durability, **durability_overrides),
        )
    if args.async_api and not config.ingest.async_api:
        config = replace(
            config, ingest=replace(config.ingest, async_api=True)
        )
    cluster_overrides = {}
    if args.shards is not None:
        cluster_overrides["shards"] = args.shards
    if args.replicate:
        cluster_overrides["replicate"] = True
    if args.sync_ship:
        cluster_overrides["sync_ship"] = True
    if cluster_overrides:
        config = replace(
            config, cluster=replace(config.cluster, **cluster_overrides)
        )
    if args.shard_id is None and config.cluster.shards > 1:
        return _serve_cluster(args, config)

    checkpointer = None
    durable_store = None
    if config.durability.data_dir:
        from repro.durability import CheckpointManager, open_data_dir

        store, tracker = open_data_dir(
            config.durability.data_dir,
            fsync=config.durability.fsync,
            fsync_interval_seconds=config.durability.fsync_interval_seconds,
            segment_max_bytes=config.durability.segment_max_bytes,
            faults=_arm_service_faults(
                config.durability.data_dir, args.service_faults
            ),
        )
        durable_store = store
        checkpointer = CheckpointManager(store, tracker)
        print(
            f"recovered {config.durability.data_dir}: "
            f"{json.dumps(store.recovery.as_dict())}",
            file=sys.stderr,
        )
        if args.shard_id is not None:
            _start_wal_watchdog(durable_store)
    else:
        tracker, store = TopologyTracker(), MetricsStore()
    if args.demo:
        if args.shard_id is not None or args.demo_count > 1:
            _setup_demo(
                tracker, store, args.demo_count,
                shard_id=args.shard_id,
                shards=config.cluster.shards,
                virtual_nodes=config.cluster.virtual_nodes,
            )
        elif "word-count" not in tracker.names():
            _demo_deployment(
                splitter=2, counter=4, seed=0,
                rates=np.arange(4 * M, 44 * M + 1, 8 * M),
                tracker=tracker, store=store,
            )
        if args.shard_id is not None and checkpointer is not None:
            # Checkpoint the demo registration immediately: a shard the
            # supervisor respawns after kill -9 must recover its tracker
            # (topologies live only in checkpoints) or the demo guard
            # would re-simulate into the recovered store and crash-loop
            # on duplicate timestamps.
            summary = checkpointer.checkpoint()
            print(
                f"initial checkpoint: {json.dumps(summary)}",
                file=sys.stderr,
            )

    app = CaladriusApp(
        config, tracker, store, shard_id=args.shard_id, epoch=args.epoch
    )
    shipper = None
    if args.ship_to:
        if durable_store is None:
            print(
                "error: --ship-to requires --data-dir (there is no WAL "
                "to ship without durability)",
                file=sys.stderr,
            )
            return 2
        from repro.cluster.shipping import SegmentShipper

        shipper = SegmentShipper(
            durable_store,
            args.ship_to,
            interval_seconds=config.cluster.ship_interval_seconds,
            epoch=args.epoch,
        )
        app.shipper = shipper
        app.sync_ship = config.cluster.sync_ship
        shipper.start()
    if app.serving is not None:
        app.serving.start()  # warm-cache precompute loop
    if config.ingest.async_api:
        from repro.api.async_server import AsyncCaladriusServer

        server = AsyncCaladriusServer(app, host=args.host, port=args.port)
    else:
        server = CaladriusServer(app, host=args.host, port=args.port)
    server.start()

    def _final_checkpoint() -> None:
        if durable_store is None:
            return
        durable_store.flush()
        summary = checkpointer.checkpoint()
        if shipper is not None:
            # Stop ships once more after the checkpoint, so the follower
            # holds the final checkpoint and every surviving segment.
            shipper.stop()
        durable_store.close()
        print(f"final checkpoint: {json.dumps(summary)}", file=sys.stderr)

    if args.once:
        print(
            f"caladrius serving on {server.host}:{server.port}", flush=True
        )
        server.stop()
        _final_checkpoint()
        app.shutdown()
        return 0
    # Handlers go in BEFORE the announce line: supervisors (and the
    # cluster's ShardManager) may SIGTERM the instant they parse the
    # port, and an unhandled SIGTERM there would skip the drain and the
    # final checkpoint.
    done = server.install_signal_handlers(
        drain_timeout=config.durability.drain_timeout_seconds,
        on_drained=_final_checkpoint,
    )
    # flush=True: the crash harness parses this line through a pipe.
    print(f"caladrius serving on {server.host}:{server.port}", flush=True)
    done.wait()  # pragma: no cover - exercised via subprocess tests
    app.shutdown()
    return 0


def _serve_cluster(args, config) -> int:
    """``serve --shards N``: router front door over N worker processes."""
    from pathlib import Path

    from repro.cluster.router import RouterApp
    from repro.cluster.shard import ShardManager

    shards = config.cluster.shards
    replicate = config.cluster.replicate
    if replicate and not config.durability.data_dir:
        print(
            "error: --replicate requires --data-dir (followers replay "
            "shipped WAL segments)",
            file=sys.stderr,
        )
        return 2
    data_root = (
        Path(config.durability.data_dir)
        if config.durability.data_dir
        else None
    )
    shard_faults = _parse_shard_fault_specs(args.service_faults)

    def worker_argv(
        shard_id: int, ship_to: str | None, epoch: int
    ) -> list[str]:
        argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", args.host, "--port", "0",
            "--shard-id", str(shard_id), "--shards", str(shards),
            "--epoch", str(epoch),
        ]
        if args.config:
            argv += ["--config", args.config]
        if args.demo:
            argv += ["--demo", "--demo-count", str(args.demo_count)]
        if args.cache_mb is not None:
            argv += ["--cache-mb", str(args.cache_mb)]
        if args.max_queue is not None:
            argv += ["--max-queue", str(args.max_queue)]
        if args.no_serving:
            argv += ["--no-serving"]
        if data_root is not None:
            argv += ["--data-dir", str(data_root / f"shard-{shard_id}")]
        if args.fsync is not None:
            argv += ["--fsync", args.fsync]
        if args.drain_timeout is not None:
            argv += ["--drain-timeout", str(args.drain_timeout)]
        if ship_to:
            argv += ["--ship-to", ship_to]
        if config.cluster.sync_ship and ship_to:
            argv += ["--sync-ship"]
        if config.ingest.async_api:
            argv += ["--async-api"]
        if shard_id in shard_faults:
            argv += ["--service-faults", shard_faults[shard_id]]
        return argv

    follower_argv = None
    if replicate:
        def follower_argv(shard_id: int) -> list[str]:
            return [
                sys.executable, "-m", "repro.cli", "follow",
                "--replica-dir", str(data_root / f"replica-{shard_id}"),
                "--host", args.host, "--port", "0",
            ]

    shard_dirs = None
    if replicate and data_root is not None:
        def shard_dirs(shard_id: int) -> tuple[Path, Path]:
            return (
                data_root / f"shard-{shard_id}",
                data_root / f"replica-{shard_id}",
            )

    manager = ShardManager(
        worker_argv,
        follower_argv,
        host=args.host,
        restart_backoff_seconds=config.cluster.restart_backoff_seconds,
        shard_dirs=shard_dirs,
        epoch_path=(data_root / "epochs.json") if data_root else None,
        unresponsive_timeout_seconds=(
            config.cluster.unresponsive_timeout_seconds
        ),
    )
    try:
        manager.start(shards)
    except ReproError:
        manager.stop_all()
        raise
    router = RouterApp(
        config,
        manager,
        virtual_nodes=config.cluster.virtual_nodes,
        proxy_timeout=config.cluster.proxy_timeout_seconds,
    )
    server = CaladriusServer(router, host=args.host, port=args.port)
    server.start()

    def _stop_fleet() -> None:
        router.shutdown()

    def _announce() -> None:
        # Same announce shape as single-process serve: harnesses parse
        # the "serving on host:port" suffix through a pipe.
        print(
            f"caladrius cluster ({shards} shard(s)"
            + (", replicated" if replicate else "")
            + f") serving on {server.host}:{server.port}",
            flush=True,
        )

    if args.once:
        _announce()
        server.stop()
        _stop_fleet()
        return 0
    done = server.install_signal_handlers(
        drain_timeout=config.durability.drain_timeout_seconds,
        on_drained=_stop_fleet,
    )
    _announce()
    done.wait()  # pragma: no cover - exercised via subprocess tests
    return 0


def _cmd_follow(args) -> int:
    from repro.cluster.follower import FollowerApp, FollowerReplica

    config = load_config({})
    # A follower only serves reads over replicated state; the serving
    # layer's cache keys would be correct but its precompute loop is
    # wasted work here, so the layer stays off.
    config = replace(config, serving=replace(config.serving, enabled=False))
    replica = FollowerReplica(args.replica_dir)
    inner = CaladriusApp(
        config, replica.tracker, replica.store, read_only=True
    )
    app = FollowerApp(replica, inner)
    server = CaladriusServer(app, host=args.host, port=args.port)
    server.start()

    def _announce() -> None:
        print(
            f"caladrius follower serving on {server.host}:{server.port}",
            flush=True,
        )

    if args.once:
        _announce()
        server.stop()
        app.close()
        return 0
    done = server.install_signal_handlers()
    _announce()
    done.wait()  # pragma: no cover - exercised via subprocess tests
    app.close()
    return 0


def _cmd_cluster_stats(args) -> int:
    from repro.api.client import CaladriusClient

    client = CaladriusClient(args.host, args.port, retries=1)
    stats = client._request("GET", "/cluster/stats")
    if args.as_json:
        print(json.dumps(stats, indent=2))
        return 0
    ring = stats["ring"]
    print(
        f"ring     : {len(ring['shards'])} shard(s), "
        f"{ring['virtual_nodes']} virtual nodes, "
        f"version {ring['version']}"
    )
    for shard in stats["shards"]:
        address = ring["addresses"].get(str(shard["shard_id"]))
        line = (
            f"  shard {shard['shard_id']}: {shard['state']:<10} "
            f"{address or '-':<21} restarts={shard['restarts']}"
            f" epoch={shard.get('epoch', 0)}"
        )
        if shard.get("promotions"):
            line += f" promotions={shard['promotions']}"
        if "follower_port" in shard:
            line += f" follower=:{shard['follower_port']}"
        print(line)
    router = stats["router"]
    print(
        f"router   : {router['proxied']} proxied, "
        f"{router['unavailable']} unavailable, "
        f"up {router['uptime_seconds']:.0f}s"
    )
    return 0


def _cmd_chaos(args) -> int:
    import tempfile
    from pathlib import Path

    from repro.cluster.chaos import ChaosController

    scratch = None
    if args.data_dir:
        data_root = Path(args.data_dir)
    else:
        scratch = tempfile.TemporaryDirectory(prefix="caladrius-chaos-")
        data_root = Path(scratch.name)
    try:
        controller = ChaosController(
            shards=args.shards,
            seed=args.seed,
            duration_seconds=args.duration,
            data_root=data_root,
            events=args.events,
        )
        report = controller.run()
    finally:
        if scratch is not None:
            scratch.cleanup()
    if args.report:
        Path(args.report).write_text(
            json.dumps(report, indent=2), encoding="utf8"
        )
    if args.as_json:
        print(json.dumps(report, indent=2))
    else:
        print(f"seed       : {report['seed']}")
        print(f"duration   : {report['duration_seconds']:.1f}s "
              f"({report['shards']} shard(s), {len(report['events'])} "
              f"event(s))")
        for event in report["events"]:
            print(f"  t={event['at_seconds']:>5.1f}s {event['kind']:<10} "
                  f"shard {event['shard_id']}")
        counters = report["counters"]
        print(f"writes     : {counters['acked_writes']} acked, "
              f"{counters['failed_writes']} failed, "
              f"{counters['fenced_writes']} fenced")
        print(f"probes     : {counters['probes']} "
              f"({counters['stale_reads']} stale reads, "
              f"{counters['fence_rejections']} fence rejections)")
        for name, verdict in report["invariants"].items():
            status = "pass" if verdict["ok"] else "FAIL"
            detail = verdict.get("detail", "")
            print(f"  {status:<4} {name}" + (f" — {detail}" if detail else ""))
        if args.report:
            print(f"report     : {args.report}")
    return 0 if report["ok"] else 1


def _cmd_recover(args) -> int:
    from repro.durability import CheckpointManager, open_data_dir

    store, tracker = open_data_dir(args.data_dir)
    report: dict[str, object] = {
        "data_dir": args.data_dir,
        "recovery": store.recovery.as_dict(),
        "topologies": tracker.names(),
    }
    if not args.no_checkpoint:
        report["checkpoint"] = CheckpointManager(store, tracker).checkpoint()
    store.close()
    if args.as_json:
        print(json.dumps(report, indent=2))
        return 0
    recovery = report["recovery"]
    print(f"data dir     : {args.data_dir}")
    print(f"checkpoint   : lsn {recovery['checkpoint_lsn']}, "
          f"{recovery['snapshot_samples']} snapshot samples")
    print(f"wal replay   : {recovery['replayed_records']} records "
          f"({recovery['skipped_records']} skipped, "
          f"{recovery['torn_records']} torn)")
    print(f"last lsn     : {recovery['last_lsn']}")
    print(f"topologies   : {', '.join(report['topologies']) or '(none)'}")
    if "checkpoint" in report:
        print(f"compacted    : {json.dumps(report['checkpoint'])}")
    return 0


def _cmd_simulate(args) -> int:
    if args.topology:
        from repro.heron.topology_yaml import load_topology_yaml

        topology, packing, logic = load_topology_yaml(args.topology)
    else:
        params = WordCountParams(
            splitter_parallelism=args.splitter,
            counter_parallelism=args.counter,
        )
        topology, packing, logic = build_word_count(params)
    store = MetricsStore()
    plan = None
    if args.faults:
        from repro.faults import load_fault_plan

        plan = load_fault_plan(args.faults, topology, packing, args.minutes)
    sim = HeronSimulation(
        topology, packing, logic, store, SimulationConfig(seed=args.seed),
        faults=plan,
    )
    for spout in topology.spouts():
        sim.set_source_rate(spout.name, args.rate / len(topology.spouts()))
    sim.run(args.minutes)
    first_bolt = topology.bolts()[0].name
    sinks = [c.name for c in topology.sinks()]
    rows = []
    bolt_in = store.aggregate(
        MetricNames.EXECUTE_COUNT, {"component": first_bolt}
    )
    outputs = [
        store.aggregate(MetricNames.EXECUTE_COUNT, {"component": sink})
        for sink in sinks
    ]
    bp = store.get(
        MetricNames.TOPOLOGY_BACKPRESSURE_TIME_MS,
        {"topology": topology.name},
    )
    # Fault blackouts leave different series missing different minutes,
    # so rows are joined on timestamps rather than positions.
    out_maps = [
        dict(zip(o.timestamps.tolist(), o.values.tolist())) for o in outputs
    ]
    bp_map = dict(zip(bp.timestamps.tolist(), bp.values.tolist()))
    for ts, value in bolt_in:
        minute = int(ts) // 60
        rows.append(
            {
                "minute": minute,
                f"{first_bolt}_in_tpm": value,
                "output_tpm": float(
                    sum(m.get(int(ts), 0.0) for m in out_maps)
                ),
                "backpressure_ms": float(bp_map.get(int(ts), 0.0)),
            }
        )
    if plan is not None:
        for seconds, action, event in sim.fault_log:
            target = event.component or (
                f"container-{event.container}"
                if event.container is not None
                else "topology"
            )
            if event.index is not None:
                target += f"[{event.index}]"
            print(
                f"[fault] t={seconds:>5.0f}s {action:<8} "
                f"{event.kind:<15} {target}",
                file=sys.stderr,
            )
    if args.as_json:
        print(json.dumps(rows, indent=2))
    else:
        print(f"{'minute':>7} {first_bolt + ' in':>14} {'output':>14} "
              f"{'bp ms':>8}")
        for row in rows:
            print(
                f"{row['minute']:>7} {row[f'{first_bolt}_in_tpm'] / M:>13.2f}M "
                f"{row['output_tpm'] / M:>13.2f}M {row['backpressure_ms']:>8.0f}"
            )
    return 0


def _cmd_predict(args) -> int:
    tracker, store = _demo_deployment(
        args.splitter, args.counter, args.seed,
        rates=np.arange(4 * M, 44 * M + 1, 8 * M),
    )
    model = ThroughputPredictionModel(tracker, store)
    prediction = model.predict(
        "word-count",
        source_rate=args.rate,
        parallelisms=_parse_proposal(args.propose),
    )
    if args.as_json:
        print(json.dumps(prediction.as_dict(), indent=2))
    else:
        print(f"topology     : {prediction.topology}")
        print(f"traffic      : {prediction.source_rate / M:.1f}M tuples/min")
        print(f"parallelisms : {prediction.parallelisms}")
        print(f"output       : {prediction.output_rate / M:.1f}M tuples/min")
        print(f"saturation   : "
              f"{prediction.saturation_source_rate / M:.1f}M tuples/min")
        print(f"risk         : {prediction.backpressure_risk}"
              + (f" (bottleneck: {prediction.bottleneck})"
                 if prediction.bottleneck else ""))
    return 0


def _parse_range(text: str, flag: str) -> list[int]:
    """Parse ``"2-6"`` or ``"4"`` into a list of parallelisms."""
    lo, sep, hi = text.partition("-")
    try:
        if sep:
            values = list(range(int(lo), int(hi) + 1))
        else:
            values = [int(lo)]
    except ValueError:
        raise SystemExit(f'cannot parse {flag} {text!r}; use "N" or "LO-HI"')
    if not values or min(values) < 1:
        raise SystemExit(f"{flag} must cover parallelisms >= 1")
    return values


def _cmd_sweep(args) -> int:
    from repro.sweep import PlanSweepEngine, ValidationSpec, validate_plans

    params = WordCountParams(
        splitter_parallelism=args.splitter, counter_parallelism=args.counter
    )
    topology, packing, logic = build_word_count(params)
    tracker, store = _demo_deployment(
        args.splitter, args.counter, args.seed,
        rates=np.arange(4 * M, 44 * M + 1, 8 * M),
    )
    if args.plans:
        try:
            plans = json.loads(args.plans)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"--plans is not valid JSON: {exc}")
        if not isinstance(plans, list):
            raise SystemExit("--plans must be a JSON list of objects")
    else:
        plans = [
            {"splitter": s, "counter": c}
            for s in _parse_range(args.splitters, "--splitters")
            for c in _parse_range(args.counters, "--counters")
        ]
    engine = PlanSweepEngine(tracker, store)
    started = time.perf_counter()
    payload = engine.sweep(
        "word-count", args.rate, plans, top_k=args.top_k
    )
    elapsed = time.perf_counter() - started
    if args.validate_top > 0:
        spec = ValidationSpec(
            topology=topology,
            logic=logic,
            source_rates_tpm={"sentence-spout": float(args.rate)},
            minutes=3,
            base_seed=args.seed,
        )
        top_plans = [e["plan"] for e in payload["ranked"][: args.validate_top]]
        validated = validate_plans(spec, top_plans, workers=args.workers)
        by_plan = {
            json.dumps(v["plan"], sort_keys=True): v for v in validated
        }
        for entry in payload["ranked"][: args.validate_top]:
            entry["simulated"] = by_plan[
                json.dumps(entry["plan"], sort_keys=True)
            ]
    if args.as_json:
        print(json.dumps(payload, indent=2))
        return 0
    artifact = payload["artifact"]
    print(f"topology     : {payload['topology']}")
    print(f"traffic      : {payload['source_rate'] / M:.1f}M tuples/min")
    print(f"plans scored : {payload['plan_count']} "
          f"in {elapsed * 1000:.1f} ms (one calibration)")
    print(f"artifact     : {artifact['hash'][:12]} "
          f"(revision {artifact['plan_revision']}, "
          f"data v{artifact['data_version']})")
    for entry in payload["ranked"]:
        cores = entry["estimated_cpu_cores"]
        line = (
            f"  #{entry['rank']:<3} {entry['plan']} "
            f"out={entry['output_rate'] / M:.1f}M "
            f"sat={entry['saturation_source_rate'] / M:.1f}M "
            f"risk={entry['backpressure_risk']}"
            + (f" cpu={cores:.1f}" if cores is not None else "")
        )
        simulated = entry.get("simulated")
        if simulated:
            line += (
                f" | sim out={simulated['output_tpm'] / M:.1f}M "
                f"bp={simulated['backpressure_ms']:.0f}ms"
            )
        print(line)
    return 0


def _cmd_matrix(args) -> int:
    from pathlib import Path

    from repro.workloads import SHAPES, report_json, run_matrix

    shapes = SHAPES
    if args.shapes:
        shapes = tuple(s.strip() for s in args.shapes.split(",") if s.strip())
        unknown = [s for s in shapes if s not in SHAPES]
        if unknown:
            raise SystemExit(
                f"unknown shapes {unknown}; known: {list(SHAPES)}"
            )
    report = run_matrix(
        seed=args.seed,
        cells=args.cells,
        shapes=shapes,
        calibration_minutes=args.minutes,
    )
    if args.report:
        Path(args.report).write_text(report_json(report), encoding="utf8")
    summary = report["summary"]
    if args.as_json:
        print(report_json(report), end="")
    else:
        print(f"{'cell':<42} {'arrival':>8} {'cpu':>8} {'deg':>4} "
              f"{'trace':>12} verdict")
        for cell in report["cells"]:
            if cell["error"]:
                print(f"  {cell['id']:<40} {'-':>8} {'-':>8} {'-':>4} "
                      f"{'-':>12} ERROR: {cell['error']}")
                continue
            print(
                f"  {cell['id']:<40} {cell['arrival_mape']:>8.4f} "
                f"{cell['cpu_mape']:>8.4f} {cell['degraded_warnings']:>4} "
                f"{cell['trace_hash'][:12]:>12} "
                f"{'pass' if cell['passed'] else 'FAIL'}"
            )
        print(f"cells  : {summary['cells']} "
              f"({summary['passed']} passed, {summary['failed']} failed)")
        if summary["worst_arrival_mape"] is not None:
            print(f"worst  : arrival {summary['worst_arrival_mape']:.4f}, "
                  f"cpu {summary['worst_cpu_mape']:.4f}")
        if args.report:
            print(f"report : {args.report}")
    return 0 if summary["ok"] else 1


def _cmd_serving_stats(args) -> int:
    from repro.api.client import CaladriusClient

    client = CaladriusClient(args.host, args.port, retries=1)
    stats = client.serving_stats()
    if args.as_json:
        print(json.dumps(stats, indent=2))
        return 0
    if not stats.get("enabled", False):
        print("serving layer: disabled")
        return 0
    print(f"requests     : {stats['requests']}")
    print(f"hit rate     : {stats['hit_rate']:.1%} ({stats['hits']} hits)")
    print(f"computations : {stats['computations']}")
    print(f"coalesced    : {stats['coalesced']}")
    print(f"shed (429)   : {stats['shed']}")
    print(f"queue depth  : {stats['queue_depth']}")
    print(f"precomputed  : {stats['precomputed']}")
    cache = stats["cache"]
    print(f"cache        : {cache['entries']} entries, "
          f"{cache['bytes'] / 1024:.1f} KiB / "
          f"{cache['max_bytes'] / (1024 * 1024):.0f} MiB, "
          f"{cache['evictions']} evicted, "
          f"{cache['invalidations']} invalidated")
    return 0


def _cmd_forecast(args) -> int:
    params = WordCountParams()
    topology, packing, logic = build_word_count(params)
    store = MetricsStore()
    sim = HeronSimulation(
        topology, packing, logic, store, SimulationConfig(seed=args.seed)
    )
    cycle = 120.0
    for minute in range(args.history_minutes):
        rate = 10 * M + 6 * M * np.sin(2 * np.pi * minute / cycle)
        sim.set_source_rate("sentence-spout", max(0.0, rate))
        sim.run(1)
    tracker = TopologyTracker()
    tracker.register(topology, packing)
    if args.model == "prophet":
        from repro.forecasting.prophet_lite import ProphetLite, Seasonality

        traffic_model = ProphetTrafficModel(
            tracker,
            store,
            make_forecaster=lambda: ProphetLite(
                seasonalities=[Seasonality("cycle", cycle * 60, 4)],
                n_changepoints=5,
            ),
        )
    else:
        traffic_model = StatsSummaryTrafficModel(tracker, store)
    prediction = traffic_model.predict(
        "word-count", None, args.horizon_minutes
    )
    if args.as_json:
        print(json.dumps(prediction.as_dict(), indent=2))
    else:
        print(f"model   : {prediction.model}")
        print(f"horizon : {prediction.horizon_minutes} minutes")
        for key in ("mean", "median", "min", "max", "upper_max"):
            print(f"{key:>9}: {prediction.summary[key] / M:.2f}M tuples/min")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
