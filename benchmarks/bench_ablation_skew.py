"""Ablation: fields-grouping key skew vs the Eq. 9 scaling model.

Paper Section IV-B2b: scaling a fields-grouped component by Eq. 9
assumes a load-balanced data set; skewed keys make routing biased and
the uniform prediction optimistic.  This ablation sweeps the corpus's
Zipf exponent, compares the uniform-assumption SP prediction against
the share-aware prediction (the paper's "customized key grouping"
escape hatch, which this library computes from the key distribution),
and validates both against simulation.
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import fit_piecewise_linear
from repro.experiments.sweeps import run_sweep
from repro.heron.corpus import SyntheticCorpus
from repro.heron.wordcount import WordCountParams

M = 1e6


def bench_ablation_skew(benchmark, quick, report):
    counter_p = 3
    exponents = [0.0, 0.6, 1.0, 1.4]
    rates = np.arange(6 * M, 60 * M + 1, 12 * M if quick else 6 * M)
    lines = [
        "Ablation — key skew vs fields-grouping scaling model",
        "Counter p=3; SP in words/min offered to the Counter",
        "",
        f"{'zipf':>6} {'imbalance':>10} {'uniform SP':>12} "
        f"{'share-aware SP':>15} {'measured SP':>12}",
    ]
    uniform_sp = counter_p * 70 * M  # 210M words/min when balanced
    measured_by_exponent = {}
    for exponent in exponents:
        corpus = SyntheticCorpus(zipf_exponent=exponent)
        shares = corpus.word_distribution().shares_mod(counter_p)
        share_aware_sp = 70 * M / float(shares.max())
        params = WordCountParams(
            splitter_parallelism=7,
            counter_parallelism=counter_p,
            corpus=corpus,
        )
        sweep = run_sweep(
            params,
            rates,
            runs=1 if quick else 3,
            seed=51,
            warmup_minutes=1 if quick else 2,
            measure_minutes=1 if quick else 2,
        )
        src, counter_in = sweep.observations("counter", "input")
        bp = np.array([p.backpressure_ms for p in sweep.points])
        _, splitter_out = sweep.observations("splitter", "output")
        linear = bp < 1000.0
        alpha = float(np.median(splitter_out[linear] / src[linear]))
        fit = fit_piecewise_linear(src * alpha, counter_in)
        measured_by_exponent[exponent] = fit.saturation_point
        lines.append(
            f"{exponent:>6.1f} {shares.max() * counter_p:>10.2f} "
            f"{uniform_sp / 1e6:>11.1f}M {share_aware_sp / 1e6:>14.1f}M "
            f"{fit.saturation_point / 1e6:>11.1f}M"
        )

    benchmark(fit_piecewise_linear, src * alpha, counter_in)
    lines += [
        "",
        "Uniform Eq. 9 is accurate for balanced keys; under skew the",
        "measured SP falls toward the share-aware prediction, the hot",
        "instance saturating first (paper Section IV-B2b).",
    ]
    report("ablation_skew", lines)

    # Balanced keys: the uniform model matches.  Heavy skew: the
    # component saturates measurably earlier than the uniform model.
    assert measured_by_exponent[0.0] > 0.9 * uniform_sp
    assert measured_by_exponent[1.4] < 0.85 * uniform_sp
