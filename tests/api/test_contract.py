"""API error contract: every error path returns JSON with an "error"
key and its documented status code (docs/api.md, "Errors")."""

from __future__ import annotations

import pytest

from repro.api.app import CaladriusApp
from repro.config import load_config
from repro.faults.plan import FaultEvent, FaultPlan
from repro.heron.simulation import HeronSimulation, SimulationConfig
from repro.heron.tracker import TopologyTracker
from repro.heron.wordcount import WordCountParams, build_word_count
from repro.timeseries.store import MetricsStore

M = 1e6

CONFIG = {
    "traffic_models": ["stats-summary"],
    "performance_models": ["throughput-prediction"],
}


@pytest.fixture()
def app(deployed_wordcount):
    _, _, _, store, tracker = deployed_wordcount
    application = CaladriusApp(load_config(CONFIG), tracker, store)
    yield application
    application.shutdown()


def _degraded_app(degraded_threshold=0.05):
    """A deployment whose metrics are badly gap-ridden (spout crashes)."""
    params = WordCountParams(splitter_parallelism=2, counter_parallelism=4)
    topology, packing, logic = build_word_count(params)
    store = MetricsStore()
    plan = FaultPlan(events=tuple(
        FaultEvent(at_seconds=at, kind="crash", component="sentence-spout",
                   index=0, duration_seconds=60)
        for at in (120, 240, 360)
    ))
    sim = HeronSimulation(
        topology, packing, logic, store, SimulationConfig(seed=5),
        faults=plan,
    )
    sim.set_source_rate("sentence-spout", 16 * M)
    sim.run(8)
    tracker = TopologyTracker()
    tracker.register(topology, packing)
    config = load_config(
        {**CONFIG, "degraded_threshold": degraded_threshold}
    )
    return CaladriusApp(config, tracker, store)


ERROR_CASES = [
    # (method, path, query, body, expected_status)
    ("GET", "/topology/missing/logical", None, None, 404),
    ("GET", "/topology/word-count/nonsense", None, None, 404),
    ("GET", "/nope", None, None, 404),
    ("GET", "/model/result/deadbeef", None, None, 404),
    ("POST", "/model/traffic/heron/word-count", None, None, 405),
    ("GET", "/model/topology/heron/word-count", None, None, 405),
    ("GET", "/model/traffic/heron/missing", None, None, 404),
    ("POST", "/model/topology/heron/missing",
     None, {"source_rate": 1 * M}, 404),
    ("GET", "/model/traffic/heron/word-count",
     {"horizon_minutes": "soon"}, None, 400),
    ("GET", "/model/traffic/heron/word-count",
     {"horizon_minutes": "0"}, None, 400),
    ("GET", "/model/traffic/heron/word-count",
     {"model": "crystal-ball"}, None, 400),
    ("POST", "/model/topology/heron/word-count",
     None, {"source_rate": "lots"}, 400),
    ("POST", "/model/topology/heron/word-count",
     None, {"source_rate": 1 * M, "parallelisms": {"splitter": "two"}},
     400),
    ("POST", "/model/topology/heron/word-count",
     None, {"source_rate": 1 * M, "parallelisms": {"parser": 2}}, 400),
    ("POST", "/model/topology/heron/word-count",
     None, {"source_rate": -5.0}, 400),
]


class TestErrorContract:
    @pytest.mark.parametrize(
        "method,path,query,body,expected",
        ERROR_CASES,
        ids=[f"{m} {p} -> {s}" for m, p, _, _, s in ERROR_CASES],
    )
    def test_error_shape_and_status(
        self, app, method, path, query, body, expected
    ):
        status, payload = app.handle(method, path, query=query, body=body)
        assert status == expected
        assert isinstance(payload, dict)
        assert isinstance(payload.get("error"), str)
        assert payload["error"]

    def test_success_paths_have_no_error_key(self, app):
        for method, path, body in [
            ("GET", "/topologies", None),
            ("GET", "/topology/word-count/logical", None),
            ("POST", "/model/topology/heron/word-count",
             {"source_rate": 8 * M}),
        ]:
            status, payload = app.handle(method, path, body=body)
            assert status == 200
            assert "error" not in payload


class TestDegradedMetrics503:
    def test_traffic_endpoint_returns_structured_503(self):
        app = _degraded_app()
        try:
            status, payload = app.handle(
                "GET", "/model/traffic/heron/word-count"
            )
        finally:
            app.shutdown()
        assert status == 503
        assert "degraded" in payload["error"]
        health = payload["metrics_health"]
        assert health["status"] == "degraded"
        assert health["degraded_minutes"] > 0
        assert 0 < health["gap_fraction"] <= 1

    def test_performance_endpoint_returns_structured_503(self):
        app = _degraded_app()
        try:
            status, payload = app.handle(
                "POST", "/model/topology/heron/word-count",
                body={"source_rate": 8 * M},
            )
        finally:
            app.shutdown()
        assert status == 503
        assert payload["metrics_health"]["status"] == "degraded"

    def test_threshold_is_configurable(self):
        # A permissive threshold lets the same degraded store serve.
        app = _degraded_app(degraded_threshold=0.9)
        try:
            status, payload = app.handle(
                "POST", "/model/topology/heron/word-count",
                body={"source_rate": 8 * M},
            )
        finally:
            app.shutdown()
        assert status == 200
        assert "error" not in payload

    def test_empty_store_is_unavailable(self):
        params = WordCountParams()
        topology, packing, _ = build_word_count(params)
        tracker = TopologyTracker()
        tracker.register(topology, packing)
        app = CaladriusApp(load_config(CONFIG), tracker, MetricsStore())
        try:
            status, payload = app.handle(
                "GET", "/model/traffic/heron/word-count"
            )
        finally:
            app.shutdown()
        assert status == 503
        assert payload["metrics_health"]["status"] == "unavailable"
