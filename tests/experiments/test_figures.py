"""Shape assertions for the paper's figure reproductions (quick mode).

Full-scale runs live in ``benchmarks/``; these tests run the same
harness in quick mode and assert the properties the paper's figures
exhibit: piecewise-linear curves, bimodal backpressure, Eq. 9 scaling,
low prediction errors and error accumulation along the chain.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import figures

M = 1e6


@pytest.fixture(scope="module")
def instance_sweep():
    return figures.single_instance_sweep(quick=True)


@pytest.fixture(scope="module")
def fig07(splitter3):
    return figures.fig07_component_model(quick=True, sweep3=splitter3)


@pytest.fixture(scope="module")
def splitter3():
    return figures.splitter_sweep(3, quick=True)


class TestFig04:
    def test_saturation_point_near_design_value(self, instance_sweep):
        result = figures.fig04_single_instance(True, sweep=instance_sweep)
        assert result["measured_sp_tpm"] == pytest.approx(11 * M, rel=0.05)

    def test_input_linear_then_flat(self, instance_sweep):
        result = figures.fig04_single_instance(True, sweep=instance_sweep)
        series = result["input"]
        below = series["rate"] < 10 * M
        above = series["rate"] > 12 * M
        # Linear: input tracks source below SP.
        assert np.allclose(
            series["mean"][below], series["rate"][below], rtol=0.05
        )
        # Flat: input pinned near 11M above SP.
        assert np.allclose(series["mean"][above], 11 * M, rtol=0.05)

    def test_output_is_alpha_times_input(self, instance_sweep):
        result = figures.fig04_single_instance(True, sweep=instance_sweep)
        assert result["io_alpha"] == pytest.approx(7.635, rel=0.01)


class TestFig05:
    def test_ratio_within_paper_band_width(self, instance_sweep):
        result = figures.fig05_io_ratio(True, sweep=instance_sweep)
        # Paper: 7.63..7.64.  Same centre, comparably tight.
        assert result["ratio_min"] > 7.60
        assert result["ratio_max"] < 7.67


class TestFig06:
    def test_bimodal_backpressure(self, instance_sweep):
        result = figures.fig06_backpressure(True, sweep=instance_sweep)
        assert result["mean_below_sp_ms"] == pytest.approx(0.0, abs=100.0)
        assert result["mean_above_sp_ms"] > 40_000.0


class TestFig07:
    def test_component_sp_is_p_times_instance_sp(self, fig07):
        assert fig07["component_sp_tpm"] == pytest.approx(33 * M, rel=0.07)

    def test_eq9_predictions_scale_by_gamma(self, fig07):
        p2 = fig07["predictions"][2]
        p4 = fig07["predictions"][4]
        assert p2["input_inflection_tpm"] == pytest.approx(
            fig07["component_sp_tpm"] * 2 / 3, rel=1e-9
        )
        assert p4["output_st_tpm"] == pytest.approx(
            2 * p2["output_st_tpm"], rel=1e-9
        )

    def test_io_ratio_consistent_with_fig05(self, fig07):
        assert fig07["io_ratio"] == pytest.approx(7.635, rel=0.01)


class TestFig08:
    def test_st_errors_in_paper_band(self, fig07, splitter3):
        result = figures.fig08_component_validation(True, fig07=fig07)
        for p, entry in result["per_parallelism"].items():
            # Paper: 2.9% (p=2) and 2.5% (p=4).  The simulator is cleaner
            # than a shared production cluster, so <= 5% is the bound.
            assert entry["st_error"] < 0.05, (p, entry)


class TestFig09:
    def test_counter_alpha_is_one(self):
        result = figures.fig09_counter_model(quick=True)
        assert result["fit"].alpha == pytest.approx(1.0, rel=0.03)

    def test_counter_sp_near_design_value(self):
        result = figures.fig09_counter_model(quick=True)
        # Counter p=3: 3 x 70M = 210M words/minute.
        assert result["p3_input_sp_tpm"] == pytest.approx(210 * M, rel=0.10)

    def test_p4_prediction_scales(self):
        result = figures.fig09_counter_model(quick=True)
        assert result["prediction_p4"]["input_sp_tpm"] == pytest.approx(
            result["p3_input_sp_tpm"] * 4 / 3, rel=1e-9
        )


class TestFig10:
    def test_chained_prediction_error_low(self):
        result = figures.fig10_critical_path(quick=True)
        # Paper: 2.8%.
        assert result["error"] < 0.06

    def test_prediction_plateau_matches_splitter_bound(self):
        result = figures.fig10_critical_path(quick=True)
        # Splitter p=2 is the bottleneck: ST = 2 x 11M x 7.635.
        assert result["predicted_st_tpm"] == pytest.approx(
            2 * 11 * M * 7.635, rel=0.08
        )


class TestFig11And12:
    def test_cpu_psi_positive_and_base_small(self, splitter3):
        result = figures.fig11_cpu_model(quick=True, sweep3=splitter3)
        model = result["cpu_model"]
        assert model.psi > 0
        assert model.base_cores < 0.2

    def test_cpu_validation_errors_in_paper_band(self, splitter3):
        fig11 = figures.fig11_cpu_model(quick=True, sweep3=splitter3)
        result = figures.fig12_cpu_validation(quick=True, fig11=fig11)
        for p, entry in result["per_parallelism"].items():
            # Paper: 4.8% and 3.0%.
            assert entry["error"] < 0.06, (p, entry)

    def test_saturated_cpu_scales_with_parallelism(self, splitter3):
        fig11 = figures.fig11_cpu_model(quick=True, sweep3=splitter3)
        result = figures.fig12_cpu_validation(quick=True, fig11=fig11)
        p2 = result["per_parallelism"][2]["observed_cpu_cores"]
        p4 = result["per_parallelism"][4]["observed_cpu_cores"]
        assert p4 == pytest.approx(2 * p2, rel=0.05)
