"""The guided scaler calibrates once per observation window.

Candidate evaluation fans out through the plan-sweep kernel against the
memoized artifact — however many plans `_best_candidate` scores, the
metrics store is read exactly once per window.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.sweep.artifact as artifact_module
from repro.autoscaler import ModelGuidedScaler, SimulatedCluster
from repro.heron.simulation import SimulationConfig
from repro.heron.wordcount import WordCountParams

M = 1e6
DEMAND = 40 * M
ALPHA = 7.635
SLO = 0.95 * ALPHA * DEMAND


def test_one_calibration_per_sizing_pass(monkeypatch):
    cluster = SimulatedCluster(
        word_count_params=WordCountParams(
            splitter_parallelism=2, counter_parallelism=2
        ),
        config=SimulationConfig(seed=3),
    )
    for rate in np.arange(8 * M, DEMAND + 1, 8 * M):
        cluster.set_source_rate("sentence-spout", float(rate))
        cluster.run(2)

    calls = {"n": 0}
    original = artifact_module.calibrate_topology

    def counting(*args, **kwargs):
        calls["n"] += 1
        return original(*args, **kwargs)

    monkeypatch.setattr(artifact_module, "calibrate_topology", counting)
    scaler = ModelGuidedScaler(cluster, slo_output_tpm=SLO, observe_minutes=3)
    trace = scaler.run(source_tpm=DEMAND)

    # One sizing pass scored the proposal plus its whole neighborhood,
    # yet the window was calibrated exactly once.
    assert calls["n"] == 1
    assert len(trace.rounds) == 2


def test_repeat_artifact_requests_reuse_the_window(monkeypatch):
    cluster = SimulatedCluster(
        word_count_params=WordCountParams(
            splitter_parallelism=2, counter_parallelism=2
        ),
        config=SimulationConfig(seed=4),
    )
    cluster.set_source_rate("sentence-spout", 20 * M)
    cluster.run(3)
    cluster.set_source_rate("sentence-spout", 35 * M)
    cluster.run(4)

    scaler = ModelGuidedScaler(cluster, slo_output_tpm=SLO, observe_minutes=3)
    first = scaler._engine.artifact("word-count", since_seconds=0)
    second = scaler._engine.artifact("word-count", since_seconds=0)
    assert first is second
    # A different window is a different cache entry, not a stale reuse.
    other = scaler._engine.artifact("word-count", since_seconds=60)
    assert other is not first
    assert other.since_seconds == 60
