"""Reproductions of the paper's evaluation figures (Section V).

Each function regenerates one figure's data on the simulated cluster and
returns a dictionary holding the measured series, the model predictions
and headline numbers comparable with the paper's.  The ``PAPER`` mapping
records the values the paper reports, so benchmark output can print
paper-vs-measured side by side.

Absolute rates depend on the simulator's calibrated capacities (chosen
to land near the paper's: Splitter instance SP ≈ 11 M tuples/min,
Counter instance ≈ 70 M tuples/min every minute); what must reproduce is
the *shape* and the prediction *errors*, which the tests assert.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.calibration import fit_piecewise_linear
from repro.core.cpu_model import fit_cpu_model
from repro.experiments.sweeps import SweepResult, run_sweep
from repro.heron.wordcount import WordCountParams

__all__ = [
    "PAPER",
    "fig04_single_instance",
    "fig05_io_ratio",
    "fig06_backpressure",
    "fig07_component_model",
    "fig08_component_validation",
    "fig09_counter_model",
    "fig10_critical_path",
    "fig11_cpu_model",
    "fig12_cpu_validation",
]

M = 1e6

#: Values the paper reports, for side-by-side comparison.
PAPER = {
    "fig04": {"instance_sp_tpm": 11 * M},
    "fig05": {"io_ratio_low": 7.63, "io_ratio_high": 7.64},
    "fig06": {"bp_below_ms": 0.0, "bp_above_ms": 60_000.0},
    "fig07": {
        "component_sp_tpm": 30 * M,
        "io_ratio": 7.638,
        "p2_input_inflection_tpm": 18 * M,
        "p2_output_st_tpm": 140 * M,
        "p4_input_inflection_tpm": 36 * M,
        "p4_output_st_tpm": 280 * M,
    },
    "fig08": {"p2_st_error": 0.029, "p4_st_error": 0.025},
    "fig09": {"p3_input_sp_tpm": 210 * M},
    "fig10": {"error": 0.028},
    "fig12": {"p2_error": 0.048, "p4_error": 0.030},
}


def _grid(quick: bool, start: float, stop: float, step: float) -> np.ndarray:
    rates = np.arange(start, stop + step / 2, step)
    if quick:
        rates = rates[::3] if rates.size > 6 else rates
    return rates


def _runs(quick: bool, full: int) -> int:
    return 2 if quick else full


# ----------------------------------------------------------------------
# Fig. 4-6: single instance
# ----------------------------------------------------------------------
def single_instance_sweep(quick: bool = False, seed: int = 4) -> SweepResult:
    """The Fig. 4 experiment: Splitter p=1, Counter p=3, spout p=8.

    Source rates 1..20 M tuples/min in 1 M steps, repeated (10 times in
    the paper).
    """
    params = WordCountParams(splitter_parallelism=1, counter_parallelism=3)
    rates = _grid(quick, 1 * M, 20 * M, 1 * M)
    return run_sweep(params, rates, runs=_runs(quick, 10), seed=seed)


def fig04_single_instance(
    quick: bool = False, sweep: SweepResult | None = None
) -> dict[str, object]:
    """Fig. 4: instance input/output throughput vs source throughput."""
    sweep = sweep or single_instance_sweep(quick)
    inputs = sweep.series("splitter", "input")
    outputs = sweep.series("splitter", "output")
    x, y_in = sweep.observations("splitter", "input")
    fit_in = fit_piecewise_linear(x, y_in)
    x, y_out = sweep.observations("splitter", "output")
    fit_out = fit_piecewise_linear(x, y_out)
    return {
        "input": inputs,
        "output": outputs,
        "measured_sp_tpm": fit_in.saturation_point,
        "measured_st_tpm": fit_out.saturation_throughput,
        "io_alpha": fit_out.alpha,
        "paper": PAPER["fig04"],
        "sweep": sweep,
    }


def fig05_io_ratio(
    quick: bool = False, sweep: SweepResult | None = None
) -> dict[str, object]:
    """Fig. 5: instance output/input ratio vs source throughput."""
    sweep = sweep or single_instance_sweep(quick)
    rates = sweep.rates()
    ratios = []
    for rate in rates:
        pts = [p for p in sweep.points if p.source_tpm == rate]
        total_out = sum(p.component_output["splitter"] for p in pts)
        total_in = sum(p.component_input["splitter"] for p in pts)
        # Ratio of totals, not mean of per-minute ratios: queueing across
        # minute boundaries makes single-minute ratios noisy, while the
        # paper's long steady-state windows average that out.
        ratios.append(total_out / total_in if total_in > 0 else math.nan)
    ratios = np.asarray(ratios)
    return {
        "rate": rates,
        "ratio": ratios,
        "ratio_min": float(ratios.min()),
        "ratio_max": float(ratios.max()),
        "paper": PAPER["fig05"],
        "sweep": sweep,
    }


def fig06_backpressure(
    quick: bool = False, sweep: SweepResult | None = None
) -> dict[str, object]:
    """Fig. 6: backpressure time (ms/minute) vs source throughput."""
    sweep = sweep or single_instance_sweep(quick)
    series = sweep.series("splitter", "backpressure")
    x, y_in = sweep.observations("splitter", "input")
    sp = fit_piecewise_linear(x, y_in).saturation_point
    below = series["mean"][series["rate"] < sp * 0.95]
    above = series["mean"][series["rate"] > sp * 1.15]
    return {
        "rate": series["rate"],
        "backpressure_ms": series["mean"],
        "low": series["low"],
        "high": series["high"],
        "mean_below_sp_ms": float(below.mean()) if below.size else 0.0,
        "mean_above_sp_ms": float(above.mean()) if above.size else math.nan,
        "measured_sp_tpm": sp,
        "paper": PAPER["fig06"],
        "sweep": sweep,
    }


# ----------------------------------------------------------------------
# Fig. 7-8: Splitter component model
# ----------------------------------------------------------------------
def splitter_sweep(
    parallelism: int, quick: bool = False, seed: int = 7
) -> SweepResult:
    """A Splitter component sweep at one parallelism (Counter kept wide)."""
    params = WordCountParams(
        splitter_parallelism=parallelism, counter_parallelism=8
    )
    rates = _grid(quick, 2 * M, 68 * M, 6 * M)
    return run_sweep(params, rates, runs=_runs(quick, 5), seed=seed)


def fig07_component_model(
    quick: bool = False, sweep3: SweepResult | None = None
) -> dict[str, object]:
    """Fig. 7: Splitter p=3 measurements + p=2 / p=4 predictions (Eq. 9)."""
    sweep3 = sweep3 or splitter_sweep(3, quick)
    x, y_in = sweep3.observations("splitter", "input")
    _, y_out = sweep3.observations("splitter", "output")
    fit_in = fit_piecewise_linear(x, y_in)
    fit_out = fit_piecewise_linear(x, y_out)
    predictions = {}
    for p in (2, 4):
        gamma = p / 3.0
        predictions[p] = {
            "input_inflection_tpm": fit_in.saturation_point * gamma,
            "output_st_tpm": fit_out.saturation_throughput * gamma,
            "alpha": fit_out.alpha,
        }
    return {
        "input": sweep3.series("splitter", "input"),
        "output": sweep3.series("splitter", "output"),
        "fit_input": fit_in,
        "fit_output": fit_out,
        "io_ratio": fit_out.alpha,
        "component_sp_tpm": fit_in.saturation_point,
        "predictions": predictions,
        "paper": PAPER["fig07"],
        "sweep": sweep3,
    }


def fig08_component_validation(
    quick: bool = False,
    fig07: dict[str, object] | None = None,
    sweep2: SweepResult | None = None,
    sweep4: SweepResult | None = None,
) -> dict[str, object]:
    """Fig. 8: deploy Splitter p=2 and p=4; compare measured vs predicted ST."""
    fig07 = fig07 or fig07_component_model(quick)
    sweeps = {
        2: sweep2 or splitter_sweep(2, quick, seed=8),
        4: sweep4 or splitter_sweep(4, quick, seed=9),
    }
    results: dict[int, dict[str, float]] = {}
    for p, sweep in sweeps.items():
        x, y_out = sweep.observations("splitter", "output")
        fit = fit_piecewise_linear(x, y_out)
        predicted = fig07["predictions"][p]["output_st_tpm"]  # type: ignore[index]
        observed = fit.saturation_throughput
        results[p] = {
            "predicted_st_tpm": float(predicted),
            "observed_st_tpm": float(observed),
            "st_error": abs(predicted - observed) / observed,
        }
    return {
        "per_parallelism": results,
        "paper": PAPER["fig08"],
        "sweeps": sweeps,
        "fig07": fig07,
    }


# ----------------------------------------------------------------------
# Fig. 9: Counter component model (fields grouping)
# ----------------------------------------------------------------------
def counter_sweep(
    parallelism: int, quick: bool = False, seed: int = 11
) -> SweepResult:
    """A Counter sweep at one parallelism (Splitter kept wide)."""
    params = WordCountParams(
        splitter_parallelism=7, counter_parallelism=parallelism
    )
    rates = _grid(quick, 2 * M, 68 * M, 6 * M)
    return run_sweep(params, rates, runs=_runs(quick, 5), seed=seed)


def fig09_counter_model(
    quick: bool = False, sweep3: SweepResult | None = None
) -> dict[str, object]:
    """Fig. 9: Counter input throughput vs its offered (source) rate.

    The Counter's offered rate is the sentence rate amplified by the
    Splitter's alpha — recovered, as the paper does, from the linear
    region of the same experiment.
    """
    sweep3 = sweep3 or counter_sweep(3, quick)
    src, splitter_out = sweep3.observations("splitter", "output")
    _, counter_in = sweep3.observations("counter", "input")
    bp = np.array([p.backpressure_ms for p in sweep3.points])
    # Splitter alpha from backpressure-free observations: with the
    # topology throttled, the measured splitter output understates what
    # the configured source would offer, so saturated points must be
    # excluded when estimating the amplification.
    linear = bp < 1000.0
    if not np.any(linear):
        linear = src <= np.quantile(src, 0.25)
    alpha = float(np.median(splitter_out[linear] / src[linear]))
    offered = src * alpha
    fit = fit_piecewise_linear(offered, counter_in)
    prediction_p4 = {
        "input_sp_tpm": fit.saturation_point * (4.0 / 3.0),
        "alpha": fit.alpha,
    }
    order = np.argsort(offered)
    return {
        "offered_tpm": offered[order],
        "input_tpm": counter_in[order],
        "fit": fit,
        "p3_input_sp_tpm": fit.saturation_point,
        "prediction_p4": prediction_p4,
        "splitter_alpha": alpha,
        "paper": PAPER["fig09"],
        "sweep": sweep3,
    }


# ----------------------------------------------------------------------
# Fig. 10: critical-path / topology prediction
# ----------------------------------------------------------------------
def fig10_critical_path(
    quick: bool = False,
    fig07: dict[str, object] | None = None,
    fig09: dict[str, object] | None = None,
) -> dict[str, object]:
    """Fig. 10: chain the component models and validate on a deployment.

    Component models come from the earlier experiments (Splitter fit at
    p=3 from Fig. 7, Counter fit at p=3 from Fig. 9), are rescaled by
    Eq. 9 to the target parallelisms (Splitter 2, Counter 4), chained by
    Eq. 12, and validated against a real deployment of that topology.
    """
    fig07 = fig07 or fig07_component_model(quick)
    fig09 = fig09 or fig09_counter_model(quick)
    splitter_fit = fig07["fit_output"]
    counter_fit = fig09["fit"]
    splitter_p, counter_p = 2, 4
    splitter_sp = splitter_fit.saturation_point * (splitter_p / 3.0)
    splitter_alpha = splitter_fit.alpha
    counter_sp_words = counter_fit.saturation_point * (counter_p / 3.0)

    def predict_output(source_tpm: np.ndarray) -> np.ndarray:
        words = splitter_alpha * np.minimum(source_tpm, splitter_sp)
        return np.minimum(words, counter_sp_words)

    params = WordCountParams(
        splitter_parallelism=splitter_p, counter_parallelism=counter_p
    )
    rates = _grid(quick, 2 * M, 68 * M, 6 * M)
    sweep = run_sweep(params, rates, runs=_runs(quick, 5), seed=10)
    measured = sweep.series("counter", "input")
    predicted = predict_output(measured["rate"])
    # Error at saturation (the paper's headline 2.8%): compare the
    # plateau of the prediction with the measured plateau.
    x, y = sweep.observations("counter", "input")
    fit_measured = fit_piecewise_linear(x, y)
    predicted_st = float(predict_output(np.asarray([rates.max()]))[0])
    observed_st = fit_measured.saturation_throughput
    if not math.isfinite(observed_st):
        observed_st = float(measured["mean"][-1])
    error = abs(predicted_st - observed_st) / max(predicted_st, observed_st)
    return {
        "rate": measured["rate"],
        "measured_output_tpm": measured["mean"],
        "measured_low": measured["low"],
        "measured_high": measured["high"],
        "predicted_output_tpm": predicted,
        "predicted_st_tpm": predicted_st,
        "observed_st_tpm": observed_st,
        "error": error,
        "paper": PAPER["fig10"],
        "sweep": sweep,
    }


# ----------------------------------------------------------------------
# Fig. 11-12: CPU load
# ----------------------------------------------------------------------
def fig11_cpu_model(
    quick: bool = False, sweep3: SweepResult | None = None
) -> dict[str, object]:
    """Fig. 11: Splitter CPU load at p=3, with p=2 / p=4 predicted lines.

    The chained prediction of Section V-E: the throughput model gives
    per-instance input rates for a source rate; the fitted psi slope
    turns inputs into cores.
    """
    sweep3 = sweep3 or splitter_sweep(3, quick, seed=12)
    inst_in, inst_cpu = sweep3.instance_observations("splitter")
    cpu_model, cpu_fit = fit_cpu_model("splitter", inst_in, inst_cpu)
    x, y_in = sweep3.observations("splitter", "input")
    fit_in = fit_piecewise_linear(x, y_in)
    instance_sp = fit_in.saturation_point / 3.0

    def predict_component_cpu(p: int, source_tpm: np.ndarray) -> np.ndarray:
        per_instance = np.minimum(source_tpm / p, instance_sp)
        return p * (cpu_model.base_cores + cpu_model.psi * per_instance)

    rates = sweep3.series("splitter", "cpu")["rate"]
    return {
        "rate": rates,
        "cpu": sweep3.series("splitter", "cpu"),
        "cpu_model": cpu_model,
        "cpu_fit": cpu_fit,
        "instance_sp_tpm": instance_sp,
        "predictions": {
            p: predict_component_cpu(p, rates) for p in (2, 4)
        },
        "predict_fn": predict_component_cpu,
        "sweep": sweep3,
    }


def fig12_cpu_validation(
    quick: bool = False,
    fig11: dict[str, object] | None = None,
    sweep2: SweepResult | None = None,
    sweep4: SweepResult | None = None,
) -> dict[str, object]:
    """Fig. 12: measured vs predicted Splitter CPU at p=2 and p=4."""
    fig11 = fig11 or fig11_cpu_model(quick)
    predict = fig11["predict_fn"]
    sweeps = {
        2: sweep2 or splitter_sweep(2, quick, seed=13),
        4: sweep4 or splitter_sweep(4, quick, seed=14),
    }
    results: dict[int, dict[str, float]] = {}
    for p, sweep in sweeps.items():
        series = sweep.series("splitter", "cpu")
        predicted = predict(p, series["rate"])
        # Compare at saturation (the paper quotes the plateau values).
        top = series["rate"] >= series["rate"].max() * 0.7
        observed_sat = float(series["mean"][top].mean())
        predicted_sat = float(predicted[top].mean())
        results[p] = {
            "observed_cpu_cores": observed_sat,
            "predicted_cpu_cores": predicted_sat,
            "error": abs(predicted_sat - observed_sat)
            / max(observed_sat, predicted_sat),
        }
    return {
        "per_parallelism": results,
        "paper": PAPER["fig12"],
        "sweeps": sweeps,
        "fig11": fig11,
    }
