"""Regenerate the simulator golden-hash fixtures under ``tests/data``.

    PYTHONPATH=src python tests/data/regenerate_sim_goldens.py

The committed copies were produced by the **pre-refactor scalar engine**
(the one preserved as ``repro.heron.simulation_legacy``) immediately
before the struct-of-arrays core landed: they are the bit-identity
contract the vectorized engine is held to.  Regenerating them with a
changed engine and committing the result silently *redefines* that
contract — do it only for a deliberate, explained numerics change.

Fixtures written:

* ``golden_trace_<shape>_s<seed>.json`` — one per generated workload
  shape (diamond / fanin / deep_chain / multi_spout), the canonical
  4-minute trace plus its SHA-256 (see ``repro.workloads.trace``).
* ``golden_sim_configs.json`` — hashes for the configuration axes the
  default fixtures do not reach: sub-second ``tick_seconds``, finite
  ``stmgr_capacity_tps``, every fault kind, and combined cases.
* ``golden_matrix_cells_s7.json`` — per-cell simulate-phase hashes for
  the full 40-cell (shape × fault × traffic) scenario matrix.
"""

from __future__ import annotations

import json
from pathlib import Path

DATA_DIR = Path(__file__).resolve().parent

SHAPE_SEEDS = [
    ("diamond", 7),
    ("fanin", 11),
    ("deep_chain", 13),
    ("multi_spout", 23),
]

FAULT_KINDS = ["crash", "straggler", "stmgr_stall", "metric_dropout"]

# (label suffix, config_trace keyword arguments); applied to every shape.
CONFIG_AXES: list[tuple[str, dict]] = [
    ("tick_0.5", {"tick_seconds": 0.5}),
    ("stmgr_150k", {"stmgr_capacity_tps": 150_000.0}),
    *[(f"fault_{kind}", {"fault": kind}) for kind in FAULT_KINDS],
]

# Combined cases on one shape each: fault plans and sub-second ticks
# must also hold under the finite-stmgr queueing path.
COMBINED_CASES: list[tuple[str, int, str, dict]] = [
    (
        "diamond", 7, "tick_0.5_stmgr_150k",
        {"tick_seconds": 0.5, "stmgr_capacity_tps": 150_000.0},
    ),
    (
        "fanin", 11, "fault_crash_stmgr_150k",
        {"fault": "crash", "stmgr_capacity_tps": 150_000.0},
    ),
    (
        "deep_chain", 13, "fault_stmgr_stall_stmgr_150k",
        {"fault": "stmgr_stall", "stmgr_capacity_tps": 150_000.0},
    ),
]

MATRIX_SEED = 7
MATRIX_MINUTES = 9


def main() -> None:
    from repro.workloads import golden_trace_payload, trace_hash
    from repro.workloads.matrix import default_grid, simulate_cell
    from repro.workloads.trace import config_trace

    for shape, seed in SHAPE_SEEDS:
        payload = golden_trace_payload(shape, seed, minutes=4)
        path = DATA_DIR / f"golden_trace_{shape}_s{seed}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {path.name}: {payload['trace_hash']}")

    cases = []
    for shape, seed in SHAPE_SEEDS:
        for label, kwargs in CONFIG_AXES:
            cases.append((shape, seed, label, kwargs))
    cases.extend(COMBINED_CASES)
    configs = []
    for shape, seed, label, kwargs in cases:
        trace = config_trace(shape, seed, minutes=4, **kwargs)
        configs.append(
            {
                "id": f"{shape}_s{seed}_{label}",
                "shape": shape,
                "seed": seed,
                "minutes": 4,
                "kwargs": kwargs,
                "trace_hash": trace_hash(trace),
            }
        )
        print(f"config {configs[-1]['id']}: {configs[-1]['trace_hash']}")
    (DATA_DIR / "golden_sim_configs.json").write_text(
        json.dumps({"configs": configs}, indent=2, sort_keys=True) + "\n"
    )

    cells = {}
    for cell in default_grid():
        _, _, trace = simulate_cell(cell, MATRIX_SEED, MATRIX_MINUTES)
        cells[cell.id] = trace_hash(trace)
        print(f"cell {cell.id}: {cells[cell.id]}")
    (DATA_DIR / "golden_matrix_cells_s7.json").write_text(
        json.dumps(
            {
                "matrix_seed": MATRIX_SEED,
                "calibration_minutes": MATRIX_MINUTES,
                "cells": cells,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"wrote golden_matrix_cells_s7.json ({len(cells)} cells)")


if __name__ == "__main__":
    main()
