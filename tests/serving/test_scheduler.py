"""PriorityScheduler: concurrency bound, priority order, load shedding."""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ConfigError
from repro.serving.scheduler import (
    INTERACTIVE,
    PRECOMPUTE,
    AdmissionError,
    PriorityScheduler,
)


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


class TestExecution:
    def test_runs_and_returns(self):
        scheduler = PriorityScheduler(max_concurrent=2, max_queue=4)
        assert scheduler.run(lambda: 42) == 42
        assert scheduler.stats()["executed"] == 1

    def test_concurrency_is_bounded(self):
        scheduler = PriorityScheduler(max_concurrent=2, max_queue=16)
        running = []
        peak = []
        lock = threading.Lock()
        release = threading.Event()

        def work():
            with lock:
                running.append(1)
                peak.append(len(running))
            release.wait(5)
            with lock:
                running.pop()
            return True

        with ThreadPoolExecutor(max_workers=6) as pool:
            futures = [pool.submit(scheduler.run, work) for _ in range(6)]
            assert wait_until(lambda: len(running) == 2)
            time.sleep(0.05)  # give over-admission a chance to show up
            release.set()
            assert all(f.result(5) for f in futures)
        assert max(peak) <= 2

    def test_exceptions_release_the_slot(self):
        scheduler = PriorityScheduler(max_concurrent=1, max_queue=4)
        with pytest.raises(ValueError):
            scheduler.run(lambda: (_ for _ in ()).throw(ValueError("x")))
        assert scheduler.run(lambda: "ok") == "ok"

    def test_validation(self):
        with pytest.raises(ConfigError):
            PriorityScheduler(max_concurrent=0)
        with pytest.raises(ConfigError):
            PriorityScheduler(max_queue=0)


class TestPriority:
    def test_interactive_runs_before_precompute(self):
        scheduler = PriorityScheduler(max_concurrent=1, max_queue=8)
        order = []
        release = threading.Event()
        occupied = threading.Event()

        def blocker():
            occupied.set()
            release.wait(5)
            return "blocker"

        with ThreadPoolExecutor(max_workers=8) as pool:
            first = pool.submit(scheduler.run, blocker, INTERACTIVE)
            assert occupied.wait(5)
            # Queue a precompute, then an interactive, while the slot is
            # held; the interactive one must be admitted first.
            pre = pool.submit(
                scheduler.run, lambda: order.append("pre"), PRECOMPUTE
            )
            assert wait_until(lambda: scheduler.queue_depth() == 1)
            inter = pool.submit(
                scheduler.run, lambda: order.append("inter"), INTERACTIVE
            )
            assert wait_until(lambda: scheduler.queue_depth() == 2)
            release.set()
            first.result(5)
            pre.result(5)
            inter.result(5)
        assert order == ["inter", "pre"]


class TestAdmissionControl:
    def test_sheds_with_429_when_queue_full(self):
        scheduler = PriorityScheduler(max_concurrent=1, max_queue=1)
        release = threading.Event()
        occupied = threading.Event()

        def blocker():
            occupied.set()
            release.wait(5)

        with ThreadPoolExecutor(max_workers=4) as pool:
            running = pool.submit(scheduler.run, blocker)
            assert occupied.wait(5)
            queued = pool.submit(scheduler.run, lambda: "queued")
            assert wait_until(lambda: scheduler.queue_depth() == 1)
            with pytest.raises(AdmissionError) as excinfo:
                scheduler.run(lambda: "shed")
            release.set()
            running.result(5)
            assert queued.result(5) == "queued"
        assert excinfo.value.status == 429
        assert excinfo.value.payload["retry_after"] >= 1
        assert excinfo.value.payload["queue_depth"] == 1
        assert scheduler.stats()["shed"] == 1

    def test_deadline_expiry_sheds(self):
        scheduler = PriorityScheduler(max_concurrent=1, max_queue=4)
        release = threading.Event()
        occupied = threading.Event()

        def blocker():
            occupied.set()
            release.wait(5)

        with ThreadPoolExecutor(max_workers=2) as pool:
            running = pool.submit(scheduler.run, blocker)
            assert occupied.wait(5)
            # A request whose deadline passes while still queued must be
            # shed, not served late.
            with pytest.raises(AdmissionError):
                scheduler.run(lambda: "late", INTERACTIVE, timeout=0.1)
            release.set()
            running.result(5)
        assert scheduler.queue_depth() == 0
        assert scheduler.stats()["shed"] == 1

    def test_retry_after_scales_with_backlog(self):
        scheduler = PriorityScheduler(max_concurrent=1, max_queue=100)
        with scheduler._cond:
            scheduler._avg_seconds = 2.0
            scheduler._waiting = [(0, i) for i in range(10)]
            estimate = scheduler._retry_after_locked()
        assert estimate >= 20
