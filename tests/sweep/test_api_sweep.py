"""The POST /model/plan_sweep endpoint, served through the serving layer."""

from __future__ import annotations

import pytest

from repro.api.app import CaladriusApp
from repro.config import load_config

from tests.sweep.conftest import M, plan_grid

RATE = 30 * M
PATH = "/model/plan_sweep/heron/word-count"


@pytest.fixture()
def app(deployed_wordcount):
    _, _, _, store, tracker = deployed_wordcount
    application = CaladriusApp(load_config({}), tracker, store)
    yield application
    application.shutdown()


def sweep_body(plans=None, rate=RATE):
    return {"source_rate": rate, "plans": plans or plan_grid(4, 4)}


class TestPlanSweepEndpoint:
    def test_ranks_plans(self, app):
        status, payload = app.handle("POST", PATH, body=sweep_body())
        assert status == 200
        assert payload["model"] == "plan-sweep"
        assert payload["plan_count"] == 16
        ranks = [e["rank"] for e in payload["ranked"]]
        assert ranks == list(range(1, 17))

    def test_top_k(self, app):
        status, payload = app.handle(
            "POST", PATH, query={"top_k": "2"}, body=sweep_body()
        )
        assert status == 200
        assert len(payload["ranked"]) == 2

    def test_served_through_result_cache(self, app):
        """The second identical sweep is a serving-layer cache hit."""
        body = sweep_body()
        status, first = app.handle("POST", PATH, body=body)
        assert status == 200
        _, before = app.handle("GET", "/serving/stats")
        status, second = app.handle("POST", PATH, body=body)
        assert status == 200
        _, after = app.handle("GET", "/serving/stats")
        assert first == second
        assert after["hits"] == before["hits"] + 1

    def test_different_plans_miss_the_cache(self, app):
        app.handle("POST", PATH, body=sweep_body())
        _, before = app.handle("GET", "/serving/stats")
        status, _ = app.handle(
            "POST", PATH, body=sweep_body(plans=[{"splitter": 7}])
        )
        assert status == 200
        _, after = app.handle("GET", "/serving/stats")
        assert after["hits"] == before["hits"]

    def test_expired_deadline_is_504(self, app):
        import time

        time.sleep(0.01)  # ensure a microscopic budget is already gone
        status, payload = app.handle(
            "POST", PATH, body=sweep_body(),
            headers={"X-Request-Deadline": "0.000001"},
        )
        assert status == 504
        assert payload["deadline"] == "exceeded"

    def test_get_is_405(self, app):
        status, _ = app.handle("GET", PATH)
        assert status == 405

    def test_unknown_topology_404(self, app):
        status, _ = app.handle(
            "POST", "/model/plan_sweep/heron/missing", body=sweep_body()
        )
        assert status == 404

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"source_rate": RATE},
            {"source_rate": "lots", "plans": [{}]},
            {"source_rate": True, "plans": [{}]},
            {"source_rate": RATE, "plans": []},
            {"source_rate": RATE, "plans": "all"},
            {"source_rate": RATE, "plans": [["splitter", 2]]},
            {"source_rate": RATE, "plans": [{"splitter": "two"}]},
            {"source_rate": RATE, "plans": [{"splitter": True}]},
        ],
    )
    def test_malformed_bodies_are_400(self, app, body):
        status, payload = app.handle("POST", PATH, body=body)
        assert status == 400
        assert "error" in payload

    def test_plan_limit_enforced(self, app):
        plans = [{"splitter": 1 + (i % 8)} for i in range(1025)]
        status, payload = app.handle(
            "POST", PATH, body={"source_rate": RATE, "plans": plans}
        )
        assert status == 400
        assert "1024" in payload["error"]

    def test_unknown_component_is_400(self, app):
        status, _ = app.handle(
            "POST", PATH, body=sweep_body(plans=[{"nope": 2}])
        )
        assert status == 400

    def test_client_helper_round_trip(self, deployed_wordcount):
        from repro.api.client import CaladriusClient
        from repro.api.server import CaladriusServer

        _, _, _, store, tracker = deployed_wordcount
        application = CaladriusApp(load_config({}), tracker, store)
        with CaladriusServer(application, port=0) as server:
            client = CaladriusClient(server.host, server.port, retries=0)
            client.wait_ready(timeout=10)
            payload = client.plan_sweep(
                "word-count", RATE,
                [{"splitter": 4, "counter": 4}, {"splitter": 2}],
                top_k=1,
            )
            assert payload["plan_count"] == 2
            assert len(payload["ranked"]) == 1
        application.shutdown()
