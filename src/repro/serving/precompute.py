"""Warm-cache precomputation: recompute popular queries on invalidation.

Phoebe-style anticipation for the serving layer: the queries a service
answered recently are the queries it will be asked again, so when a
metrics write or plan change invalidates their cached answers, the
popular ones are queued for recomputation at PRECOMPUTE priority.  The
interactive path then keeps hitting a warm cache even while the inputs
churn, instead of paying a cold model evaluation per invalidation.

The tracker is deliberately passive: :meth:`record` and
:meth:`invalidate` are cheap bookkeeping on the request/write paths, and
the actual recomputation happens when the serving layer drains
:meth:`take_pending` — synchronously in tests, from a background thread
in a live server.
"""

from __future__ import annotations

import threading

from repro.errors import ConfigError
from repro.serving.fingerprint import RequestDescriptor

__all__ = ["WarmCachePrecomputer"]


class _Popularity:
    __slots__ = ("count", "last_seq")

    def __init__(self) -> None:
        self.count = 0
        self.last_seq = 0


class WarmCachePrecomputer:
    """Track query popularity; queue the hot ones when inputs change.

    Parameters
    ----------
    top_k:
        How many of a topology's most popular descriptors to recompute
        per invalidation.
    max_tracked:
        Bound on the popularity table; the least-recently-seen
        descriptors are pruned past it (default ``8 * top_k``).
    """

    def __init__(self, top_k: int = 8, max_tracked: int | None = None) -> None:
        if top_k < 1:
            raise ConfigError("precompute top_k must be >= 1")
        self.top_k = top_k
        self.max_tracked = max_tracked if max_tracked is not None else 8 * top_k
        if self.max_tracked < top_k:
            raise ConfigError("max_tracked must be >= top_k")
        self._lock = threading.Lock()
        self._popular: dict[RequestDescriptor, _Popularity] = {}
        self._pending: dict[RequestDescriptor, None] = {}  # ordered set
        self._seq = 0
        self.recorded = 0
        self.queued = 0

    # ------------------------------------------------------------------
    # Request-path bookkeeping
    # ------------------------------------------------------------------
    def record(self, descriptor: RequestDescriptor) -> None:
        """Note one served request (any outcome source: cold or cached)."""
        with self._lock:
            self._seq += 1
            entry = self._popular.get(descriptor)
            if entry is None:
                entry = self._popular[descriptor] = _Popularity()
            entry.count += 1
            entry.last_seq = self._seq
            self.recorded += 1
            if len(self._popular) > self.max_tracked:
                coldest = min(
                    self._popular,
                    key=lambda d: (self._popular[d].count, self._popular[d].last_seq),
                )
                del self._popular[coldest]

    # ------------------------------------------------------------------
    # Invalidation-path bookkeeping
    # ------------------------------------------------------------------
    def invalidate(self, topology: str | None) -> int:
        """Queue the top-k popular descriptors for one topology (or all)."""
        with self._lock:
            matching = [
                d
                for d in self._popular
                if topology is None or d.topology == topology
            ]
            matching.sort(
                key=lambda d: (-self._popular[d].count, -self._popular[d].last_seq)
            )
            queued = 0
            for descriptor in matching[: self.top_k]:
                if descriptor not in self._pending:
                    self._pending[descriptor] = None
                    queued += 1
            self.queued += queued
            return queued

    def take_pending(self) -> list[RequestDescriptor]:
        """Drain the pending set (oldest first) for recomputation."""
        with self._lock:
            pending = list(self._pending)
            self._pending.clear()
            return pending

    def pending_count(self) -> int:
        """Descriptors queued but not yet recomputed."""
        with self._lock:
            return len(self._pending)

    def stats(self) -> dict[str, int]:
        """Counters (for ``/serving/stats``)."""
        with self._lock:
            return {
                "tracked": len(self._popular),
                "pending": len(self._pending),
                "recorded": self.recorded,
                "queued": self.queued,
            }
