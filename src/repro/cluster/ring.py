"""Consistent-hash ring mapping topology ids onto shards.

The ring places ``virtual_nodes`` points per shard on a 64-bit hash
circle (SHA-256 based, so the layout is identical in every process
regardless of ``PYTHONHASHSEED``) and routes a topology id to the shard
owning the first point at or after the id's hash.  Consistent hashing
gives the rebalance property the cluster tier relies on: when a shard
is added, a topology either keeps its owner or moves *to the new
shard*; when a shard is removed, only its own topologies move.  The
router and the shard-aware client both build rings from the same shard
ids through this module, so they always agree on placement.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left

__all__ = ["HashRing", "DEFAULT_VIRTUAL_NODES"]

DEFAULT_VIRTUAL_NODES = 64


def _point(label: str) -> int:
    """A deterministic 64-bit position on the circle."""
    digest = hashlib.sha256(label.encode("utf8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Immutable consistent-hash ring over integer shard ids.

    Parameters
    ----------
    shard_ids:
        The member shards.  Ids are stable names — resizing a cluster
        from N to M shards keeps ids ``0..min(N, M)-1`` and therefore
        keeps their ring points, which is what bounds key movement.
    virtual_nodes:
        Points per shard; more points smooth the ownership split.
    """

    def __init__(
        self,
        shard_ids: list[int] | tuple[int, ...],
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
    ) -> None:
        if not shard_ids:
            raise ValueError("a hash ring needs at least one shard")
        if len(set(shard_ids)) != len(shard_ids):
            raise ValueError(f"duplicate shard ids: {sorted(shard_ids)}")
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.shard_ids = tuple(sorted(shard_ids))
        self.virtual_nodes = virtual_nodes
        points: list[tuple[int, int]] = []
        for shard in self.shard_ids:
            for vnode in range(virtual_nodes):
                points.append((_point(f"shard-{shard}:vn-{vnode}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(self, key: str) -> int:
        """The shard owning ``key`` (a topology id)."""
        position = bisect_left(self._points, _point(f"key:{key}"))
        if position == len(self._points):
            position = 0  # wrap around the circle
        return self._owners[position]

    def ownership(self, keys: list[str]) -> dict[int, list[str]]:
        """Group ``keys`` by owning shard (diagnostics, tests)."""
        owned: dict[int, list[str]] = {shard: [] for shard in self.shard_ids}
        for key in keys:
            owned[self.shard_for(key)].append(key)
        return owned

    def __len__(self) -> int:
        return len(self.shard_ids)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashRing):
            return NotImplemented
        return (
            self.shard_ids == other.shard_ids
            and self.virtual_nodes == other.virtual_nodes
        )

    def __hash__(self) -> int:
        return hash((self.shard_ids, self.virtual_nodes))

    def __repr__(self) -> str:
        return (
            f"HashRing(shards={list(self.shard_ids)}, "
            f"virtual_nodes={self.virtual_nodes})"
        )
