"""Fixtures for the plan-sweep engine tests."""

from __future__ import annotations

import pytest

from repro.sweep import PlanSweepEngine

M = 1e6


@pytest.fixture()
def sweep_engine(deployed_wordcount):
    """A fresh engine over the shared calibrated Word Count deployment."""
    _, _, _, store, tracker = deployed_wordcount
    return PlanSweepEngine(tracker, store)


@pytest.fixture()
def wordcount_artifact(sweep_engine):
    return sweep_engine.artifact("word-count")


def plan_grid(max_splitter: int = 8, max_counter: int = 8):
    """The 64-plan splitter x counter grid used across the battery."""
    return [
        {"splitter": s, "counter": c}
        for s in range(1, max_splitter + 1)
        for c in range(1, max_counter + 1)
    ]
