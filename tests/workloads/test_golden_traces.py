"""Golden-trace regression fixtures for generated topologies.

Each fixture under ``tests/data/`` pins the canonical simulation trace
of one (shape, seed) identity.  A hash mismatch means the simulator's
numerics changed — deliberately or not — and the fixture must be
regenerated with an explanation, not silently updated:

    PYTHONPATH=src python -c "
    import json
    from repro.workloads import golden_trace_payload
    p = golden_trace_payload('diamond', 7, minutes=4)
    json.dump(p, open('tests/data/golden_trace_diamond_s7.json', 'w'),
              indent=2, sort_keys=True)"
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.workloads import golden_trace_payload, trace_hash, workload_trace
from repro.workloads.generator import generate_workload

DATA_DIR = Path(__file__).resolve().parent.parent / "data"

FIXTURES = [
    ("diamond", 7),
    ("fanin", 11),
    ("deep_chain", 13),
    ("multi_spout", 23),
]


def load_fixture(shape: str, seed: int) -> dict:
    path = DATA_DIR / f"golden_trace_{shape}_s{seed}.json"
    return json.loads(path.read_text())


class TestGoldenTraces:
    @pytest.mark.parametrize("shape,seed", FIXTURES)
    def test_replay_matches_committed_hash(self, shape, seed):
        fixture = load_fixture(shape, seed)
        replay = golden_trace_payload(shape, seed, fixture["minutes"])
        assert replay["trace_hash"] == fixture["trace_hash"]

    @pytest.mark.parametrize("shape,seed", FIXTURES)
    def test_fixture_internally_consistent(self, shape, seed):
        """The stored hash matches the stored trace — no stale edits."""
        fixture = load_fixture(shape, seed)
        assert trace_hash(fixture["trace"]) == fixture["trace_hash"]
        assert fixture["shape"] == shape
        assert fixture["seed"] == seed

    def test_hash_sensitive_to_schedule(self):
        workload = generate_workload("diamond", 7)
        base = workload.base_rate_tpm
        first = workload_trace(workload, [0.6 * base] * 3, seed=7)
        second = workload_trace(workload, [0.7 * base] * 3, seed=7)
        assert trace_hash(first) != trace_hash(second)

    def test_hash_sensitive_to_sim_seed(self):
        workload = generate_workload("fanin", 11)
        schedule = [0.6 * workload.base_rate_tpm] * 3
        assert trace_hash(
            workload_trace(workload, schedule, seed=1)
        ) != trace_hash(workload_trace(workload, schedule, seed=2))
