"""Tests for the topology tracker and the revision-keyed graph cache."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.heron.tracker import GraphCache, TopologyTracker
from repro.heron.wordcount import WordCountParams, build_word_count


@pytest.fixture()
def tracked_setup():
    topology, packing, _ = build_word_count(
        WordCountParams(splitter_parallelism=2, counter_parallelism=2)
    )
    tracker = TopologyTracker()
    record = tracker.register(topology, packing)
    return tracker, topology, packing, record


class TestRegistration:
    def test_register_and_get(self, tracked_setup):
        tracker, topology, _, record = tracked_setup
        assert tracker.get("word-count") is record
        assert record.name == "word-count"

    def test_get_unknown_raises(self, tracked_setup):
        tracker, *_ = tracked_setup
        with pytest.raises(TopologyError, match="not registered"):
            tracker.get("missing")

    def test_names_sorted(self, tracked_setup):
        tracker, *_ = tracked_setup
        assert tracker.names() == ["word-count"]

    def test_register_mismatched_packing_rejected(self, tracked_setup):
        tracker, topology, _, _ = tracked_setup
        other_topology, other_packing, _ = build_word_count()
        from repro.heron.packing import PackingPlan

        bad = PackingPlan("other-name", other_packing.containers)
        with pytest.raises(TopologyError, match="belongs to"):
            tracker.register(topology, bad)

    def test_cluster_environ_scoping(self, tracked_setup):
        tracker, topology, packing, _ = tracked_setup
        tracker.register(topology, packing, cluster="prod", environ="live")
        assert tracker.get("word-count", "prod", "live")
        with pytest.raises(TopologyError):
            tracker.get("word-count", "prod", "staging")


class TestUpdate:
    def test_update_bumps_revision(self, tracked_setup):
        tracker, topology, packing, record = tracked_setup
        updated = tracker.update("word-count", topology, packing)
        assert updated.revision > record.revision

    def test_update_unregistered_rejected(self, tracked_setup):
        tracker, topology, packing, _ = tracked_setup
        with pytest.raises(TopologyError, match="not registered"):
            tracker.update("missing", topology, packing)

    def test_update_name_mismatch_rejected(self, tracked_setup):
        tracker, topology, packing, _ = tracked_setup
        renamed = topology.with_parallelism({})
        # Build a topology with a different name entirely.
        from repro.heron.groupings import ShuffleGrouping
        from repro.heron.topology import TopologyBuilder

        builder = TopologyBuilder("other")
        builder.add_spout("s", 1)
        builder.add_bolt("b", 1)
        builder.connect("s", "b", ShuffleGrouping())
        other = builder.build()
        with pytest.raises(TopologyError, match="cannot update"):
            tracker.update("word-count", other, packing)
        assert renamed.name == "word-count"


class TestPlans:
    def test_logical_plan_shape(self, tracked_setup):
        _, _, _, record = tracked_setup
        plan = record.logical_plan()
        assert set(plan["spouts"]) == {"sentence-spout"}
        assert set(plan["bolts"]) == {"splitter", "counter"}
        counter_inputs = plan["bolts"]["counter"]["inputs"]
        assert counter_inputs[0]["grouping"] == "fields"

    def test_packing_plan_is_summary(self, tracked_setup):
        _, _, packing, record = tracked_setup
        assert record.packing_plan() == packing.summary()


class TestGraphCache:
    def test_cache_hit_same_revision(self):
        cache = GraphCache()
        cache.put("topo", 1, "value")
        assert cache.get("topo", 1) == "value"
        assert cache.stats()["hits"] == 1

    def test_cache_miss_on_new_revision(self):
        cache = GraphCache()
        cache.put("topo", 1, "old")
        assert cache.get("topo", 2) is None
        assert cache.stats()["misses"] == 1

    def test_cache_replaces_stale_revision(self):
        cache = GraphCache()
        cache.put("topo", 1, "old")
        cache.put("topo", 2, "new")
        assert cache.get("topo", 1) is None
        assert cache.get("topo", 2) == "new"

    def test_cache_invalidation_end_to_end(self):
        """The paper's invalidate-on-update contract via the tracker."""
        topology, packing, _ = build_word_count()
        tracker = TopologyTracker()
        record = tracker.register(topology, packing)
        cache = GraphCache()
        cache.put(record.name, record.revision, "derived-graph")
        assert cache.get(record.name, record.revision) == "derived-graph"
        updated = tracker.update(record.name, topology, packing)
        assert cache.get(updated.name, updated.revision) is None
