"""The service drain state machine.

A Caladrius process moves through exactly three states::

    running ──begin_drain()──▶ draining ──mark_stopped()──▶ stopped

While *running*, ``/readyz`` answers 200 and work is admitted.  On
SIGTERM/SIGINT the server calls :meth:`LifecycleController.begin_drain`:
``/readyz`` flips to 503 (so load balancers stop routing here), new
modelling and metrics-write requests are refused with 503 +
``Retry-After``, and in-flight requests run to completion.  Once the
in-flight count reaches zero — or the drain deadline passes — the
server flushes the WAL, takes a final checkpoint and exits.

The controller is transport-agnostic: the HTTP tier brackets each
request with :meth:`request_started`/:meth:`request_finished`, and the
app consults :meth:`is_draining` when routing.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from typing import Any

__all__ = ["LifecycleController", "RUNNING", "DRAINING", "STOPPED"]

RUNNING = "running"
DRAINING = "draining"
STOPPED = "stopped"


class LifecycleController:
    """Thread-safe drain state plus the in-flight request gauge."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._cond = threading.Condition()
        self._state = RUNNING
        self._inflight = 0
        self._drain_started: float | None = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """The current lifecycle state."""
        with self._cond:
            return self._state

    def is_running(self) -> bool:
        """True while new work is admitted."""
        with self._cond:
            return self._state == RUNNING

    def is_draining(self) -> bool:
        """True once a drain has begun (new work is refused)."""
        with self._cond:
            return self._state != RUNNING

    def begin_drain(self) -> bool:
        """Flip to draining; ``False`` when already draining/stopped."""
        with self._cond:
            if self._state != RUNNING:
                return False
            self._state = DRAINING
            self._drain_started = self._clock()
            self._cond.notify_all()
            return True

    def mark_stopped(self) -> None:
        """Record that the process is past serving entirely."""
        with self._cond:
            self._state = STOPPED
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # In-flight accounting (bracketed by the HTTP tier)
    # ------------------------------------------------------------------
    def request_started(self) -> None:
        """Count one request entering the handler."""
        with self._cond:
            self._inflight += 1

    def request_finished(self) -> None:
        """Count one request leaving the handler (success or error)."""
        with self._cond:
            self._inflight = max(0, self._inflight - 1)
            self._cond.notify_all()

    def inflight(self) -> int:
        """Requests currently inside the handler."""
        with self._cond:
            return self._inflight

    def wait_idle(self, timeout: float) -> bool:
        """Block until no requests are in flight; ``False`` on timeout.

        The caller (the drain sequence) is itself *not* a request, so
        idle means every request that was admitted before the drain
        began has completed.
        """
        deadline = self._clock() + timeout
        with self._cond:
            while self._inflight > 0:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        """The ``/healthz``/``/readyz`` payload fields."""
        with self._cond:
            payload: dict[str, Any] = {
                "state": self._state,
                "inflight": self._inflight,
            }
            if self._drain_started is not None:
                payload["draining_seconds"] = round(
                    self._clock() - self._drain_started, 3
                )
            return payload
