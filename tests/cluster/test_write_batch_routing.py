"""Cluster-tier batched ingest: split by ring owner, merge the acks.

An in-process harness — real shard apps on real HTTP servers behind a
real :class:`RouterApp`, with a scriptable fake ``ShardManager`` — pins
the routing layer's batch contract: frames regroup by ring owner,
sub-batches forward as raw frames stamped with the owner's epoch,
per-shard outcomes merge with frame indexes rebased onto the original
batch, and one shard's trouble (down, fenced, resized away) never
poisons the others' acks.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.api.app import CaladriusApp
from repro.api.client import BatchWriter, CaladriusClient
from repro.api.ingest import encode_frames
from repro.api.server import CaladriusServer
from repro.cluster import ClusterClient
from repro.cluster.ring import HashRing
from repro.cluster.router import RouterApp
from repro.config import load_config
from repro.errors import ApiError
from repro.heron.tracker import TopologyTracker
from repro.timeseries.store import MetricsStore


def _bare_config():
    config = load_config({})
    return replace(config, serving=replace(config.serving, enabled=False))


class _FakeManager:
    """The slice of ShardManager the router needs, fully scriptable."""

    def __init__(self, shards):
        # shards: {shard_id: (server, app)}
        self._shards = dict(shards)
        self.version = 1
        self._epochs = {shard_id: 1 for shard_id in shards}
        self._down: set[int] = set()

    def shard_ids(self):
        return sorted(self._shards)

    def address_of(self, shard_id):
        if shard_id in self._down or shard_id not in self._shards:
            return None
        server = self._shards[shard_id][0]
        return (server.host, server.port)

    def state_of(self, shard_id):
        return "down" if shard_id in self._down else "ready"

    def epoch_of(self, shard_id):
        return self._epochs.get(shard_id, 0)

    def statuses(self):
        return [
            {"shard_id": shard_id, "state": self.state_of(shard_id)}
            for shard_id in self.shard_ids()
        ]

    def remove_shard(self, shard_id):
        self._shards.pop(shard_id, None)
        self._epochs.pop(shard_id, None)
        self.version += 1

    def mark_down(self, shard_id):
        self._down.add(shard_id)


@pytest.fixture()
def mini_cluster():
    """Two in-process shards behind a served router; yields the pieces."""
    config = _bare_config()
    shards = {}
    apps = []
    for shard_id in (0, 1):
        app = CaladriusApp(
            config, TopologyTracker(), MetricsStore(),
            shard_id=shard_id, epoch=1,
        )
        server = CaladriusServer(app, port=0)
        server.start()
        shards[shard_id] = (server, app)
        apps.append(app)
    manager = _FakeManager(shards)
    router = RouterApp(config, manager)
    router_server = CaladriusServer(router, port=0)
    router_server.start()
    try:
        yield manager, router, router_server, shards
    finally:
        router_server.stop()
        router._fanout.shutdown(wait=False)
        for server, app in shards.values():
            try:
                server.stop()
            except Exception:
                pass
            app.shutdown()


def _mixed_entries(count, topologies=("alpha", "echo", "bravo", "foxtrot")):
    return [
        (
            "arrivals",
            60 * (i // len(topologies) + 1),
            float(i),
            {"topology": topologies[i % len(topologies)]},
        )
        for i in range(count)
    ]


def _owners(router, entries):
    return {router.shard_for(tags["topology"]) for _, _, _, tags in entries}


class TestRouterWriteBatch:
    def test_mixed_batch_splits_and_merges(self, mini_cluster):
        manager, router, _, shards = mini_cluster
        entries = _mixed_entries(40)
        assert _owners(router, entries) == {0, 1}, (
            "topology spread no longer hits both shards; adjust names"
        )
        status, payload = router.handle(
            "POST", "/metrics/write_batch", {}, encode_frames(entries)
        )
        assert status == 200
        assert payload["acked"] == 40
        assert payload["rejected"] == []
        assert set(payload["per_shard"]) == {"0", "1"}
        for shard_summary in payload["per_shard"].values():
            assert shard_summary["status"] == 200
            assert shard_summary["acked"] == shard_summary["frames"]
        # Frames landed on their ring owners, and only there.
        for _, _, _, tags in entries:
            owner = router.shard_for(tags["topology"])
            for shard_id, (_, app) in shards.items():
                keys = app.store.keys("arrivals")
                present = any(
                    dict(k.tags).get("topology") == tags["topology"]
                    for k in keys
                )
                assert present == (shard_id == owner)

    def test_rejected_frames_rebase_onto_the_batch(self, mini_cluster):
        _, router, _, _ = mini_cluster
        entries = _mixed_entries(8)
        # Duplicate one sample so its second copy is stale on its shard.
        entries.append(entries[2])
        status, payload = router.handle(
            "POST", "/metrics/write_batch", {}, encode_frames(entries)
        )
        assert status == 200
        assert payload["acked"] == 8
        assert [r["frame"] for r in payload["rejected"]] == [8]

    def test_down_shard_refuses_only_its_sub_batch(self, mini_cluster):
        manager, router, _, shards = mini_cluster
        entries = _mixed_entries(20)
        down_owner = router.shard_for("alpha")
        manager.mark_down(down_owner)
        status, payload = router.handle(
            "POST", "/metrics/write_batch", {}, encode_frames(entries)
        )
        assert status == 200  # the other shard's acks stand
        assert 0 < payload["acked"] < 20
        (refusal,) = payload["refused"]
        assert refusal["shard_id"] == down_owner
        assert refusal["status"] == 503
        assert payload["acked"] + len(refusal["frames"]) == 20

    def test_whole_fleet_down_is_a_retryable_503(self, mini_cluster):
        manager, router, _, _ = mini_cluster
        manager.mark_down(0)
        manager.mark_down(1)
        status, payload = router.handle(
            "POST", "/metrics/write_batch", {}, encode_frames(
                _mixed_entries(4)
            )
        )
        assert status == 503
        assert payload["acked"] == 0
        assert payload["retry_after"] >= 1

    def test_fenced_shard_refuses_retryably(self, mini_cluster):
        manager, router, _, shards = mini_cluster
        entries = _mixed_entries(20)
        fenced_owner = router.shard_for("alpha")
        # The worker moved to epoch 2 (promotion) but the manager still
        # stamps epoch 1: every forward to it answers a fencing 409.
        shards[fenced_owner][1].epoch = 2
        status, payload = router.handle(
            "POST", "/metrics/write_batch", {}, encode_frames(entries)
        )
        assert status == 200
        assert 0 < payload["acked"] < 20
        (refusal,) = payload["refused"]
        assert refusal["status"] == 409
        assert refusal["shard_id"] == fenced_owner


class TestClusterClientWriteBatch:
    def _client(self, router_server, **kwargs):
        kwargs.setdefault("sleep", lambda seconds: None)
        return ClusterClient(
            router_server.host, router_server.port,
            ring_ttl_seconds=30.0, **kwargs,
        )

    def test_split_batch_goes_direct_to_both_owners(self, mini_cluster):
        _, router, router_server, shards = mini_cluster
        client = self._client(router_server)
        try:
            ack = client.write_batch(_mixed_entries(40))
            assert ack.frames == 40 and ack.acked == 40
            assert ack.refused == []
            assert client.direct_calls == 2  # one per owning shard
            assert client.router_fallbacks == 0
            # LSNs are per-shard, meaningless once split.
            assert ack.first_lsn is None and ack.last_lsn is None
            total = sum(
                len(app.store.keys("arrivals"))
                for _, app in shards.values()
            )
            assert total == 4  # one series per topology, spread out
        finally:
            client.close()

    def test_rejections_rebase_through_the_merge(self, mini_cluster):
        _, _, router_server, _ = mini_cluster
        client = self._client(router_server)
        try:
            entries = _mixed_entries(8)
            entries.append(entries[5])  # stale duplicate
            ack = client.write_batch(entries)
            assert ack.acked == 8
            assert [r["frame"] for r in ack.rejected] == [8]
        finally:
            client.close()

    def test_fencing_409_falls_back_without_poisoning(self, mini_cluster):
        manager, router, router_server, shards = mini_cluster
        client = self._client(router_server, failover_retries=1)
        try:
            client.refresh_ring()
            fenced_owner = router.shard_for("alpha")
            # The worker is one epoch ahead of the ring: direct calls
            # are fenced, and the router (stamping the stale epoch)
            # cannot land them either.
            shards[fenced_owner][1].epoch = 2
            ack = client.write_batch(_mixed_entries(20))
            # The healthy shard's sub-batch is fully acked.
            assert 0 < ack.acked < 20
            assert client.fenced_writes >= 1
            assert client.router_fallbacks >= 1
            (refusal,) = ack.refused
            assert refusal["shard_id"] == fenced_owner
            assert ack.acked + len(refusal["frames"]) == 20
        finally:
            client.close()

    def test_ring_resize_mid_flight_falls_back_to_router(
        self, mini_cluster
    ):
        manager, router, router_server, shards = mini_cluster
        client = self._client(router_server)
        try:
            client.refresh_ring()  # snapshot the 2-shard ring
            old_ring = HashRing(manager.shard_ids(), router.virtual_nodes)
            moving = next(
                t for t in ("alpha", "echo", "bravo", "foxtrot")
                if old_ring.shard_for(t) == 1
            )
            # Shard 1 leaves the fleet: its server stops, the manager
            # drops it, the ring version bumps.  The client still holds
            # the old ring.
            server1, app1 = shards[1]
            server1.stop()
            manager.remove_shard(1)
            ack = client.write_batch(
                [("arrivals", 60, 1.0, {"topology": moving}),
                 ("arrivals", 120, 2.0, {"topology": moving})]
            )
            # Direct send hit the dead shard, fell back to the router,
            # which re-routed onto the surviving ring.
            assert ack.acked == 2
            assert ack.refused == []
            assert client.router_fallbacks >= 1
            series = shards[0][1].store.get(
                "arrivals", {"topology": moving}
            )
            assert list(series.timestamps) == [60, 120]
        finally:
            client.close()

    def test_batch_writer_drives_cluster_routing(self, mini_cluster):
        _, _, router_server, shards = mini_cluster
        client = self._client(router_server)
        try:
            with BatchWriter(client, max_frames=10) as writer:
                for name, ts, value, tags in _mixed_entries(25):
                    writer.add(name, ts, value, tags)
            assert sum(ack.acked for ack in writer.acks) == 25
            total = sum(
                sum(
                    len(app.store.get(k.name, dict(k.tags)).timestamps)
                    for k in app.store.keys()
                )
                for _, app in shards.values()
            )
            assert total == 25
        finally:
            client.close()
