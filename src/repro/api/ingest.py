"""Wire codec for the batched binary ingest path.

``POST /metrics/write_batch`` carries write records in exactly the WAL
codec's framing — ``u32 payload_length | u32 crc32(payload) | payload``
(little-endian, UTF-8 JSON payload) — so the client encodes each sample
once and the server appends the payload bytes to the write-ahead log
verbatim, modulo the spliced server-assigned LSN prefix.  No field is
re-serialized between the client and the segment file.

Unlike :func:`repro.durability.wal.read_segment_records`, which
tolerates a torn final frame (a crash mid-append is expected on disk),
the decoder here is strict: an HTTP body is either a complete frame
sequence or a client bug, so any short, oversized, or CRC-broken frame
rejects the whole request with a structured 400 naming the frame index
and byte offset.
"""

from __future__ import annotations

import json
import struct
import zlib
from collections.abc import Iterable, Mapping, Sequence
from typing import Any

from repro.errors import ApiError

__all__ = [
    "FRAMES_CONTENT_TYPE",
    "STREAM_CONTENT_TYPE",
    "decode_frames",
    "encode_frame",
    "encode_frames",
    "frame_bytes",
    "merge_stream_lines",
    "rebase_refused",
]

# The request body: WAL-framed records, appended to the log verbatim.
FRAMES_CONTENT_TYPE = "application/x-caladrius-frames"
# The streaming response: one JSON object per line, a ``{"commit": ...}``
# line per group commit and a final ``{"done": true, ...}`` summary.
STREAM_CONTENT_TYPE = "application/x-ndjson"

# Mirrors repro.durability.wal — one codec, stated once on the wire and
# once on disk.  struct format "<II" = little-endian (length, crc32).
_HEADER = struct.Struct("<II")
_MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_frame(
    name: str,
    timestamp: int,
    value: float,
    tags: Mapping[str, str] | None = None,
) -> bytes:
    """Frame one write record exactly as the WAL will store it.

    The payload is compact JSON with the fields in the WAL's journal
    order (``op``, ``name``, ``tags``, ``ts``, ``v``) and no ``lsn`` —
    the server splices its assigned LSN in front when appending.
    """
    record = {
        "op": "write",
        "name": name,
        "tags": dict(tags) if tags else {},
        "ts": int(timestamp),
        "v": float(value),
    }
    payload = json.dumps(record, separators=(",", ":")).encode("utf8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def encode_frames(
    entries: Iterable[tuple[str, int, float, Mapping[str, str] | None]],
) -> bytes:
    """Frame ``(name, ts, value, tags)`` entries into one request body."""
    return b"".join(
        encode_frame(name, timestamp, value, tags)
        for name, timestamp, value, tags in entries
    )


def frame_bytes(body: str) -> bytes:
    """Re-frame a decoded payload string, byte-identical to the original.

    The router and cluster client split a mixed batch into per-shard
    sub-batches; since the payload bytes are untouched, re-framing them
    reproduces the client's frames exactly — the no-re-serialization
    guarantee survives the extra hop.
    """
    payload = body.encode("utf8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_frames(raw: bytes) -> list[tuple[Any, str]]:
    """Strictly decode a request body into ``(record, body)`` per frame.

    ``record`` is the parsed JSON value and ``body`` the exact payload
    string the client framed — the durable store journals ``body``
    verbatim so client bytes and segment bytes stay identical.  Raises
    :class:`~repro.errors.ApiError` (400) on any malformed frame; the
    payload names the frame index and byte offset so a client can find
    the bug in its encoder.
    """
    frames: list[tuple[Any, str]] = []
    offset = 0
    total = len(raw)
    while offset < total:
        index = len(frames)

        def _reject(message: str) -> ApiError:
            return ApiError(
                f"malformed frame {index} at byte {offset}: {message}",
                status=400,
                payload={"frame": index, "offset": offset},
            )

        if total - offset < _HEADER.size:
            raise _reject(
                f"truncated header ({total - offset} of {_HEADER.size} bytes)"
            )
        length, crc = _HEADER.unpack_from(raw, offset)
        if length > _MAX_FRAME_BYTES:
            raise _reject(f"frame length {length} exceeds {_MAX_FRAME_BYTES}")
        start = offset + _HEADER.size
        if total - start < length:
            raise _reject(
                f"truncated payload ({total - start} of {length} bytes)"
            )
        payload = raw[start:start + length]
        if zlib.crc32(payload) != crc:
            raise _reject("crc32 mismatch")
        try:
            body = payload.decode("utf8")
            record = json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _reject(f"payload is not JSON ({exc})") from None
        frames.append((record, body))
        offset = start + length
    return frames


def rebase_refused(
    entry: Mapping[str, Any],
    indexes: Sequence[int],
    shard_id: int | None = None,
) -> dict[str, Any]:
    """Rebase a refused-group entry onto the parent batch's frame indexes.

    A refused entry either carries ``frame_start`` + ``frames`` (count)
    — the streaming server's commit-group shape — or an explicit
    ``frames`` index list (the router's shape).  Both are normalised to
    a ``frames`` list of parent-batch indexes via ``indexes``, the
    parent positions of this sub-batch's frames in order.
    """
    out = dict(entry)
    frames = entry.get("frames")
    if isinstance(frames, list):
        out["frames"] = [
            indexes[i]
            for i in frames
            if isinstance(i, int) and 0 <= i < len(indexes)
        ]
    elif isinstance(entry.get("frame_start"), int) and isinstance(
        frames, int
    ):
        start = entry["frame_start"]
        out["frames"] = [
            indexes[i]
            for i in range(max(0, start), min(start + frames, len(indexes)))
        ]
        out.pop("frame_start", None)
        out.pop("group", None)
    if shard_id is not None:
        out["shard_id"] = shard_id
    return out


def merge_stream_lines(lines: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Fold streamed ``commit``/``done`` lines into one batch summary.

    The threaded server answers ``write_batch`` with a single JSON
    summary; the asyncio server streams one line per group commit.  The
    client funnels both shapes through this so callers see one ack
    regardless of transport.  ``commits`` preserves the per-group ack
    offsets for callers that track durability incrementally.
    """
    merged: dict[str, Any] = {
        "frames": 0,
        "acked": 0,
        "rejected": [],
        "first_lsn": None,
        "last_lsn": None,
        "commits": [],
    }
    for line in lines:
        if line.get("done"):
            # The final line is the authoritative whole-batch summary.
            merged.update(
                (key, value) for key, value in line.items() if key != "done"
            )
            continue
        commit = line.get("commit")
        if isinstance(commit, Mapping):
            merged["commits"].append(dict(commit))
    return merged
