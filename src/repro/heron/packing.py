"""Packing: assigning component instances to containers.

The paper's evaluation uses "Heron's round-robin packing algorithm — 1 CPU
core and 2GB RAM per instance" (Section V-A).  A packing plan (Fig. 1b) is
the physical representation of a topology: a list of containers, each
holding instances plus a stream manager and a metrics manager process.

Instances are identified two ways, mirroring Heron:

* a *task id* — a globally unique integer over the whole topology;
* a *component index* — the instance's 0-based index within its component,
  which is what the models index by (``t_lambda(i)`` in Eq. 6).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.errors import PackingError
from repro.heron.topology import LogicalTopology

__all__ = [
    "Resources",
    "InstancePlan",
    "ContainerPlan",
    "PackingPlan",
    "RoundRobinPacking",
    "FirstFitDecreasingPacking",
]


@dataclass(frozen=True)
class Resources:
    """Resource allocation: CPU cores, RAM bytes, disk bytes."""

    cpu: float = 1.0
    ram_bytes: int = 2 * 1024**3
    disk_bytes: int = 0

    def __post_init__(self) -> None:
        if self.cpu <= 0:
            raise PackingError("cpu allocation must be positive")
        if self.ram_bytes <= 0:
            raise PackingError("ram allocation must be positive")
        if self.disk_bytes < 0:
            raise PackingError("disk allocation must be non-negative")

    def plus(self, other: "Resources") -> "Resources":
        """Component-wise sum (used for container totals)."""
        return Resources(
            self.cpu + other.cpu,
            self.ram_bytes + other.ram_bytes,
            self.disk_bytes + other.disk_bytes,
        )


@dataclass(frozen=True)
class InstancePlan:
    """One packed instance: component, indices and resources."""

    component: str
    component_index: int
    task_id: int
    container_id: int
    resources: Resources = field(default_factory=Resources)

    @property
    def instance_id(self) -> str:
        """The Heron-style instance name, e.g. ``splitter_2``."""
        return f"{self.component}_{self.component_index}"


@dataclass(frozen=True)
class ContainerPlan:
    """One container: id plus the instances packed into it.

    Each container also runs a stream manager and a metrics manager; the
    simulator models the stream manager explicitly and those processes are
    implied by the container's existence here.
    """

    container_id: int
    instances: tuple[InstancePlan, ...]

    def required_resources(self) -> Resources:
        """Sum of the packed instances' allocations."""
        if not self.instances:
            raise PackingError(f"container {self.container_id} is empty")
        cpu = sum(i.resources.cpu for i in self.instances)
        ram = sum(i.resources.ram_bytes for i in self.instances)
        disk = sum(i.resources.disk_bytes for i in self.instances)
        return Resources(cpu, ram, disk)


class PackingPlan:
    """The physical layout of a topology: containers and instances."""

    def __init__(
        self,
        topology_name: str,
        containers: list[ContainerPlan],
    ) -> None:
        if not containers:
            raise PackingError("a packing plan needs at least one container")
        self.topology_name = topology_name
        self.containers = list(containers)
        self._by_component: dict[str, list[InstancePlan]] = {}
        self._by_task: dict[int, InstancePlan] = {}
        for container in self.containers:
            for instance in container.instances:
                self._by_component.setdefault(instance.component, []).append(instance)
                if instance.task_id in self._by_task:
                    raise PackingError(f"duplicate task id {instance.task_id}")
                self._by_task[instance.task_id] = instance
        for instances in self._by_component.values():
            instances.sort(key=lambda i: i.component_index)
            indices = [i.component_index for i in instances]
            if indices != list(range(len(indices))):
                raise PackingError(
                    f"component {instances[0].component!r} instance indices "
                    f"are not contiguous: {indices}"
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def instances_of(self, component: str) -> list[InstancePlan]:
        """Instances of one component, ordered by component index."""
        try:
            return list(self._by_component[component])
        except KeyError:
            raise PackingError(f"no instances packed for {component!r}") from None

    def parallelism(self, component: str) -> int:
        """Number of packed instances for a component."""
        return len(self.instances_of(component))

    def instance(self, task_id: int) -> InstancePlan:
        """The instance with a given task id."""
        try:
            return self._by_task[task_id]
        except KeyError:
            raise PackingError(f"no instance with task id {task_id}") from None

    def all_instances(self) -> list[InstancePlan]:
        """Every packed instance, ordered by task id."""
        return [self._by_task[tid] for tid in sorted(self._by_task)]

    def components(self) -> list[str]:
        """Component names present in the plan, sorted."""
        return sorted(self._by_component)

    def container(self, container_id: int) -> ContainerPlan:
        """The container with a given id."""
        for container in self.containers:
            if container.container_id == container_id:
                return container
        raise PackingError(f"no container with id {container_id}")

    def container_of(self, component: str, component_index: int) -> int:
        """The container id hosting one instance."""
        for instance in self.instances_of(component):
            if instance.component_index == component_index:
                return instance.container_id
        raise PackingError(
            f"no instance {component}_{component_index} in the plan"
        )

    def num_containers(self) -> int:
        """Number of containers in the plan."""
        return len(self.containers)

    def colocated(
        self, a: tuple[str, int], b: tuple[str, int]
    ) -> bool:
        """True when two instances share a container.

        Tuples crossing containers pass through two stream managers
        (Section II-E); the simulator charges them the remote route.
        """
        return self.container_of(*a) == self.container_of(*b)

    def summary(self) -> dict[str, object]:
        """A JSON-friendly description of the plan."""
        return {
            "topology": self.topology_name,
            "containers": [
                {
                    "id": c.container_id,
                    "instances": [
                        {
                            "component": i.component,
                            "component_index": i.component_index,
                            "task_id": i.task_id,
                            "cpu": i.resources.cpu,
                            "ram_bytes": i.resources.ram_bytes,
                        }
                        for i in c.instances
                    ],
                }
                for c in self.containers
            ],
        }

    def __repr__(self) -> str:
        return (
            f"PackingPlan({self.topology_name!r}, "
            f"containers={self.num_containers()}, "
            f"instances={len(self._by_task)})"
        )


class RoundRobinPacking:
    """Heron's round-robin packing algorithm.

    Instances are enumerated component by component (topology insertion
    order, spouts first as Heron does) and dealt out to containers in
    round-robin order.  Every instance receives the same resource
    allocation, matching the paper's "1 CPU core and 2GB RAM per
    instance".

    Parameters
    ----------
    instance_resources:
        Allocation for every instance.
    """

    def __init__(self, instance_resources: Resources | None = None) -> None:
        self.instance_resources = instance_resources or Resources()

    def pack(
        self,
        topology: LogicalTopology,
        num_containers: int,
    ) -> PackingPlan:
        """Produce a plan with the requested number of containers."""
        if num_containers < 1:
            raise PackingError("num_containers must be >= 1")
        total = topology.total_instances()
        if num_containers > total:
            raise PackingError(
                f"cannot spread {total} instances over {num_containers} "
                "containers without empty containers"
            )
        ordered = [c for c in topology.components.values() if c.is_spout]
        ordered += [c for c in topology.components.values() if not c.is_spout]
        assignments: dict[int, list[InstancePlan]] = {
            cid: [] for cid in range(1, num_containers + 1)
        }
        task_id = 0
        slot = 0
        for component in ordered:
            for index in range(component.parallelism):
                container_id = (slot % num_containers) + 1
                assignments[container_id].append(
                    InstancePlan(
                        component=component.name,
                        component_index=index,
                        task_id=task_id,
                        container_id=container_id,
                        resources=self.instance_resources,
                    )
                )
                task_id += 1
                slot += 1
        containers = [
            ContainerPlan(cid, tuple(instances))
            for cid, instances in assignments.items()
        ]
        return PackingPlan(topology.name, containers)

    def pack_with_density(
        self,
        topology: LogicalTopology,
        instances_per_container: int,
    ) -> PackingPlan:
        """Produce a plan given a maximum container density.

        The paper notes users "allocate a large number of containers", so
        few instances share a stream manager; this helper sizes the
        container count from a target density instead of a fixed count.
        """
        if instances_per_container < 1:
            raise PackingError("instances_per_container must be >= 1")
        total = topology.total_instances()
        num_containers = -(-total // instances_per_container)
        return self.pack(topology, num_containers)


class FirstFitDecreasingPacking:
    """Heron's other built-in packer: first-fit-decreasing bin packing.

    Instances are sorted by their resource demand (CPU, then RAM,
    largest first) and placed into the first container whose remaining
    capacity fits them; a new container opens when none fits.  Unlike
    round robin this packs *tightly*, which is what makes the "few
    containers, shared stream manager" ablation realistic.

    Parameters
    ----------
    container_resources:
        Capacity of one container.  Defaults to four of the paper's
        per-instance allocations (4 cores / 8 GB).
    instance_resources:
        Per-component resource demands; components missing from the
        mapping use the paper's default 1 core / 2 GB.
    """

    def __init__(
        self,
        container_resources: Resources | None = None,
        instance_resources: Mapping[str, Resources] | None = None,
    ) -> None:
        self.container_resources = container_resources or Resources(
            cpu=4.0, ram_bytes=8 * 1024**3
        )
        self.instance_resources = dict(instance_resources or {})

    def _demand(self, component: str) -> Resources:
        return self.instance_resources.get(component, Resources())

    def pack(self, topology: LogicalTopology) -> PackingPlan:
        """Produce a first-fit-decreasing plan (container count emerges)."""
        pending: list[tuple[str, int]] = []
        ordered = [c for c in topology.components.values() if c.is_spout]
        ordered += [c for c in topology.components.values() if not c.is_spout]
        for component in ordered:
            for index in range(component.parallelism):
                pending.append((component.name, index))
        pending.sort(
            key=lambda item: (
                -self._demand(item[0]).cpu,
                -self._demand(item[0]).ram_bytes,
                item[0],
                item[1],
            )
        )
        bins: list[dict] = []
        for name, index in pending:
            demand = self._demand(name)
            if (
                demand.cpu > self.container_resources.cpu
                or demand.ram_bytes > self.container_resources.ram_bytes
            ):
                raise PackingError(
                    f"instance of {name!r} demands more than one "
                    "container's capacity"
                )
            placed = False
            for bin_ in bins:
                if (
                    bin_["cpu"] + demand.cpu <= self.container_resources.cpu
                    and bin_["ram"] + demand.ram_bytes
                    <= self.container_resources.ram_bytes
                ):
                    bin_["members"].append((name, index, demand))
                    bin_["cpu"] += demand.cpu
                    bin_["ram"] += demand.ram_bytes
                    placed = True
                    break
            if not placed:
                bins.append(
                    {
                        "members": [(name, index, demand)],
                        "cpu": demand.cpu,
                        "ram": demand.ram_bytes,
                    }
                )
        task_ids: dict[tuple[str, int], int] = {}
        next_task = 0
        for component in ordered:
            for index in range(component.parallelism):
                task_ids[(component.name, index)] = next_task
                next_task += 1
        containers = []
        for container_id, bin_ in enumerate(bins, start=1):
            instances = tuple(
                InstancePlan(
                    component=name,
                    component_index=index,
                    task_id=task_ids[(name, index)],
                    container_id=container_id,
                    resources=demand,
                )
                for name, index, demand in bin_["members"]
            )
            containers.append(ContainerPlan(container_id, instances))
        return PackingPlan(topology.name, containers)


def repack(
    topology: LogicalTopology,
    changes: Mapping[str, int],
    packer: RoundRobinPacking | None = None,
    num_containers: int | None = None,
) -> tuple[LogicalTopology, PackingPlan]:
    """Apply parallelism changes and produce the new plan.

    Returns the updated logical topology and its packing.  When
    ``num_containers`` is omitted the container count is kept proportional
    to the instance total (same average density as a fresh 2-per-container
    round robin), which is what ``heron update`` does by default.
    """
    packer = packer or RoundRobinPacking()
    updated = topology.with_parallelism(changes)
    if num_containers is None:
        return updated, packer.pack_with_density(updated, 2)
    return updated, packer.pack(updated, num_containers)
