"""Tests for topology calibration and the performance-model tier."""

from __future__ import annotations

import pytest

from repro.core.performance_models import (
    BackpressureEvaluationModel,
    ThroughputPredictionModel,
    calibrate_topology,
)
from repro.errors import ModelError

M = 1e6


class TestCalibrateTopology:
    def test_fits_every_bolt(self, deployed_wordcount):
        _, _, logic, store, tracker = deployed_wordcount
        tracked = tracker.get("word-count")
        model, fits = calibrate_topology(tracked, store)
        assert set(fits) == {"splitter", "counter"}
        true_alpha = logic["splitter"].alphas["default"]
        assert fits["splitter"].alpha == pytest.approx(true_alpha, rel=0.02)

    def test_recovers_splitter_saturation(self, deployed_wordcount):
        _, _, logic, store, tracker = deployed_wordcount
        tracked = tracker.get("word-count")
        model, fits = calibrate_topology(tracked, store)
        # Splitter p=2 saturates at 22M tuples/min.
        true_sp = logic["splitter"].capacity_tps * 60 * 2
        assert fits["splitter"].saturation_point == pytest.approx(
            true_sp, rel=0.10
        )

    def test_chained_model_predicts_output(self, deployed_wordcount):
        _, _, logic, store, tracker = deployed_wordcount
        tracked = tracker.get("word-count")
        model, _ = calibrate_topology(tracked, store)
        path = ["sentence-spout", "splitter", "counter"]
        alpha = logic["splitter"].alphas["default"]
        # Linear region.
        assert model.critical_path_output(path, 10 * M) == pytest.approx(
            alpha * 10 * M, rel=0.05
        )
        # Saturated region: 2 instances x 11M x alpha.
        assert model.critical_path_output(path, 40 * M) == pytest.approx(
            2 * 11 * M * alpha, rel=0.10
        )


class TestThroughputPredictionModel:
    def test_prediction_fields(self, deployed_wordcount):
        _, _, _, store, tracker = deployed_wordcount
        model = ThroughputPredictionModel(tracker, store)
        prediction = model.predict("word-count", source_rate=10 * M)
        assert prediction.topology == "word-count"
        assert prediction.source_rate == 10 * M
        assert prediction.backpressure_risk == "low"
        assert prediction.output_rate == pytest.approx(7.635 * 10 * M, rel=0.05)
        assert set(prediction.components) == {
            "sentence-spout",
            "splitter",
            "counter",
        }

    def test_high_risk_at_saturation(self, deployed_wordcount):
        _, _, _, store, tracker = deployed_wordcount
        model = ThroughputPredictionModel(tracker, store)
        prediction = model.predict("word-count", source_rate=30 * M)
        assert prediction.backpressure_risk == "high"
        assert prediction.bottleneck == "splitter"

    def test_dry_run_parallelism_change(self, deployed_wordcount):
        """The paper's headline use case: predict before deploying."""
        _, _, _, store, tracker = deployed_wordcount
        model = ThroughputPredictionModel(tracker, store)
        base = model.predict("word-count", source_rate=30 * M)
        scaled = model.predict(
            "word-count", source_rate=30 * M, parallelisms={"splitter": 4}
        )
        # Doubling the splitter doubles its saturation point (Eq. 9),
        # so 30M no longer saturates and the output rate grows.
        assert scaled.output_rate > base.output_rate * 1.3
        assert scaled.parallelisms["splitter"] == 4
        # The tracked topology itself is untouched (dry run).
        assert tracker.get("word-count").topology.parallelism("splitter") == 2

    def test_saturation_source_rate_scales_with_parallelism(
        self, deployed_wordcount
    ):
        _, _, _, store, tracker = deployed_wordcount
        model = ThroughputPredictionModel(tracker, store)
        base = model.predict("word-count", source_rate=10 * M)
        scaled = model.predict(
            "word-count", source_rate=10 * M, parallelisms={"splitter": 4}
        )
        ratio = scaled.saturation_source_rate / base.saturation_source_rate
        assert ratio == pytest.approx(2.0, rel=0.15)

    def test_requires_rate_or_traffic(self, deployed_wordcount):
        _, _, _, store, tracker = deployed_wordcount
        model = ThroughputPredictionModel(tracker, store)
        with pytest.raises(ModelError, match="either source_rate or traffic"):
            model.predict("word-count")

    def test_as_dict_json_friendly(self, deployed_wordcount):
        import json

        _, _, _, store, tracker = deployed_wordcount
        model = ThroughputPredictionModel(tracker, store)
        prediction = model.predict("word-count", source_rate=5 * M)
        assert json.dumps(prediction.as_dict())


class TestBackpressureEvaluationModel:
    def test_low_risk_far_below_saturation(self, deployed_wordcount):
        _, _, _, store, tracker = deployed_wordcount
        model = BackpressureEvaluationModel(tracker, store)
        prediction = model.predict("word-count", source_rate=5 * M)
        assert prediction.backpressure_risk == "low"
        assert prediction.paths[0]["headroom"] > 2.0

    def test_high_risk_and_bottleneck(self, deployed_wordcount):
        _, _, _, store, tracker = deployed_wordcount
        model = BackpressureEvaluationModel(tracker, store)
        prediction = model.predict("word-count", source_rate=25 * M)
        assert prediction.backpressure_risk == "high"
        assert prediction.bottleneck == "splitter"

    def test_preemptive_scaling_loop(self, deployed_wordcount):
        """Forecast peak -> high risk -> propose scale-out -> low risk."""
        _, _, _, store, tracker = deployed_wordcount
        model = BackpressureEvaluationModel(tracker, store)
        risky = model.predict("word-count", source_rate=25 * M)
        assert risky.backpressure_risk == "high"
        fixed = model.predict(
            "word-count",
            source_rate=25 * M,
            parallelisms={"splitter": 6},
        )
        assert fixed.backpressure_risk == "low"


class TestPredictionUncertainty:
    def test_stderr_reported_and_band_brackets_point(self, deployed_wordcount):
        _, _, _, store, tracker = deployed_wordcount
        model = ThroughputPredictionModel(tracker, store)
        prediction = model.predict("word-count", source_rate=10 * M)
        assert prediction.output_rate_stderr >= 0.0
        low, high = prediction.output_rate_interval
        assert low <= prediction.output_rate <= high

    def test_clean_simulation_gives_tight_bands(self, deployed_wordcount):
        _, _, _, store, tracker = deployed_wordcount
        model = ThroughputPredictionModel(tracker, store)
        prediction = model.predict("word-count", source_rate=10 * M)
        # The simulator's noise floor is ~1.5%; the chained band should
        # stay within a few percent of the point prediction.
        assert prediction.output_rate_stderr < 0.05 * prediction.output_rate

    def test_as_dict_includes_interval(self, deployed_wordcount):
        import json

        _, _, _, store, tracker = deployed_wordcount
        model = ThroughputPredictionModel(tracker, store)
        payload = model.predict("word-count", source_rate=10 * M).as_dict()
        assert "output_rate_interval" in payload
        assert json.dumps(payload)
