"""The CPU-load prediction use case (paper Section V-E).

"We observed that the CPU usage is linearly related to the input rate per
instance."  The prediction pipeline has two steps:

1. the throughput model maps a target *source* rate to per-instance
   *input* rates (the ``{input rates, source rates}`` model);
2. a fitted slope :math:`\\psi = \\text{CPU load} / \\text{input rate}`
   amplifies those input rates into CPU cores (the
   ``{CPU load, input rates}`` model).

Chaining the two predicts component CPU under a different source rate
*and* a different parallelism — the paper's Figs. 11-12, where the error
is slightly above the throughput error "because error has accumulated
for the chained prediction steps".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calibration import LinearFit, fit_linear
from repro.core.component_model import ComponentModel
from repro.errors import ModelError

__all__ = ["CpuModel", "fit_cpu_model"]


@dataclass(frozen=True)
class CpuModel:
    """Linear CPU model for one component's instances.

    ``psi`` is cores per (tuple/unit-time) of instance input;
    ``base_cores`` is the per-instance idle load (gateway keep-alive,
    GC, metrics) exposed by the regression intercept.
    """

    component: str
    psi: float
    base_cores: float = 0.0

    def __post_init__(self) -> None:
        if self.psi < 0:
            raise ModelError("psi must be non-negative")

    def instance_cpu(self, input_rate: float) -> float:
        """CPU cores of one instance at a given input rate."""
        if input_rate < 0:
            raise ModelError("input_rate must be non-negative")
        return self.base_cores + self.psi * input_rate

    def component_cpu(
        self, model: ComponentModel, source_rate: float
    ) -> float:
        """Total component cores at a source rate (chained prediction).

        Step 1 uses the throughput model to turn the source rate into
        per-instance *processed* rates (inputs clip at the instance
        saturation point once backpressure caps intake); step 2 applies
        ``psi`` per instance and sums.
        """
        inputs = model.instance_input_rates(source_rate)
        processed = np.minimum(inputs, model.instance.saturation_point)
        return float(
            np.sum(self.base_cores + self.psi * processed)
        )

    def predict_curve(
        self, model: ComponentModel, source_rates: np.ndarray
    ) -> np.ndarray:
        """Component CPU over a sweep of source rates."""
        return np.asarray(
            [self.component_cpu(model, float(rate)) for rate in source_rates]
        )


def fit_cpu_model(
    component: str,
    instance_input_rates: np.ndarray,
    instance_cpu_loads: np.ndarray,
    with_intercept: bool = True,
) -> tuple[CpuModel, LinearFit]:
    """Fit ``psi`` (and optionally a base load) from observations.

    Observations are *per-instance* pairs: mean input rate and measured
    CPU cores over the same window.  Component-level series should be
    divided by parallelism before calling (the paper's model is per
    instance).
    """
    fit = fit_linear(
        instance_input_rates,
        instance_cpu_loads,
        through_origin=not with_intercept,
    )
    if fit.slope < 0:
        raise ModelError(
            f"fitted a negative CPU slope for {component!r}; observations "
            "do not look like CPU-vs-input data"
        )
    return CpuModel(component, fit.slope, max(0.0, fit.intercept)), fit
