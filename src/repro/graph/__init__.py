"""Graph substrate: the TinkerPop-flavoured property-graph layer.

Caladrius stores every topology's logical and physical graph in a graph
database behind an Apache TinkerPop abstraction and runs path calculations
over it (paper Section III-C1).  This package is the offline equivalent:

* :class:`~repro.graph.property_graph.PropertyGraph` — an in-memory
  directed property graph (vertices and edges with labels + properties).
* :class:`~repro.graph.traversal.Traversal` — a small Gremlin-flavoured
  fluent traversal API (``g.V().has(...).out(...).path()``).
* :mod:`~repro.graph.topology_graph` — adapters that materialise Heron
  logical and physical (packing) plans into property graphs, enumerate
  tuple paths, and rank critical-path candidates.
"""

from repro.graph.plan_analysis import (
    PlanCost,
    analyse_plan,
    compare_plans,
    stream_rates_from_propagation,
)
from repro.graph.property_graph import Edge, PropertyGraph, Vertex
from repro.graph.topology_graph import (
    critical_path_candidates,
    logical_graph,
    path_count,
    physical_graph,
    source_sink_paths,
)
from repro.graph.traversal import Traversal

__all__ = [
    "Edge",
    "PlanCost",
    "PropertyGraph",
    "Traversal",
    "Vertex",
    "analyse_plan",
    "compare_plans",
    "critical_path_candidates",
    "logical_graph",
    "path_count",
    "physical_graph",
    "source_sink_paths",
    "stream_rates_from_propagation",
]
