"""WAL shipping and follower replay: byte mirror + live read replica."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.api.app import CaladriusApp
from repro.api.client import CaladriusClient
from repro.api.server import CaladriusServer
from repro.cluster.follower import FollowerApp, FollowerReplica
from repro.cluster.shipping import SegmentShipper
from repro.config import load_config
from repro.durability import (
    CheckpointManager,
    DurableMetricsStore,
    open_data_dir,
    store_content_hash,
)
from repro.errors import ApiError
from repro.heron.tracker import TopologyTracker
from repro.heron.wordcount import WordCountParams, build_word_count


@pytest.fixture()
def shard_store(tmp_path):
    store = DurableMetricsStore(tmp_path / "shard")
    yield store
    store.close()


@pytest.fixture()
def follower_service(tmp_path):
    """A FollowerApp hosted over real HTTP, as ``caladrius follow`` runs it."""
    config = load_config({})
    config = replace(config, serving=replace(config.serving, enabled=False))
    replica = FollowerReplica(tmp_path / "replica")
    inner = CaladriusApp(
        config, replica.tracker, replica.store, read_only=True
    )
    app = FollowerApp(replica, inner)
    with CaladriusServer(app, port=0) as server:
        yield server, replica
    app.close()


def _write_batch(store, count: int, start: int = 0) -> None:
    for i in range(start, start + count):
        store.write(
            "emit-count",
            60 * (i + 1),
            float(i),
            {"topology": "word-count", "component": "splitter"},
        )


def _shipper(shard_store, server) -> SegmentShipper:
    return SegmentShipper(
        shard_store, f"{server.host}:{server.port}", interval_seconds=0.05
    )


class TestShipping:
    def test_follower_converges_to_shard_hash(
        self, shard_store, follower_service
    ):
        server, replica = follower_service
        _write_batch(shard_store, 25)
        shipper = _shipper(shard_store, server)
        report = shipper.ship_now()
        assert report["shipped_bytes"] > 0
        status = replica.status()
        assert status["applied_lsn"] == 25
        assert status["content_hash"] == store_content_hash(shard_store)
        shipper.stop(final_ship=False)

    def test_incremental_passes_ship_only_new_bytes(
        self, shard_store, follower_service
    ):
        server, replica = follower_service
        shipper = _shipper(shard_store, server)
        _write_batch(shard_store, 10)
        first = shipper.ship_now()["shipped_bytes"]
        # Nothing new: the pass must be a no-op, not a re-send.
        assert shipper.ship_now()["shipped_bytes"] == 0
        _write_batch(shard_store, 5, start=10)
        second = shipper.ship_now()["shipped_bytes"]
        assert 0 < second < first
        assert replica.status()["content_hash"] == store_content_hash(
            shard_store
        )
        shipper.stop(final_ship=False)

    def test_checkpoint_ships_tracker_and_resets_replica(
        self, shard_store, follower_service
    ):
        server, replica = follower_service
        topology, packing, _ = build_word_count(WordCountParams())
        tracker = TopologyTracker()
        tracker.register(topology, packing)
        _write_batch(shard_store, 8)
        CheckpointManager(shard_store, tracker).checkpoint()
        _write_batch(shard_store, 4, start=8)
        shipper = _shipper(shard_store, server)
        shipper.ship_now()
        status = replica.status()
        # Topology registrations only travel inside checkpoints.
        assert status["topologies"] == ["word-count"]
        assert status["checkpoints_received"] == 1
        assert status["applied_lsn"] == 12
        assert status["content_hash"] == store_content_hash(shard_store)
        shipper.stop(final_ship=False)

    def test_bad_offset_bookkeeping_heals_via_409(
        self, shard_store, follower_service
    ):
        server, replica = follower_service
        _write_batch(shard_store, 12)
        shipper = _shipper(shard_store, server)
        shipper.ship_now()
        # Pretend the shipper crashed and restarted with stale offsets:
        # the follower's 409 answer carries the authoritative offset.
        _write_batch(shard_store, 6, start=12)
        shipper._offsets = {name: 0 for name in shipper._offsets}
        shipper.ship_now()
        status = replica.status()
        assert status["applied_lsn"] == 18
        assert status["content_hash"] == store_content_hash(shard_store)
        shipper.stop(final_ship=False)

    def test_replica_dir_is_a_recoverable_data_dir(
        self, shard_store, follower_service, tmp_path
    ):
        """Losing a shard's disk: its follower's directory rescues it."""
        server, replica = follower_service
        topology, packing, _ = build_word_count(WordCountParams())
        tracker = TopologyTracker()
        tracker.register(topology, packing)
        _write_batch(shard_store, 10)
        CheckpointManager(shard_store, tracker).checkpoint()
        _write_batch(shard_store, 10, start=10)
        shipper = _shipper(shard_store, server)
        shipper.ship_now()
        shipper.stop(final_ship=False)
        rescued, rescued_tracker = open_data_dir(replica.replica_dir)
        try:
            assert store_content_hash(rescued) == store_content_hash(
                shard_store
            )
            assert rescued_tracker.names() == ["word-count"]
        finally:
            rescued.close()

    def test_follower_restart_rebuilds_from_mirror(
        self, shard_store, follower_service
    ):
        server, replica = follower_service
        _write_batch(shard_store, 15)
        shipper = _shipper(shard_store, server)
        shipper.ship_now()
        shipper.stop(final_ship=False)
        reborn = FollowerReplica(replica.replica_dir)
        assert reborn.status()["content_hash"] == store_content_hash(
            shard_store
        )
        assert reborn.applied_lsn == 15


class TestFollowerIngestGuards:
    def test_rejects_non_segment_names(self, tmp_path):
        replica = FollowerReplica(tmp_path / "r")
        status, body = replica.receive_segment(
            "../../etc/passwd", 0, b"x"
        )
        assert status == 400
        assert "segment name" in body["error"]

    def test_gap_answers_409_with_held_offset(self, tmp_path):
        replica = FollowerReplica(tmp_path / "r")
        name = f"wal-{1:016d}.log"
        status, body = replica.receive_segment(name, 500, b"late")
        assert status == 409
        assert body["offset"] == 0

    def test_torn_tail_is_mirrored_but_not_applied(
        self, shard_store, tmp_path
    ):
        _write_batch(shard_store, 3)
        shard_store.flush()
        (segment,) = shard_store.wal.segments()
        raw = segment.read_bytes()
        replica = FollowerReplica(tmp_path / "r")
        half = len(raw) // 2
        status, _ = replica.receive_segment(segment.name, 0, raw[:half])
        assert status == 200
        # Some frames may be whole, but the torn tail must not be.
        assert replica.applied_lsn < 3
        status, body = replica.receive_segment(
            segment.name, half, raw[half:]
        )
        assert status == 200
        assert body["applied_lsn"] == 3
        assert replica.status()["content_hash"] == store_content_hash(
            shard_store
        )


class TestFollowerReads:
    def test_reads_work_and_writes_are_refused(
        self, shard_store, follower_service
    ):
        server, _ = follower_service
        topology, packing, _ = build_word_count(WordCountParams())
        tracker = TopologyTracker()
        tracker.register(topology, packing)
        _write_batch(shard_store, 5)
        CheckpointManager(shard_store, tracker).checkpoint()
        shipper = _shipper(shard_store, server)
        shipper.ship_now()
        shipper.stop(final_ship=False)
        client = CaladriusClient(server.host, server.port)
        try:
            assert client.topologies() == ["word-count"]
            series = client.read_metrics("emit-count")
            assert series and series[0]["values"]
            with pytest.raises(ApiError) as excinfo:
                client.write_metrics(
                    "emit-count",
                    [(999960, 1.0)],
                    tags={"topology": "word-count"},
                )
            assert excinfo.value.status == 403
        finally:
            client.close()
