"""One-call recovery of a data directory into live service state."""

from __future__ import annotations

import time
from collections.abc import Callable
from pathlib import Path
from typing import Any

from repro.durability.codec import restore_tracker_state
from repro.durability.store import DurableMetricsStore
from repro.durability.wal import FSYNC_INTERVAL
from repro.heron.tracker import TopologyTracker

__all__ = ["open_data_dir"]


def open_data_dir(
    data_dir: str | Path,
    retention_seconds: int | None = None,
    fsync: str = FSYNC_INTERVAL,
    fsync_interval_seconds: float = 0.05,
    segment_max_bytes: int = 4 * 1024 * 1024,
    clock: Callable[[], float] = time.monotonic,
    faults: Any | None = None,
) -> tuple[DurableMetricsStore, TopologyTracker]:
    """Recover (or initialise) a data directory.

    Returns a :class:`DurableMetricsStore` restored from snapshot + WAL
    replay and a :class:`TopologyTracker` re-registered from the last
    checkpoint's topology snapshot.  A fresh directory yields an empty
    store and tracker — the same call serves first boot and restart.
    """
    store = DurableMetricsStore(
        data_dir,
        retention_seconds=retention_seconds,
        fsync=fsync,
        fsync_interval_seconds=fsync_interval_seconds,
        segment_max_bytes=segment_max_bytes,
        clock=clock,
        faults=faults,
    )
    tracker = TopologyTracker()
    if store.tracker_snapshot is not None:
        restore_tracker_state(tracker, store.tracker_snapshot)
    return store, tracker
