"""ShardManager failover behaviour, driven with stub worker processes.

Real shard workers take seconds to boot (WAL replay, model warmup);
these tests substitute a tiny HTTP stub that announces a port, answers
every GET with a canned JSON body, and optionally exits after a fixed
lifetime — enough to drive the supervisor through crash loops, give-up,
promotion, and the stop/monitor shutdown race in a few seconds.
"""

from __future__ import annotations

import sys
import time

import pytest

from repro.cluster.shard import (
    GAVE_UP,
    READY,
    STOPPED,
    ShardManager,
)

_STUB = '''
import http.server, json, os, sys, threading, time

lifetime = float(sys.argv[1])
body = json.loads(sys.argv[2]) if len(sys.argv) > 2 else {"ready": True}
raw = json.dumps(body).encode("utf8")


class Handler(http.server.BaseHTTPRequestHandler):
    def do_GET(self):
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def log_message(self, *args):
        pass


server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
threading.Thread(target=server.serve_forever, daemon=True).start()
print(f"stub serving on 127.0.0.1:{server.server_address[1]}", flush=True)
if lifetime > 0:
    time.sleep(lifetime)
    os._exit(1)
threading.Event().wait()
'''


@pytest.fixture()
def stub_script(tmp_path):
    path = tmp_path / "stub_worker.py"
    path.write_text(_STUB, encoding="utf8")
    return path


def _wait_for(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _manager(stub_script, lifetime, **kwargs):
    def worker_argv(shard_id, ship_to, epoch):
        return [sys.executable, str(stub_script), str(lifetime)]

    defaults = dict(
        restart_backoff_seconds=0.01,
        poll_interval_seconds=0.02,
        ready_timeout=10.0,
        announce_timeout=20.0,
        unresponsive_timeout_seconds=0,  # stubs answer; skip the probe
    )
    defaults.update(kwargs)
    return ShardManager(worker_argv, None, **defaults)


class TestCrashLoopGiveUp:
    def test_rapid_deaths_end_in_gave_up(self, stub_script):
        """5 rapid deaths and no follower: the shard is marked gave_up."""
        manager = _manager(stub_script, lifetime=0.3)
        try:
            manager.start(1)
            assert manager.state_of(0) == READY
            epoch_after_boot = manager.epoch_of(0)
            assert epoch_after_boot == 1
            assert _wait_for(
                lambda: manager.state_of(0) == GAVE_UP, timeout=60
            ), f"never gave up (state={manager.state_of(0)})"
            (status,) = manager.statuses()
            assert status["state"] == GAVE_UP
            assert status["rapid_deaths"] > 5
            assert "crash loop" in status["last_error"]
            # Every respawn burned a fresh epoch: no generation reuse.
            assert manager.epoch_of(0) > epoch_after_boot
            # A gave-up shard publishes no address (the router 503s).
            assert manager.address_of(0) is None
            assert manager.all_ready() is False
        finally:
            manager.stop_all(timeout=10)

    def test_gave_up_surfaces_through_the_router(self, stub_script):
        """Router healthz shows gave_up; owned topologies answer 503."""
        from repro.cluster.router import RouterApp
        from repro.config import load_config

        manager = _manager(stub_script, lifetime=0.3)
        try:
            manager.start(1)
            assert _wait_for(
                lambda: manager.state_of(0) == GAVE_UP, timeout=60
            )
            router = RouterApp(load_config({}), manager)
            status, payload = router.handle("GET", "/healthz")
            assert status == 200
            assert payload["status"] == "degraded"
            assert payload["shards"][0]["state"] == GAVE_UP
            status, payload = router.handle(
                "POST",
                "/metrics/write",
                body={
                    "name": "arrivals",
                    "samples": [[60, 1.0]],
                    "tags": {"topology": "anything"},
                },
            )
            assert status == 503
            assert payload["shard_state"] == GAVE_UP
            assert payload["retry_after"] >= 1
            router._fanout.shutdown(wait=False)
        finally:
            manager.stop_all(timeout=10)


class TestPromotion:
    def _promotable_manager(self, tmp_path, stub_script, worker_lifetime,
                            follower_body='{"applied_lsn": 0}'):
        def worker_argv(shard_id, ship_to, epoch):
            return [
                sys.executable, str(stub_script), str(worker_lifetime)
            ]

        def follower_argv(shard_id):
            return [
                sys.executable, str(stub_script), "0", follower_body
            ]

        def shard_dirs(shard_id):
            return (
                tmp_path / f"shard-{shard_id}",
                tmp_path / f"replica-{shard_id}",
            )

        for shard_id in (0,):
            (tmp_path / f"shard-{shard_id}").mkdir(exist_ok=True)
            (tmp_path / f"replica-{shard_id}").mkdir(exist_ok=True)
        return ShardManager(
            worker_argv,
            follower_argv,
            restart_backoff_seconds=0.01,
            poll_interval_seconds=0.02,
            ready_timeout=10.0,
            announce_timeout=20.0,
            shard_dirs=shard_dirs,
            epoch_path=tmp_path / "epochs.json",
            unresponsive_timeout_seconds=0,
        )

    def test_crash_loop_promotes_the_follower_once(
        self, tmp_path, stub_script
    ):
        """Give-up with a live follower promotes instead; a second
        crash loop (the promoted dir is just as broken for a stub) then
        genuinely gives up — the promotion budget is one."""
        manager = self._promotable_manager(
            tmp_path, stub_script, worker_lifetime=0.3
        )
        (tmp_path / "replica-0" / "mirror-marker").write_text(
            "from the follower", encoding="utf8"
        )
        try:
            manager.start(1)
            assert _wait_for(
                lambda: manager.state_of(0) == GAVE_UP, timeout=120
            ), f"never settled (state={manager.state_of(0)})"
            (status,) = manager.statuses()
            assert status["promotions"] == 1
            # The follower's byte mirror became the primary directory…
            assert (tmp_path / "shard-0" / "mirror-marker").exists()
            # …the superseded dir was preserved, named by its epoch…
            fenced = list(tmp_path.glob("shard-0-fenced-e*"))
            assert len(fenced) == 1
            # …and a fresh, empty replica dir was created for the next
            # follower generation.
            assert (tmp_path / "replica-0").is_dir()
            assert status["epoch"] == manager.epoch_of(0)
        finally:
            manager.stop_all(timeout=10)

    def test_lagging_data_dir_triggers_validation_promotion(
        self, tmp_path, stub_script
    ):
        """A worker dir that would recover less than the follower holds
        is never respawned onto lost state: the mirror is promoted on
        the first death, no crash loop required."""
        # An empty worker dir peeks as lsn 0; the follower claims 7.
        manager = self._promotable_manager(
            tmp_path,
            stub_script,
            worker_lifetime=2.5,  # outlives _MIN_HEALTHY_UPTIME: no loop
            follower_body='{"applied_lsn": 7}',
        )
        (tmp_path / "replica-0" / "mirror-marker").write_text(
            "x", encoding="utf8"
        )
        try:
            manager.start(1)
            handle = manager.handle(0)
            assert _wait_for(
                lambda: handle.promotions >= 1, timeout=60
            ), "validation promotion never happened"
            assert handle.rapid_deaths == 0  # not the crash-loop path
            assert (tmp_path / "shard-0" / "mirror-marker").exists()
        finally:
            manager.stop_all(timeout=10)


class TestStopRaces:
    def test_stop_all_during_restart_churn_spawns_nothing(
        self, stub_script
    ):
        """stop_all while workers are dying must not race the monitor
        into respawning into a torn-down cluster."""
        manager = _manager(stub_script, lifetime=0.3)
        manager.start(2)
        # Let at least one death/respawn cycle start.
        assert _wait_for(
            lambda: any(
                s.get("restarts", 0) > 0 for s in manager.statuses()
            ),
            timeout=30,
        )
        manager.stop_all(timeout=10)
        assert manager._monitor is None
        states = {s["state"] for s in manager.statuses()}
        assert states == {STOPPED}
        # Every tracked process is dead, and stays dead (no respawn
        # raced past the stop).
        time.sleep(0.5)
        for handle in manager._handles.values():
            if handle.worker is not None:
                assert handle.worker.process.poll() is not None

    def test_stop_all_is_idempotent(self, stub_script):
        manager = _manager(stub_script, lifetime=0)
        manager.start(1)
        manager.stop_all(timeout=10)
        manager.stop_all(timeout=10)  # must not raise
        assert manager.state_of(0) == STOPPED
