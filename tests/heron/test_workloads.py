"""Tests for the ads pipeline: a diamond topology with selectivity < 1.

Beyond structural checks, these are integration tests for behaviours
Word Count cannot exercise: a one-stream/two-subscriber fan-out, a
filtering alpha below 1, and model calibration over a multi-path DAG.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.performance_models import (
    ThroughputPredictionModel,
    calibrate_topology,
)
from repro.errors import TopologyError
from repro.graph.topology_graph import path_count, source_sink_paths
from repro.heron.metrics import MetricNames
from repro.heron.simulation import HeronSimulation, SimulationConfig
from repro.heron.tracker import TopologyTracker
from repro.heron.workloads import AdsPipelineParams, build_ads_pipeline
from repro.timeseries.store import MetricsStore

M = 1e6


@pytest.fixture(scope="module")
def ads_deployment():
    """The ads pipeline swept from light load into parser saturation."""
    params = AdsPipelineParams()
    topology, packing, logic = build_ads_pipeline(params)
    store = MetricsStore()
    sim = HeronSimulation(
        topology, packing, logic, store, SimulationConfig(seed=77)
    )
    # Parser p=3 saturates at 60M events/min.
    for rate in np.arange(10 * M, 90 * M + 1, 16 * M):
        sim.set_source_rate("event-spout", float(rate))
        sim.run(2)
    tracker = TopologyTracker()
    tracker.register(topology, packing)
    return params, topology, logic, store, tracker


class TestStructure:
    def test_diamond_paths(self):
        topology, _, _ = build_ads_pipeline()
        paths = source_sink_paths(topology)
        assert ["event-spout", "parser", "auditor"] in paths
        assert [
            "event-spout", "parser", "filterer", "aggregator"
        ] in paths
        assert len(paths) == 2

    def test_path_count_multiplies_parallelisms(self):
        params = AdsPipelineParams()
        topology, _, _ = build_ads_pipeline(params)
        expected = (
            params.spout_parallelism
            * params.parser_parallelism
            * params.auditor_parallelism
            + params.spout_parallelism
            * params.parser_parallelism
            * params.filterer_parallelism
            * params.aggregator_parallelism
        )
        assert path_count(topology) == expected

    def test_selectivity_validation(self):
        with pytest.raises(TopologyError):
            AdsPipelineParams(filter_selectivity=0.0)
        with pytest.raises(TopologyError):
            AdsPipelineParams(campaigns=0)


class TestSimulationBehaviour:
    def test_shared_stream_feeds_both_subscribers_fully(self, ads_deployment):
        _, _, _, store, _ = ads_deployment
        parser_out = store.aggregate(
            MetricNames.EMIT_COUNT, {"component": "parser"}
        )
        filterer_in = store.aggregate(
            MetricNames.RECEIVED_COUNT, {"component": "filterer"}
        )
        auditor_in = store.aggregate(
            MetricNames.RECEIVED_COUNT, {"component": "auditor"}
        )
        # Storm stream semantics: each subscriber receives the FULL
        # stream, so both inputs match the parser's emission.
        a, b = parser_out.align(filterer_in)
        assert np.allclose(a.values, b.values, rtol=0.02)
        a, c = parser_out.align(auditor_in)
        assert np.allclose(a.values, c.values, rtol=0.02)

    def test_filter_reduces_rate_by_selectivity(self, ads_deployment):
        params, _, _, store, _ = ads_deployment
        filterer_in = store.aggregate(
            MetricNames.EXECUTE_COUNT, {"component": "filterer"}
        )
        filterer_out = store.aggregate(
            MetricNames.EMIT_COUNT, {"component": "filterer"}
        )
        ratio = filterer_out.sum() / filterer_in.sum()
        assert ratio == pytest.approx(params.filter_selectivity, rel=0.01)

    def test_parser_is_the_bottleneck(self, ads_deployment):
        params, _, _, store, _ = ads_deployment
        parser_in = store.aggregate(
            MetricNames.EXECUTE_COUNT, {"component": "parser"}
        )
        cap = params.parser_capacity_tps * 60 * params.parser_parallelism
        assert parser_in.max() <= cap * 1.05
        bp = store.aggregate(
            MetricNames.BACKPRESSURE_TIME_MS, {"component": "parser"}
        )
        assert bp.max() > 10_000


class TestModelling:
    def test_calibration_over_the_diamond(self, ads_deployment):
        params, _, logic, store, tracker = ads_deployment
        tracked = tracker.get("ads-pipeline")
        model, fits = calibrate_topology(tracked, store)
        assert set(fits) == {"parser", "filterer", "aggregator", "auditor"}
        assert fits["parser"].alpha == pytest.approx(1.0, rel=0.02)
        assert fits["filterer"].alpha == pytest.approx(
            params.filter_selectivity, rel=0.02
        )
        true_parser_sp = (
            logic["parser"].capacity_tps * 60 * params.parser_parallelism
        )
        assert fits["parser"].saturation_point == pytest.approx(
            true_parser_sp, rel=0.10
        )

    def test_propagation_through_selectivity(self, ads_deployment):
        _, _, _, store, tracker = ads_deployment
        tracked = tracker.get("ads-pipeline")
        model, _ = calibrate_topology(tracked, store)
        report = model.propagate({"event-spout": 30 * M})
        # Filter reduces by selectivity; aggregator sees the reduction.
        assert report["aggregator"]["input"] == pytest.approx(
            0.35 * 30 * M, rel=0.05
        )
        assert report["auditor"]["input"] == pytest.approx(30 * M, rel=0.05)

    def test_performance_model_reports_both_paths(self, ads_deployment):
        _, _, _, store, tracker = ads_deployment
        model = ThroughputPredictionModel(tracker, store)
        prediction = model.predict("ads-pipeline", source_rate=30 * M)
        assert len(prediction.paths) == 2
        assert prediction.bottleneck == "parser"

    def test_scaling_the_parser_raises_the_known_limit(self, ads_deployment):
        _, _, _, store, tracker = ads_deployment
        model = ThroughputPredictionModel(tracker, store)
        base = model.predict("ads-pipeline", source_rate=30 * M)
        scaled = model.predict(
            "ads-pipeline", source_rate=30 * M, parallelisms={"parser": 12}
        )
        # Eq. 9: quadrupling the parser quadruples its saturation point.
        assert scaled.saturation_source_rate == pytest.approx(
            4 * base.saturation_source_rate, rel=0.01
        )
        # The other components never saturated in the observed data, so
        # the calibrated model honestly knows no limit for them: the
        # (rescaled) parser remains the only *known* constraint.  This
        # is the data-coverage limitation the paper's calibration also
        # has — "we need at least two data points: one in the
        # non-saturation interval and one in the saturation interval".
        assert scaled.bottleneck == "parser"
