"""Workload-diversity matrix: generator + scenario differential tests.

The package that turns "as many scenarios as you can imagine" into an
enforced grid (ROADMAP: the PDSP-Bench-style workload matrix):

* :mod:`repro.workloads.generator` — seeded parameterized topology
  generator (diamond, fan-in join, deep chain, multi-spout fan-out) with
  windowed/stateful bolt profiles, Zipf-skewed fields groupings and
  auto-assigned capacities; plus multi-tenant cluster generation;
* :mod:`repro.workloads.scenarios` — traffic patterns and canonical
  per-cell fault plans over the existing fault kinds;
* :mod:`repro.workloads.trace` — canonical simulation traces and the
  SHA-256 regression hashes behind the golden fixtures;
* :mod:`repro.workloads.matrix` — the (shape × fault × traffic) runner
  producing ``matrix_report.json`` with per-cell calibration MAPE and
  regression thresholds (the ``caladrius matrix`` command).
"""

from repro.workloads.generator import (
    SHAPES,
    GeneratedWorkload,
    GeneratorParams,
    generate_cluster,
    generate_workload,
    workload_seed,
)
from repro.workloads.matrix import (
    DEFAULT_THRESHOLDS,
    REPORT_SCHEMA,
    MatrixCell,
    build_report,
    cell_seed,
    default_grid,
    report_json,
    run_cell,
    run_matrix,
)
from repro.workloads.scenarios import (
    FAULTS,
    TRAFFICS,
    fault_plan_for,
    traffic_schedule,
)
from repro.workloads.trace import (
    canonical_store_trace,
    config_trace,
    golden_trace_payload,
    trace_hash,
    workload_trace,
)

__all__ = [
    "SHAPES",
    "FAULTS",
    "TRAFFICS",
    "DEFAULT_THRESHOLDS",
    "REPORT_SCHEMA",
    "GeneratedWorkload",
    "GeneratorParams",
    "MatrixCell",
    "build_report",
    "canonical_store_trace",
    "config_trace",
    "cell_seed",
    "default_grid",
    "fault_plan_for",
    "generate_cluster",
    "generate_workload",
    "golden_trace_payload",
    "report_json",
    "run_cell",
    "run_matrix",
    "trace_hash",
    "traffic_schedule",
    "workload_seed",
    "workload_trace",
]
