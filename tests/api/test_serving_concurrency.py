"""Concurrent API use: single-flight, byte-identical answers, live writes.

Hammers a real :class:`CaladriusServer` from a thread pool with mixed
identical/distinct requests and asserts the serving-layer contract:

* each distinct computation executes exactly once no matter how many
  concurrent clients ask for it (single-flight + cache);
* served responses are byte-identical to what an uncached service
  computes for the same inputs;
* metrics writes racing with reads never corrupt aggregation — every
  response remains byte-identical to the clean baseline while the cache
  is being invalidated underneath;
* overload sheds with 429 + ``Retry-After`` instead of queueing forever.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api.app import CaladriusApp
from repro.api.client import CaladriusClient
from repro.api.server import CaladriusServer
from repro.config import load_config
from repro.heron.simulation import HeronSimulation, SimulationConfig
from repro.heron.tracker import TopologyTracker
from repro.heron.wordcount import WordCountParams, build_word_count
from repro.timeseries.store import MetricsStore

M = 1e6

_MODEL_CONFIG = {
    "traffic_models": ["stats-summary"],
    "performance_models": ["throughput-prediction"],
}


@pytest.fixture(scope="module")
def private_deployment():
    """A deployment not shared with other tests, safe to write into."""
    topology, packing, logic = build_word_count(
        WordCountParams(
            spout_parallelism=4,
            splitter_parallelism=2,
            counter_parallelism=4,
        )
    )
    store = MetricsStore()
    sim = HeronSimulation(
        topology, packing, logic, store, SimulationConfig(seed=11)
    )
    for rate in np.arange(4 * M, 44 * M + 1, 8 * M):
        sim.set_source_rate("sentence-spout", float(rate))
        sim.run(2)
    tracker = TopologyTracker()
    tracker.register(topology, packing)
    return tracker, store


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


class TestSingleFlightOverHttp:
    def test_distinct_computations_run_once_and_match_uncached(
        self, private_deployment
    ):
        tracker, store = private_deployment
        config = load_config(_MODEL_CONFIG)
        app = CaladriusApp(config, tracker, store)
        uncached = CaladriusApp(
            load_config({**_MODEL_CONFIG, "serving": {"enabled": False}}),
            tracker,
            store,
        )
        try:
            rates = [8 * M, 12 * M, 16 * M, 20 * M]
            expected = {}
            for rate in rates:
                status, payload = uncached.handle(
                    "POST",
                    "/model/topology/heron/word-count",
                    {},
                    {"source_rate": rate},
                )
                assert status == 200
                expected[rate] = canonical(payload)

            barrier = threading.Barrier(16, timeout=30)

            def hammer(rate):
                client = CaladriusClient(
                    "127.0.0.1", server.port, timeout=60, retries=0
                )
                barrier.wait()
                return rate, client.performance(
                    "word-count", source_rate=rate
                )

            with CaladriusServer(app) as server:
                with ThreadPoolExecutor(max_workers=16) as pool:
                    # 16 concurrent requests over 4 distinct rates.
                    futures = [
                        pool.submit(hammer, rates[i % len(rates)])
                        for i in range(16)
                    ]
                    responses = [f.result(120) for f in futures]
                status, stats = app.handle("GET", "/serving/stats")
            assert status == 200
            # Every response is byte-identical to the uncached baseline.
            for rate, payload in responses:
                assert canonical(payload) == expected[rate]
            # Each distinct request computed exactly once; the other 12
            # were answered by coalescing or the cache.
            assert stats["computations"] == len(rates)
            assert stats["requests"] == 16
            assert stats["hits"] + stats["coalesced"] == 16 - len(rates)
        finally:
            app.shutdown()
            uncached.shutdown()

    def test_writes_during_reads_never_corrupt_aggregation(
        self, private_deployment
    ):
        tracker, store = private_deployment
        config = load_config(_MODEL_CONFIG)
        app = CaladriusApp(config, tracker, store)
        uncached = CaladriusApp(
            load_config({**_MODEL_CONFIG, "serving": {"enabled": False}}),
            tracker,
            store,
        )
        try:
            status, baseline = uncached.handle(
                "GET",
                "/model/traffic/heron/word-count",
                {"horizon_minutes": "10"},
            )
            assert status == 200
            expected = canonical(baseline)

            stop = threading.Event()
            written = []

            def writer():
                # A metric the models do not read, tagged to the served
                # topology: every write invalidates the cache without
                # changing the correct answer.
                ts = 0
                while not stop.is_set():
                    ts += 60
                    store.write(
                        "serving-test-noise", ts, 1.0,
                        {"topology": "word-count"},
                    )
                    written.append(ts)
                    time.sleep(0.002)

            def reader():
                client = CaladriusClient(
                    "127.0.0.1", server.port, timeout=60, retries=0
                )
                payloads = []
                for _ in range(5):
                    payloads.append(
                        client.traffic("word-count", horizon_minutes=10)
                    )
                return payloads

            with CaladriusServer(app) as server:
                writer_thread = threading.Thread(target=writer)
                writer_thread.start()
                try:
                    with ThreadPoolExecutor(max_workers=8) as pool:
                        futures = [pool.submit(reader) for _ in range(8)]
                        results = [f.result(120) for f in futures]
                finally:
                    stop.set()
                    writer_thread.join(10)
            # Aggregation stayed correct under racing invalidations.
            for payloads in results:
                for payload in payloads:
                    assert canonical(payload) == expected
            # And the writes themselves all landed, in order.
            noise = store.get(
                "serving-test-noise", {"topology": "word-count"}
            )
            assert list(noise.timestamps) == written
        finally:
            app.shutdown()
            uncached.shutdown()


class TestLoadSheddingOverHttp:
    def test_429_with_retry_after_header(self, private_deployment):
        tracker, store = private_deployment
        config = load_config(
            {
                **_MODEL_CONFIG,
                "serving": {"max_concurrent": 1, "max_queue": 1},
            }
        )
        app = CaladriusApp(config, tracker, store)
        try:
            barrier = threading.Barrier(8, timeout=30)

            def hammer(rate):
                connection = http.client.HTTPConnection(
                    "127.0.0.1", server.port, timeout=60
                )
                try:
                    body = json.dumps({"source_rate": rate}).encode()
                    barrier.wait()
                    connection.request(
                        "POST",
                        "/model/topology/heron/word-count",
                        body=body,
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    payload = json.loads(response.read().decode())
                    return (
                        response.status,
                        response.getheader("Retry-After"),
                        payload,
                    )
                finally:
                    connection.close()

            with CaladriusServer(app) as server:
                with ThreadPoolExecutor(max_workers=8) as pool:
                    # 8 concurrent *distinct* requests (no coalescing)
                    # against 1 slot + 1 queue place: most must shed.
                    futures = [
                        pool.submit(hammer, (30 + i) * M) for i in range(8)
                    ]
                    outcomes = [f.result(120) for f in futures]
            shed = [o for o in outcomes if o[0] == 429]
            served = [o for o in outcomes if o[0] == 200]
            assert len(served) >= 1
            assert len(shed) >= 1
            for status, retry_after, payload in shed:
                assert retry_after is not None
                assert int(retry_after) >= 1
                assert payload["retry_after"] >= 1
                assert "error" in payload
            status, stats = app.handle("GET", "/serving/stats")
            assert stats["shed"] == len(shed)
        finally:
            app.shutdown()


class TestServingStatsEndpoint:
    def test_disabled_layer_reports_disabled(self, private_deployment):
        tracker, store = private_deployment
        app = CaladriusApp(
            load_config({**_MODEL_CONFIG, "serving": {"enabled": False}}),
            tracker,
            store,
        )
        try:
            status, payload = app.handle("GET", "/serving/stats")
            assert status == 200
            assert payload["enabled"] is False
            # the circuit breaker reports here even without a serving layer
            assert payload["breaker"]["state"] == "closed"
        finally:
            app.shutdown()

    def test_client_helper_fetches_stats(self, private_deployment):
        tracker, store = private_deployment
        app = CaladriusApp(load_config(_MODEL_CONFIG), tracker, store)
        try:
            with CaladriusServer(app) as server:
                client = CaladriusClient("127.0.0.1", server.port)
                stats = client.serving_stats()
            assert stats["enabled"] is True
            assert "hit_rate" in stats
            assert "queue_depth" in stats
        finally:
            app.shutdown()

    def test_priority_param_validated(self, private_deployment):
        tracker, store = private_deployment
        app = CaladriusApp(load_config(_MODEL_CONFIG), tracker, store)
        try:
            status, payload = app.handle(
                "GET",
                "/model/traffic/heron/word-count",
                {"priority": "urgent"},
            )
            assert status == 400
            assert "priority" in payload["error"]
        finally:
            app.shutdown()
