"""Tests for the Caladrius traffic-model tier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.traffic_models import (
    ProphetTrafficModel,
    StatsSummaryTrafficModel,
)
from repro.errors import ModelError
from repro.forecasting.summary import SummaryForecaster
from repro.heron.metrics import MetricNames
from repro.heron.tracker import TopologyTracker
from repro.heron.wordcount import WordCountParams, build_word_count
from repro.timeseries.store import MetricsStore

M = 1e6


@pytest.fixture(scope="module")
def traffic_setup():
    """A registered topology with 3 hours of seasonal spout traffic."""
    topology, packing, _ = build_word_count(
        WordCountParams(spout_parallelism=2)
    )
    tracker = TopologyTracker()
    tracker.register(topology, packing)
    store = MetricsStore()
    rng = np.random.default_rng(0)
    minutes = 180
    for i in range(2):  # two spout instances with different scales
        scale = 1.0 + i
        for minute in range(minutes):
            t = minute * 60
            value = scale * (
                5 * M + 2 * M * np.sin(2 * np.pi * minute / 60.0)
            ) + rng.normal(0, 0.05 * M)
            store.write(
                MetricNames.SOURCE_COUNT,
                t,
                max(0.0, value),
                {
                    "topology": "word-count",
                    "component": "sentence-spout",
                    "instance": f"sentence-spout_{i}",
                    "container": "1",
                },
            )
    return tracker, store


def hourly_forecaster():
    # An hourly "seasonality" matching the synthetic 60-minute cycle.
    from repro.forecasting.prophet_lite import ProphetLite, Seasonality

    return ProphetLite(
        seasonalities=[Seasonality("hourly", 3600, 3)], n_changepoints=3
    )


class TestProphetTrafficModel:
    def test_aggregate_mode(self, traffic_setup):
        tracker, store = traffic_setup
        model = ProphetTrafficModel(
            tracker, store, make_forecaster=hourly_forecaster
        )
        prediction = model.predict("word-count", None, horizon_minutes=30)
        assert prediction.model == "prophet"
        assert prediction.horizon_minutes == 30
        # Ground truth over minutes 180..209: the summed traffic is
        # 15M + 6M*sin(2*pi*m/60), whose mean over that half-cycle is
        # 15M + 6M * 2/pi ~= 18.8M.
        truth = np.mean(
            [
                15 * M + 6 * M * np.sin(2 * np.pi * m / 60.0)
                for m in range(180, 210)
            ]
        )
        assert prediction.summary["mean"] == pytest.approx(truth, rel=0.1)
        assert "sentence-spout" in prediction.per_spout
        assert prediction.per_instance == {}

    def test_per_instance_mode(self, traffic_setup):
        tracker, store = traffic_setup
        model = ProphetTrafficModel(
            tracker,
            store,
            per_instance=True,
            make_forecaster=hourly_forecaster,
        )
        prediction = model.predict("word-count", None, horizon_minutes=30)
        assert set(prediction.per_instance) == {
            "sentence-spout_0",
            "sentence-spout_1",
        }
        inst0 = prediction.per_instance["sentence-spout_0"]["mean"]
        inst1 = prediction.per_instance["sentence-spout_1"]["mean"]
        assert inst1 == pytest.approx(2 * inst0, rel=0.2)

    def test_source_window_restricts_history(self, traffic_setup):
        tracker, store = traffic_setup
        model = ProphetTrafficModel(
            tracker, store, make_forecaster=lambda: SummaryForecaster("mean")
        )
        full = model.predict("word-count", None, 10)
        windowed = model.predict("word-count", 30, 10)
        assert full.summary["mean"] != windowed.summary["mean"]

    def test_horizon_validation(self, traffic_setup):
        tracker, store = traffic_setup
        model = ProphetTrafficModel(tracker, store)
        with pytest.raises(ModelError):
            model.predict("word-count", None, 0)

    def test_factory_conflicts_with_options(self, traffic_setup):
        tracker, store = traffic_setup
        with pytest.raises(ModelError, match="conflict"):
            ProphetTrafficModel(
                tracker,
                store,
                make_forecaster=hourly_forecaster,
                n_changepoints=3,
            )

    def test_forecaster_options_forwarded(self, traffic_setup):
        tracker, store = traffic_setup
        model = ProphetTrafficModel(tracker, store, n_changepoints=2)
        prediction = model.predict("word-count", None, 5)
        assert len(prediction.per_spout) == 1

    def test_as_dict_is_json_friendly(self, traffic_setup):
        import json

        tracker, store = traffic_setup
        model = ProphetTrafficModel(
            tracker, store, make_forecaster=hourly_forecaster
        )
        prediction = model.predict("word-count", None, 10)
        assert json.dumps(prediction.as_dict())


class TestStatsSummaryTrafficModel:
    def test_mean_projection(self, traffic_setup):
        tracker, store = traffic_setup
        model = StatsSummaryTrafficModel(tracker, store, statistic="mean")
        prediction = model.predict("word-count", None, 15)
        assert prediction.model == "stats-summary-mean"
        assert prediction.summary["mean"] == pytest.approx(15 * M, rel=0.15)

    def test_peak_statistic_exceeds_mean(self, traffic_setup):
        tracker, store = traffic_setup
        mean_model = StatsSummaryTrafficModel(tracker, store, "mean")
        max_model = StatsSummaryTrafficModel(tracker, store, "max")
        mean_pred = mean_model.predict("word-count", None, 5)
        max_pred = max_model.predict("word-count", None, 5)
        assert max_pred.summary["mean"] > mean_pred.summary["mean"]

    def test_unknown_topology(self, traffic_setup):
        tracker, store = traffic_setup
        model = StatsSummaryTrafficModel(tracker, store)
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            model.predict("missing", None, 5)
