"""The service managing several topologies at once.

Caladrius at Twitter served a whole cluster's topologies from one
deployment; these tests register both workloads (Word Count and the ads
pipeline) behind one app and check that modelling requests stay
correctly scoped.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.app import CaladriusApp
from repro.config import load_config
from repro.heron.simulation import HeronSimulation, SimulationConfig
from repro.heron.tracker import TopologyTracker
from repro.heron.wordcount import WordCountParams, build_word_count
from repro.heron.workloads import AdsPipelineParams, build_ads_pipeline
from repro.timeseries.store import MetricsStore

M = 1e6


@pytest.fixture(scope="module")
def multi_app():
    store = MetricsStore()
    tracker = TopologyTracker()

    wc_topology, wc_packing, wc_logic = build_word_count(
        WordCountParams(splitter_parallelism=2, counter_parallelism=4)
    )
    wc_sim = HeronSimulation(
        wc_topology, wc_packing, wc_logic, store, SimulationConfig(seed=1)
    )
    ads_topology, ads_packing, ads_logic = build_ads_pipeline(
        AdsPipelineParams()
    )
    ads_sim = HeronSimulation(
        ads_topology, ads_packing, ads_logic, store, SimulationConfig(seed=2)
    )
    for rate in np.arange(8 * M, 40 * M + 1, 8 * M):
        wc_sim.set_source_rate("sentence-spout", float(rate))
        ads_sim.set_source_rate("event-spout", float(rate) * 2)
        wc_sim.run(2)
        ads_sim.run(2)
    tracker.register(wc_topology, wc_packing)
    tracker.register(ads_topology, ads_packing)
    app = CaladriusApp(
        load_config(
            {
                "traffic_models": ["stats-summary"],
                "performance_models": ["throughput-prediction"],
            }
        ),
        tracker,
        store,
    )
    yield app
    app.shutdown()


class TestMultiTopologyService:
    def test_both_topologies_listed(self, multi_app):
        status, payload = multi_app.handle("GET", "/topologies")
        assert status == 200
        assert payload["topologies"] == ["ads-pipeline", "word-count"]

    def test_predictions_are_scoped_per_topology(self, multi_app):
        _, wc = multi_app.handle(
            "POST",
            "/model/topology/heron/word-count",
            body={"source_rate": 10 * M},
        )
        _, ads = multi_app.handle(
            "POST",
            "/model/topology/heron/ads-pipeline",
            body={"source_rate": 10 * M},
        )
        wc_result = wc["results"][0]
        ads_result = ads["results"][0]
        assert set(wc_result["parallelisms"]) == {
            "sentence-spout", "splitter", "counter",
        }
        assert "parser" in ads_result["parallelisms"]
        # Word Count amplifies by the sentence length; the ads pipeline
        # filters down to 35% — their outputs must reflect their own
        # topologies, not each other's.
        assert wc_result["output_rate"] == pytest.approx(
            7.635 * 10 * M, rel=0.05
        )
        assert ads_result["output_rate"] == pytest.approx(
            (1 + 0.35) * 10 * M, rel=0.05
        )

    def test_traffic_forecasts_read_the_right_spout(self, multi_app):
        _, wc = multi_app.handle(
            "GET",
            "/model/traffic/heron/word-count",
            {"horizon_minutes": "5"},
        )
        _, ads = multi_app.handle(
            "GET",
            "/model/traffic/heron/ads-pipeline",
            {"horizon_minutes": "5"},
        )
        wc_spouts = wc["results"][0]["per_spout"]
        ads_spouts = ads["results"][0]["per_spout"]
        assert set(wc_spouts) == {"sentence-spout"}
        assert set(ads_spouts) == {"event-spout"}
        # The ads spout was driven at twice the Word Count rate.
        assert ads_spouts["event-spout"]["mean"] > (
            1.5 * wc_spouts["sentence-spout"]["mean"]
        )

    def test_parallelism_proposal_targets_only_its_topology(self, multi_app):
        _, payload = multi_app.handle(
            "POST",
            "/model/topology/heron/ads-pipeline",
            body={"source_rate": 10 * M, "parallelisms": {"parser": 9}},
        )
        result = payload["results"][0]
        assert result["parallelisms"]["parser"] == 9
        # Word Count unchanged.
        _, wc = multi_app.handle("GET", "/topology/word-count/logical")
        assert wc["bolts"]["splitter"]["parallelism"] == 2

    def test_unknown_component_proposal_errors_cleanly(self, multi_app):
        status, payload = multi_app.handle(
            "POST",
            "/model/topology/heron/word-count",
            body={"source_rate": 1 * M, "parallelisms": {"parser": 2}},
        )
        assert status == 400
        assert "parser" in payload["error"]
