"""Spotting a failing resource through the golden signals.

The paper's introduction opens with "internal monitoring jobs that allow
engineers to react to service failures before they cascade", and its
backpressure section names the cause: a component falls behind "due to a
failed resource or unexpectedly high source rate".  Telling those two
apart matters — one needs a replacement, the other a scale-out.

This example runs the Word Count topology at a comfortable load, then
degrades one Splitter instance to 40% capacity (a straggler on a bad
host).  The metrics tell the story:

* the topology backpressure metric fires (the symptom);
* per-instance backpressure time localises the exact instance;
* Caladrius's capacity model disambiguates the cause: the measured
  traffic is far below the calibrated saturation point, so this is NOT
  an overload — scaling out would mask the problem instead of fixing it.

Run with:  python examples/failure_detection.py
"""

from __future__ import annotations

import numpy as np

from repro.core import BackpressureEvaluationModel
from repro.heron import (
    HeronSimulation,
    SimulationConfig,
    TopologyTracker,
    WordCountParams,
    build_word_count,
)
from repro.heron.metrics import MetricNames
from repro.timeseries import MetricsStore

M = 1e6
LOAD = 16 * M  # 16M over splitter p=2: 8M per instance, 73% utilisation


def main() -> None:
    params = WordCountParams(splitter_parallelism=2, counter_parallelism=4)
    topology, packing, logic = build_word_count(params)
    store = MetricsStore()
    sim = HeronSimulation(
        topology, packing, logic, store, SimulationConfig(seed=13)
    )
    tracker = TopologyTracker()
    tracker.register(topology, packing)

    print(f"healthy operation at {LOAD / M:.0f}M tuples/min "
          "(sweep first so the models can calibrate)...")
    for rate in np.arange(6 * M, 30 * M + 1, 6 * M):
        sim.set_source_rate("sentence-spout", float(rate))
        sim.run(2)
    # The sweep's saturated phase left an external backlog; let the
    # topology drain it before steady-state operation begins.
    sim.set_source_rate("sentence-spout", 2 * M)
    sim.run(4)
    sim.set_source_rate("sentence-spout", LOAD)
    sim.run(3)
    bp = store.get(
        MetricNames.TOPOLOGY_BACKPRESSURE_TIME_MS, {"topology": "word-count"}
    )
    print(f"  topology backpressure: {bp.values[-1]:.0f} ms/min (clean)")

    print("\ninjecting a straggler: splitter_0 degraded to 40% capacity")
    sim.set_instance_capacity_factor("splitter", 0, 0.4)
    sim.run(6)

    bp = store.get(
        MetricNames.TOPOLOGY_BACKPRESSURE_TIME_MS, {"topology": "word-count"}
    )
    print(f"  topology backpressure: {bp.values[-1]:.0f} ms/min  <- symptom")

    print("\nper-instance backpressure time (last minute):")
    suspect = None
    for index in range(params.splitter_parallelism):
        series = store.aggregate(
            MetricNames.BACKPRESSURE_TIME_MS,
            {"component": "splitter", "instance": f"splitter_{index}"},
        )
        value = series.values[-1]
        marker = ""
        if value > 30_000:
            suspect = f"splitter_{index}"
            marker = "  <- localised"
        print(f"  splitter_{index}: {value:>7.0f} ms{marker}")

    # Disambiguate overload from failure with the calibrated model:
    # what does the model say this topology *should* sustain?
    model = BackpressureEvaluationModel(tracker, store)
    assessment = model.predict("word-count", source_rate=LOAD)
    print(f"\ncalibrated saturation point: "
          f"{assessment.saturation_source_rate / M:.1f}M tuples/min; "
          f"current traffic {LOAD / M:.0f}M")
    if LOAD < 0.8 * assessment.saturation_source_rate:
        print(f"verdict: traffic is well below capacity — {suspect} is a "
              "FAILED RESOURCE, not an overload.")
        print("action : replace/restart the instance; scaling out would "
              "only dilute the symptom.")
    else:
        print("verdict: the topology is near saturation — scale out.")

    print("\nrestoring the instance...")
    sim.set_instance_capacity_factor("splitter", 0, 1.0)
    sim.run(10)  # the catch-up backlog takes a few minutes to drain
    bp = store.get(
        MetricNames.TOPOLOGY_BACKPRESSURE_TIME_MS, {"topology": "word-count"}
    )
    print(f"  topology backpressure: {bp.values[-1]:.0f} ms/min (recovered)")


if __name__ == "__main__":
    main()
