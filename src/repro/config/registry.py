"""Model registry: config names → constructed model instances.

The paper's API tier includes a "Config and Class Loader" that turns the
YAML model list into live model objects.  :func:`build_registry` is that
loader: it instantiates every enabled traffic and performance model with
its configured options, bound to the shared tracker and metrics store.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.loader import CaladriusConfig
from repro.core.performance_models import (
    BackpressureEvaluationModel,
    PerformanceModel,
    ThroughputPredictionModel,
)
from repro.core.traffic_models import (
    ProphetTrafficModel,
    StatsSummaryTrafficModel,
    TrafficModel,
)
from repro.errors import ConfigError
from repro.forecasting.holt_winters import HoltWinters
from repro.heron.tracker import TopologyTracker
from repro.timeseries.store import MetricsStore

__all__ = ["ModelRegistry", "build_registry"]


@dataclass(frozen=True)
class ModelRegistry:
    """The live model instances the API tier dispatches to."""

    traffic: dict[str, TrafficModel]
    performance: dict[str, PerformanceModel]

    def traffic_model(self, name: str | None) -> list[TrafficModel]:
        """Models to run: the named one, or all when ``name`` is None."""
        if name is None:
            return list(self.traffic.values())
        if name not in self.traffic:
            raise ConfigError(f"traffic model {name!r} is not enabled")
        return [self.traffic[name]]

    def performance_model(self, name: str | None) -> list[PerformanceModel]:
        """Models to run: the named one, or all when ``name`` is None."""
        if name is None:
            return list(self.performance.values())
        if name not in self.performance:
            raise ConfigError(f"performance model {name!r} is not enabled")
        return [self.performance[name]]


def build_registry(
    config: CaladriusConfig,
    tracker: TopologyTracker,
    store: MetricsStore,
) -> ModelRegistry:
    """Instantiate every enabled model with its configured options."""
    traffic: dict[str, TrafficModel] = {}
    for name in config.traffic_models:
        options = config.options_for(name)
        if name == "prophet":
            traffic[name] = ProphetTrafficModel(tracker, store, **options)
        elif name == "prophet-per-instance":
            traffic[name] = ProphetTrafficModel(
                tracker, store, per_instance=True, **options
            )
        elif name == "stats-summary":
            traffic[name] = StatsSummaryTrafficModel(tracker, store, **options)
        elif name == "holt-winters":
            model = ProphetTrafficModel(
                tracker,
                store,
                make_forecaster=lambda options=dict(options): HoltWinters(
                    **options
                ),
            )
            model.name = "holt-winters"
            traffic[name] = model
        else:  # pragma: no cover - load_config already validates names
            raise ConfigError(f"unknown traffic model {name!r}")
    performance: dict[str, PerformanceModel] = {}
    for name in config.performance_models:
        options = config.options_for(name)
        if name == "throughput-prediction":
            performance[name] = ThroughputPredictionModel(
                tracker, store, **options
            )
        elif name == "backpressure-evaluation":
            performance[name] = BackpressureEvaluationModel(
                tracker, store, **options
            )
        else:  # pragma: no cover - load_config already validates names
            raise ConfigError(f"unknown performance model {name!r}")
    return ModelRegistry(traffic=traffic, performance=performance)
