"""Engine-level behavior: calibrate once, rank, invalidate on new data."""

from __future__ import annotations

import pytest

import repro.sweep.artifact as artifact_module
from repro.errors import ModelError
from repro.sweep import CalibrationArtifact, PlanSweepEngine

from tests.sweep.conftest import M, plan_grid

RATE = 30 * M


class TestArtifactMemoization:
    def test_artifact_reused_while_data_unchanged(self, sweep_engine):
        first = sweep_engine.artifact("word-count")
        second = sweep_engine.artifact("word-count")
        assert first is second
        stats = sweep_engine.stats()
        assert stats["artifact_hits"] == 1
        assert stats["artifact_misses"] == 1

    def test_store_write_invalidates(self, deployed_wordcount, sweep_engine):
        _, _, _, store, _ = deployed_wordcount
        first = sweep_engine.artifact("word-count")
        store.write(
            "execute-count", 10**7, 1.0,
            {"topology": "word-count", "component": "splitter",
             "instance": "splitter_0", "container": "1"},
        )
        second = sweep_engine.artifact("word-count")
        assert first is not second
        assert second.data_version > first.data_version

    def test_calibration_runs_once_per_version(self, deployed_wordcount,
                                               monkeypatch):
        _, _, _, store, tracker = deployed_wordcount
        engine = PlanSweepEngine(tracker, store)
        calls = {"n": 0}
        original = artifact_module.calibrate_topology

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(artifact_module, "calibrate_topology", counting)
        for _ in range(5):
            engine.sweep("word-count", RATE, plan_grid(3, 3))
        assert calls["n"] == 1

    def test_explicit_invalidate(self, sweep_engine):
        first = sweep_engine.artifact("word-count")
        sweep_engine.invalidate("word-count")
        second = sweep_engine.artifact("word-count")
        assert first is not second

    def test_artifact_hash_tracks_identity(self, sweep_engine):
        artifact = sweep_engine.artifact("word-count")
        clone = CalibrationArtifact(
            topology_name=artifact.topology_name,
            cluster=artifact.cluster,
            environ=artifact.environ,
            topology=artifact.topology,
            base=artifact.base,
            fits=artifact.fits,
            cpu_models=artifact.cpu_models,
            paths=artifact.paths,
            plan_revision=artifact.plan_revision,
            data_version=artifact.data_version + 1,
            warmup_minutes=artifact.warmup_minutes,
        )
        assert clone.artifact_hash != artifact.artifact_hash


class TestSweepPayload:
    def test_ranked_by_output_rate(self, sweep_engine):
        payload = sweep_engine.sweep("word-count", RATE, plan_grid(4, 4))
        assert payload["topology"] == "word-count"
        assert payload["model"] == "plan-sweep"
        assert payload["plan_count"] == 16
        ranked = payload["ranked"]
        assert [e["rank"] for e in ranked] == list(range(1, 17))
        rates = [e["output_rate"] for e in ranked]
        assert rates == sorted(rates, reverse=True)

    def test_top_k_slices_after_ranking(self, sweep_engine):
        full = sweep_engine.sweep("word-count", RATE, plan_grid(4, 4))
        top = sweep_engine.sweep("word-count", RATE, plan_grid(4, 4), top_k=3)
        assert top["plan_count"] == 16
        assert len(top["ranked"]) == 3
        assert top["ranked"] == full["ranked"][:3]

    def test_entries_carry_plan_details(self, sweep_engine):
        payload = sweep_engine.sweep(
            "word-count", RATE, [{"splitter": 6, "counter": 6}]
        )
        (entry,) = payload["ranked"]
        assert entry["plan"] == {"splitter": 6, "counter": 6}
        assert entry["parallelisms"]["splitter"] == 6
        assert entry["total_instances"] == sum(
            entry["parallelisms"].values()
        )
        assert entry["backpressure_risk"] in {"low", "high"}
        assert entry["estimated_cpu_cores"] is None or (
            entry["estimated_cpu_cores"] > 0
        )

    def test_artifact_stanza_documents_provenance(self, sweep_engine):
        payload = sweep_engine.sweep("word-count", RATE, [{}])
        stanza = payload["artifact"]
        assert set(stanza) >= {"hash", "plan_revision", "data_version",
                               "calibrated_components"}
        assert "splitter" in stanza["calibrated_components"]

    def test_deterministic_tiebreak(self, sweep_engine):
        """Equal-output plans rank by canonical plan JSON, stably."""
        once = sweep_engine.sweep("word-count", RATE, plan_grid())
        twice = sweep_engine.sweep("word-count", RATE, plan_grid())
        assert once["ranked"] == twice["ranked"]

    def test_unknown_topology_raises(self, sweep_engine):
        from repro.errors import TopologyError

        with pytest.raises((ModelError, TopologyError)):
            sweep_engine.sweep("missing", RATE, [{}])
