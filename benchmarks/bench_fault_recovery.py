"""Prediction quality when calibration data comes from a faulted run.

Caladrius calibrates from whatever metrics the cluster produced; in
practice those windows contain crashes, stragglers, stream-manager
stalls and metrics-pipeline dropouts.  This bench deploys Word Count,
replays the calibration sweep under each fault class (via a
deterministic :class:`~repro.faults.plan.FaultPlan`), calibrates on the
degraded store, and compares the predicted output rate against a clean
ground-truth run of the same traffic.

The assertion encodes the robustness contract: calibration must
*succeed* (warnings, not exceptions) on every fault class, stay within
5% of ground truth on the healthy baseline, and within 35% under
faults — degraded answers are acceptable, wrong-by-2x answers are not.
"""

from __future__ import annotations

import warnings

import numpy as np

from benchmarks.conftest import fmt_m
from repro.core.performance_models import ThroughputPredictionModel
from repro.errors import DegradedMetricsWarning
from repro.experiments.sweeps import run_point
from repro.faults.plan import FaultEvent, FaultPlan
from repro.heron.simulation import HeronSimulation, SimulationConfig
from repro.heron.tracker import TopologyTracker
from repro.heron.wordcount import WordCountParams, build_word_count
from repro.timeseries.store import MetricsStore

M = 1e6

#: One representative fault per class, placed mid-sweep.  Container ids
#: start at 1 (RoundRobinPacking); splitter/counter indices are valid
#: for the p=2/p=4 deployment below.
FAULT_SCENARIOS: dict[str, tuple[FaultEvent, ...]] = {
    "healthy": (),
    "crash": (
        FaultEvent(at_seconds=240, kind="crash", component="splitter",
                   index=0, duration_seconds=120),
    ),
    "straggler": (
        FaultEvent(at_seconds=240, kind="straggler", component="counter",
                   index=1, duration_seconds=180, factor=0.4),
    ),
    "stmgr_stall": (
        FaultEvent(at_seconds=300, kind="stmgr_stall", container=1,
                   duration_seconds=60),
    ),
    "metric_dropout": (
        FaultEvent(at_seconds=240, kind="metric_dropout",
                   component="counter", duration_seconds=120),
    ),
}


def _calibration_store(
    events: tuple[FaultEvent, ...], rates: np.ndarray
) -> tuple[TopologyTracker, MetricsStore]:
    """One deployed Word Count sweep, with the given faults injected."""
    params = WordCountParams(splitter_parallelism=2, counter_parallelism=4)
    topology, packing, logic = build_word_count(params)
    store = MetricsStore()
    plan = FaultPlan(events=events) if events else None
    sim = HeronSimulation(
        topology, packing, logic, store, SimulationConfig(seed=31),
        faults=plan,
    )
    for rate in rates:
        sim.set_source_rate("sentence-spout", float(rate))
        sim.run(2)
    tracker = TopologyTracker()
    tracker.register(topology, packing)
    return tracker, store


def bench_fault_recovery(benchmark, quick, report):
    rates = np.arange(4 * M, 44 * M + 1, 8 * M)
    # Below the p=2 splitter's saturation point (~22M/min source), so the
    # healthy prediction is exercising the linear regime it was fit on.
    target_rate = 16 * M

    # Ground truth: a clean deployment actually run at the target rate.
    # The prediction's output_rate is the sink's processed rate, so the
    # comparable observation is the counter's input throughput.
    truth = run_point(
        WordCountParams(splitter_parallelism=2, counter_parallelism=4),
        target_rate,
        seed=77,
        warmup_minutes=1 if quick else 2,
        measure_minutes=1 if quick else 2,
    )
    actual_output = truth.component_input["counter"]

    lines = [
        "Prediction error when calibrating on fault-degraded metrics",
        f"traffic: {fmt_m(target_rate)} tuples/min; "
        "ground truth from a clean run of the same deployment",
        "",
        f"{'fault class':>15} {'predicted out':>14} {'actual out':>12} "
        f"{'error':>7} {'warned':>7}",
    ]
    errors: dict[str, float] = {}
    for scenario, events in FAULT_SCENARIOS.items():
        tracker, store = _calibration_store(events, rates)
        model = ThroughputPredictionModel(tracker, store)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            prediction = model.predict("word-count", source_rate=target_rate)
        degraded = any(
            issubclass(w.category, DegradedMetricsWarning) for w in caught
        )
        error = abs(prediction.output_rate - actual_output) / actual_output
        errors[scenario] = error
        lines.append(
            f"{scenario:>15} {fmt_m(prediction.output_rate):>14} "
            f"{fmt_m(actual_output):>12} {error:>6.1%} "
            f"{'yes' if degraded else 'no':>7}"
        )
        if scenario == "crash":
            assert degraded, "crash must surface a DegradedMetricsWarning"

    # The benchmarked step: calibrate + predict on the crash-degraded
    # store — the latency the API tier pays per request after a fault.
    tracker, store = _calibration_store(FAULT_SCENARIOS["crash"], rates)
    model = ThroughputPredictionModel(tracker, store)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedMetricsWarning)
        benchmark(model.predict, "word-count", target_rate)

    report("fault_recovery", lines)
    assert errors["healthy"] < 0.05
    for scenario, error in errors.items():
        assert error < 0.35, f"{scenario}: {error:.1%} prediction error"
