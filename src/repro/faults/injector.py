"""Driving a fault plan through a running simulation.

The :class:`FaultInjector` is the bridge between a declarative
:class:`~repro.faults.plan.FaultPlan` and the simulator's control
surface.  :class:`~repro.heron.simulation.HeronSimulation` calls
:meth:`FaultInjector.on_tick` at the start of every tick; the injector
activates events whose start time has arrived and reverts events whose
window has closed, using only the simulation's public control methods
(crash/restore, capacity factors, stream-manager stalls, metric
blackouts).  All bookkeeping is deterministic — no clocks, no
randomness — so a seeded plan yields byte-identical runs.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.errors import FaultError
from repro.faults.plan import (
    KIND_CRASH,
    KIND_METRIC_DROPOUT,
    KIND_STMGR_STALL,
    KIND_STRAGGLER,
    FaultEvent,
    FaultPlan,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.heron.simulation import HeronSimulation

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies a fault plan to a simulation, tick by tick.

    Parameters
    ----------
    plan:
        The schedule to execute.  Events are validated against the
        simulation's topology when the injector is attached (see
        :meth:`attach`), so impossible targets fail fast rather than
        mid-run.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._pending: deque[FaultEvent] = deque(plan.events)
        self._active: list[FaultEvent] = []
        self._log: list[tuple[float, str, FaultEvent]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def log(self) -> list[tuple[float, str, FaultEvent]]:
        """Chronological ``(sim_seconds, "inject"|"recover", event)`` log."""
        return list(self._log)

    def active_events(self) -> list[FaultEvent]:
        """Events currently in force (copy)."""
        return list(self._active)

    def exhausted(self) -> bool:
        """True when every event has been injected and recovered."""
        return not self._pending and not self._active

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def attach(self, sim: "HeronSimulation") -> None:
        """Validate every event against the simulation's topology."""
        topology = sim.topology
        container_ids = {c.container_id for c in sim.packing.containers}
        for event in self.plan.events:
            if event.kind in (KIND_CRASH, KIND_STRAGGLER):
                if event.component not in topology.components:
                    raise FaultError(
                        f"fault targets unknown component {event.component!r}"
                    )
                parallelism = topology.parallelism(event.component)
                if not 0 <= event.index < parallelism:
                    raise FaultError(
                        f"component {event.component!r} has no instance "
                        f"index {event.index} (parallelism {parallelism})"
                    )
                if (
                    event.kind == KIND_STRAGGLER
                    and topology.components[event.component].is_spout
                ):
                    raise FaultError(
                        "straggler faults target bolts; "
                        f"{event.component!r} is a spout"
                    )
            elif event.kind == KIND_STMGR_STALL:
                if event.container not in container_ids:
                    raise FaultError(
                        f"fault targets unknown container {event.container}"
                    )
            elif event.kind == KIND_METRIC_DROPOUT:
                if (
                    event.component is not None
                    and event.component not in topology.components
                ):
                    raise FaultError(
                        f"fault targets unknown component {event.component!r}"
                    )

    # ------------------------------------------------------------------
    # Tick hook
    # ------------------------------------------------------------------
    def on_tick(self, sim: "HeronSimulation") -> None:
        """Activate due events and recover expired ones at ``sim.now``."""
        now = sim.now
        still_active: list[FaultEvent] = []
        for event in self._active:
            if event.ends_at <= now:
                self._revert(sim, event)
                self._log.append((now, "recover", event))
            else:
                still_active.append(event)
        self._active = still_active
        while self._pending and self._pending[0].at_seconds <= now:
            event = self._pending.popleft()
            if event.ends_at <= now:
                continue  # window entirely in the past; nothing to do
            self._apply(sim, event)
            self._log.append((now, "inject", event))
            self._active.append(event)

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    def _apply(self, sim: "HeronSimulation", event: FaultEvent) -> None:
        if event.kind == KIND_CRASH:
            sim.crash_instance(event.component, event.index)
        elif event.kind == KIND_STRAGGLER:
            sim.set_instance_capacity_factor(
                event.component, event.index, event.factor
            )
        elif event.kind == KIND_STMGR_STALL:
            sim.stall_stream_manager(event.container)
        elif event.kind == KIND_METRIC_DROPOUT:
            sim.set_metric_dropout(event.component, event.index, active=True)

    def _revert(self, sim: "HeronSimulation", event: FaultEvent) -> None:
        if event.kind == KIND_CRASH:
            sim.restore_instance(event.component, event.index)
        elif event.kind == KIND_STRAGGLER:
            sim.set_instance_capacity_factor(event.component, event.index, 1.0)
        elif event.kind == KIND_STMGR_STALL:
            sim.resume_stream_manager(event.container)
        elif event.kind == KIND_METRIC_DROPOUT:
            sim.set_metric_dropout(event.component, event.index, active=False)
