"""Tests for the Word Count topology factory (the paper's workload)."""

from __future__ import annotations

import pytest

from repro.heron.groupings import FieldsGrouping, ShuffleGrouping
from repro.heron.simulation import ComponentLogic, SpoutLogic
from repro.heron.wordcount import WordCountParams, build_word_count


class TestStructure:
    def test_three_stage_shape(self):
        topology, _, _ = build_word_count()
        assert [c.name for c in topology.spouts()] == ["sentence-spout"]
        assert [c.name for c in topology.bolts()] == ["splitter", "counter"]

    def test_groupings_match_paper(self):
        """Spout->Splitter is shuffle; Splitter->Counter is fields."""
        topology, _, _ = build_word_count()
        (to_splitter,) = topology.inputs("splitter")
        (to_counter,) = topology.inputs("counter")
        assert isinstance(to_splitter.grouping, ShuffleGrouping)
        assert isinstance(to_counter.grouping, FieldsGrouping)
        assert to_counter.grouping.fields == ("word",)

    def test_default_parallelisms(self):
        topology, _, _ = build_word_count()
        assert topology.parallelism("sentence-spout") == 8  # paper default
        assert topology.parallelism("splitter") == 3
        assert topology.parallelism("counter") == 3

    def test_custom_parallelisms(self):
        params = WordCountParams(
            spout_parallelism=2, splitter_parallelism=5, counter_parallelism=7
        )
        topology, packing, _ = build_word_count(params)
        assert topology.parallelism("splitter") == 5
        assert packing.parallelism("counter") == 7


class TestLogic:
    def test_logic_types(self):
        _, _, logic = build_word_count()
        assert isinstance(logic["sentence-spout"], SpoutLogic)
        assert isinstance(logic["splitter"], ComponentLogic)
        assert isinstance(logic["counter"], ComponentLogic)

    def test_splitter_alpha_is_corpus_sentence_length(self):
        params = WordCountParams()
        _, _, logic = build_word_count(params)
        assert logic["splitter"].alphas["default"] == pytest.approx(
            params.corpus.words_per_sentence()
        )

    def test_counter_is_sink(self):
        _, _, logic = build_word_count()
        assert logic["counter"].alphas == {}

    def test_capacities_match_paper_scale(self):
        """Defaults tuned so the Splitter instance SP is ~11 M/min."""
        _, _, logic = build_word_count()
        assert logic["splitter"].capacity_tps * 60 == pytest.approx(11e6)
        assert logic["counter"].capacity_tps * 60 == pytest.approx(70e6)


class TestPacking:
    def test_default_density_two_per_container(self):
        params = WordCountParams()  # 8 + 3 + 3 = 14 instances
        _, packing, _ = build_word_count(params)
        assert packing.num_containers() == 7

    def test_explicit_container_count(self):
        params = WordCountParams(containers=3)
        _, packing, _ = build_word_count(params)
        assert packing.num_containers() == 3

    def test_paper_resources(self):
        _, packing, _ = build_word_count()
        instance = packing.all_instances()[0]
        assert instance.resources.cpu == 1.0
        assert instance.resources.ram_bytes == 2 * 1024**3
