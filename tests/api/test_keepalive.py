"""HTTP keep-alive in CaladriusClient, and the server's handling of
clients that disconnect mid-response."""

from __future__ import annotations

import json
import logging
import threading

import pytest

from repro.api.app import CaladriusApp
from repro.api.client import CaladriusClient
from repro.api.server import CaladriusServer, _make_handler
from repro.config import load_config


@pytest.fixture(scope="module")
def live_service(deployed_wordcount):
    _, _, _, store, tracker = deployed_wordcount
    config = load_config(
        {
            "traffic_models": ["stats-summary"],
            "performance_models": ["throughput-prediction"],
        }
    )
    app = CaladriusApp(config, tracker, store)
    with CaladriusServer(app, port=0) as server:
        yield server
    app.shutdown()


class TestKeepAlive:
    def test_connection_is_reused_across_requests(self, live_service):
        with CaladriusClient(live_service.host, live_service.port) as client:
            client.healthz()
            first = client._local.connection
            assert first is not None
            client.topologies()
            client.healthz()
            # Same socket object: no reconnect between requests.
            assert client._local.connection is first

    def test_stale_socket_reconnects_transparently(self, live_service):
        with CaladriusClient(
            live_service.host, live_service.port, retries=0
        ) as client:
            client.healthz()
            # Simulate a server-side keep-alive timeout: the socket dies
            # under the client between requests.
            client._local.connection.sock.close()
            # retries=0, so only the stale-connection retry can save this.
            assert client.healthz()["status"] in ("ok", "degraded")

    def test_connections_are_per_thread(self, live_service):
        client = CaladriusClient(live_service.host, live_service.port)
        try:
            client.healthz()
            main_connection = client._local.connection
            seen: list = []

            def worker():
                client.healthz()
                seen.append(client._local.connection)

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join(timeout=30)
            assert seen and seen[0] is not main_connection
        finally:
            client.close()

    def test_close_is_idempotent_and_reopens_on_demand(self, live_service):
        client = CaladriusClient(live_service.host, live_service.port)
        client.healthz()
        client.close()
        client.close()
        assert client._local.connection is None
        # A closed client is not dead: the next call reconnects.
        assert client.healthz()["status"] in ("ok", "degraded")
        client.close()


class _Sink:
    """A wfile that drops the connection partway through a response."""

    def __init__(self, fail_with: type[Exception]) -> None:
        self.fail_with = fail_with
        self.writes = 0

    def write(self, data: bytes) -> None:
        self.writes += 1
        raise self.fail_with("peer went away")

    def flush(self) -> None:  # BaseHTTPRequestHandler may flush
        pass


def _bare_handler(app) -> object:
    """A handler instance with just enough state to drive ``_send``."""
    handler_cls = _make_handler(app)
    handler = handler_cls.__new__(handler_cls)
    handler.request_version = "HTTP/1.1"
    handler.close_connection = False
    handler.command = "GET"
    handler.path = "/healthz"
    handler.client_address = ("127.0.0.1", 54321)
    handler.requestline = "GET /healthz HTTP/1.1"
    return handler


class TestClientDisconnectMidResponse:
    @pytest.mark.parametrize(
        "error", [BrokenPipeError, ConnectionResetError]
    )
    def test_send_swallows_disconnects(self, deployed_wordcount, error, caplog):
        _, _, _, store, tracker = deployed_wordcount
        app = CaladriusApp(load_config({}), tracker, store)
        try:
            handler = _bare_handler(app)
            sink = _Sink(error)
            handler.wfile = sink
            with caplog.at_level(logging.DEBUG, logger="repro.api.server"):
                handler._send(200, {"ok": True})  # must not raise
            assert sink.writes >= 1
            # The connection is marked dead so the handler loop exits
            # instead of trying to read another request from it.
            assert handler.close_connection is True
            assert any(
                "disconnected mid-response" in message
                for message in caplog.messages
            )
        finally:
            app.shutdown()

    def test_send_still_raises_programming_errors(self, deployed_wordcount):
        _, _, _, store, tracker = deployed_wordcount
        app = CaladriusApp(load_config({}), tracker, store)
        try:
            handler = _bare_handler(app)
            handler.wfile = _Sink(BrokenPipeError)
            with pytest.raises(TypeError):
                # Unserialisable payloads are bugs, not disconnects.
                handler._send(200, {"bad": object()})
        finally:
            app.shutdown()
