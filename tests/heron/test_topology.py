"""Tests for topology definition and validation."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.heron.groupings import ShuffleGrouping
from repro.heron.topology import ComponentSpec, TopologyBuilder


def linear_topology():
    builder = TopologyBuilder("t")
    builder.add_spout("s", 2)
    builder.add_bolt("a", 3)
    builder.add_bolt("b", 4)
    builder.connect("s", "a", ShuffleGrouping())
    builder.connect("a", "b", ShuffleGrouping())
    return builder.build()


class TestComponentSpec:
    def test_kind_validation(self):
        with pytest.raises(TopologyError, match="spout or bolt"):
            ComponentSpec("x", "mapper", 1)

    def test_parallelism_validation(self):
        with pytest.raises(TopologyError, match=">= 1"):
            ComponentSpec("x", "bolt", 0)

    def test_empty_name(self):
        with pytest.raises(TopologyError, match="non-empty"):
            ComponentSpec("", "bolt", 1)


class TestBuilderValidation:
    def test_duplicate_component(self):
        builder = TopologyBuilder("t")
        builder.add_spout("s", 1)
        with pytest.raises(TopologyError, match="already defined"):
            builder.add_bolt("s", 1)

    def test_connect_unknown_component(self):
        builder = TopologyBuilder("t")
        builder.add_spout("s", 1)
        with pytest.raises(TopologyError, match="undeclared"):
            builder.connect("s", "missing", ShuffleGrouping())

    def test_spout_cannot_receive(self):
        builder = TopologyBuilder("t")
        builder.add_spout("s", 1)
        builder.add_spout("s2", 1)
        builder.connect("s", "s2", ShuffleGrouping())
        with pytest.raises(TopologyError, match="cannot receive"):
            builder.build()

    def test_needs_a_spout(self):
        builder = TopologyBuilder("t")
        builder.add_bolt("a", 1)
        with pytest.raises(TopologyError):
            builder.build()

    def test_cycle_rejected(self):
        builder = TopologyBuilder("t")
        builder.add_spout("s", 1)
        builder.add_bolt("a", 1)
        builder.add_bolt("b", 1)
        builder.connect("s", "a", ShuffleGrouping())
        builder.connect("a", "b", ShuffleGrouping())
        builder.connect("b", "a", ShuffleGrouping())
        with pytest.raises(TopologyError, match="cycle"):
            builder.build()

    def test_disconnected_bolt_rejected(self):
        builder = TopologyBuilder("t")
        builder.add_spout("s", 1)
        builder.add_bolt("orphan", 1)
        with pytest.raises(TopologyError, match="no input stream"):
            builder.build()

    def test_duplicate_stream_rejected(self):
        builder = TopologyBuilder("t")
        builder.add_spout("s", 1)
        builder.add_bolt("a", 1)
        builder.connect("s", "a", ShuffleGrouping())
        builder.connect("s", "a", ShuffleGrouping())
        with pytest.raises(TopologyError, match="duplicate stream"):
            builder.build()

    def test_two_streams_with_distinct_names_allowed(self):
        builder = TopologyBuilder("t")
        builder.add_spout("s", 1)
        builder.add_bolt("a", 1)
        builder.connect("s", "a", ShuffleGrouping(), stream="one")
        builder.connect("s", "a", ShuffleGrouping(), stream="two")
        topology = builder.build()
        assert len(topology.outputs("s")) == 2


class TestAccessors:
    def test_spouts_bolts_sinks(self):
        topology = linear_topology()
        assert [c.name for c in topology.spouts()] == ["s"]
        assert [c.name for c in topology.bolts()] == ["a", "b"]
        assert [c.name for c in topology.sinks()] == ["b"]

    def test_parallelism_lookup(self):
        topology = linear_topology()
        assert topology.parallelism("a") == 3
        with pytest.raises(TopologyError, match="unknown component"):
            topology.parallelism("zzz")

    def test_inputs_outputs(self):
        topology = linear_topology()
        assert [s.destination for s in topology.outputs("s")] == ["a"]
        assert [s.source for s in topology.inputs("b")] == ["a"]
        assert topology.inputs("s") == []

    def test_topological_order(self):
        topology = linear_topology()
        names = [c.name for c in topology.topological_order()]
        assert names == ["s", "a", "b"]

    def test_total_instances(self):
        assert linear_topology().total_instances() == 9


class TestWithParallelism:
    def test_changes_apply_and_original_unchanged(self):
        topology = linear_topology()
        updated = topology.with_parallelism({"a": 7})
        assert updated.parallelism("a") == 7
        assert topology.parallelism("a") == 3
        assert updated.name == topology.name

    def test_unknown_component(self):
        with pytest.raises(TopologyError, match="unknown"):
            linear_topology().with_parallelism({"zzz": 2})

    def test_invalid_parallelism_rejected_by_spec(self):
        with pytest.raises(TopologyError):
            linear_topology().with_parallelism({"a": 0})
