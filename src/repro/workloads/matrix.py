"""The scenario-matrix runner: (shape × fault × traffic) differential tests.

Every cell runs the full Caladrius loop against the simulator and scores
the model against a run it never saw:

1. **Simulate** — generate the cell's workload (one topology per shape,
   shared across that shape's fault/traffic cells), drive it through the
   cell's traffic schedule with the cell's canonical fault injected;
2. **Calibrate** — fit the chained topology model
   (:func:`~repro.core.performance_models.calibrate_topology`) and a
   per-bolt CPU line on the degraded window, counting every skipped
   minute;
3. **Predict** — run a *fresh, fault-free* validation simulation at two
   rate levels the calibration never replayed, and score the model's
   per-bolt arrival-rate and CPU-load predictions as MAPE.

A cell passes when both errors are finite and inside its fault kind's
thresholds.  The whole report is a pure function of ``(seed, grid)``:
cell seeds derive from CRC32 of the cell identity, no wall clock is ever
read, and :func:`report_json` serialises with sorted keys — two runs of
``caladrius matrix --seed 7`` must produce byte-identical files, and the
nightly CI job diffs exactly that.

Grid ordering is prefix-friendly: traffic is the outer axis, fault kinds
come before the no-fault control, shapes innermost — so ``--cells 12``
covers crash/straggler/stall across all four shapes, and ``--cells 16``
additionally covers metric dropout (every fault kind × every shape).
"""

from __future__ import annotations

import json
import math
import warnings
import zlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.calibration import (
    LinearFit,
    degraded_aggregate,
    fit_linear,
    mape,
)
from repro.core.performance_models import calibrate_topology
from repro.errors import DegradedMetricsWarning, ReproError
from repro.heron.metrics import MetricNames
from repro.heron.simulation import HeronSimulation, SimulationConfig
from repro.heron.tracker import TopologyTracker
from repro.timeseries.store import MetricsStore
from repro.workloads.generator import (
    SHAPES,
    GeneratedWorkload,
    generate_workload,
    workload_seed,
)
from repro.workloads.scenarios import (
    FAULTS,
    TRAFFICS,
    fault_plan_for,
    traffic_schedule,
)
from repro.workloads.trace import canonical_store_trace, trace_hash

__all__ = [
    "REPORT_SCHEMA",
    "DEFAULT_THRESHOLDS",
    "MatrixCell",
    "default_grid",
    "cell_seed",
    "simulate_cell",
    "run_cell",
    "run_matrix",
    "build_report",
    "report_json",
]

REPORT_SCHEMA = "caladrius.matrix_report/v1"

# Per-fault-kind regression gates on the cell MAPEs.  Calibrating
# through a fault costs accuracy in kind-specific ways: dropout minutes
# are flagged degraded and skipped cleanly, so that error stays at the
# clean baseline; a crash additionally leaves *unflagged* post-restart
# recovery minutes whose counts tilt the fit — worst under ramp traffic,
# where each transient lands at a distinct rate level; stalls poison one
# whole minute of every series (metrics arrive, they are just wrong).
# Values are ~2x the worst observed cell of each kind over full grids at
# seeds 7 and 11 (crash 0.29, straggler/stall 0.075, none 0.06, dropout
# < 0.01) — tight enough to catch a calibration regression, loose
# enough to ride out seed-to-seed noise.
DEFAULT_THRESHOLDS: dict[str, dict[str, float]] = {
    "none": {"arrival_mape": 0.12, "cpu_mape": 0.15},
    "crash": {"arrival_mape": 0.45, "cpu_mape": 0.45},
    "straggler": {"arrival_mape": 0.15, "cpu_mape": 0.18},
    "stmgr_stall": {"arrival_mape": 0.20, "cpu_mape": 0.22},
    "metric_dropout": {"arrival_mape": 0.12, "cpu_mape": 0.15},
}

_VALIDATION_LEVELS = (0.55, 0.85)
_VALIDATION_MINUTES_PER_LEVEL = 3


@dataclass(frozen=True)
class MatrixCell:
    """One (shape, fault, traffic) coordinate of the grid."""

    shape: str
    fault: str
    traffic: str

    @property
    def id(self) -> str:
        """Stable cell identity used for seeding and reporting."""
        return f"{self.shape}/{self.fault}/{self.traffic}"


def default_grid(
    shapes: Sequence[str] = SHAPES,
    faults: Sequence[str] = FAULTS,
    traffics: Sequence[str] = TRAFFICS,
) -> list[MatrixCell]:
    """The full grid in prefix-friendly order (see module docstring)."""
    return [
        MatrixCell(shape, fault, traffic)
        for traffic in traffics
        for fault in faults
        for shape in shapes
    ]


def cell_seed(matrix_seed: int, cell: MatrixCell) -> int:
    """Derive one cell's simulation seed from the matrix seed."""
    return zlib.crc32(f"{matrix_seed}:{cell.id}".encode("utf8"))


def simulate_cell(
    cell: MatrixCell,
    matrix_seed: int,
    calibration_minutes: int = 9,
) -> tuple[GeneratedWorkload, MetricsStore, dict[str, object]]:
    """Run just the simulate phase of one cell.

    Returns the workload, the populated store, and the canonical trace
    whose hash is the cell's ``trace_hash``.  This is the exact
    simulation ``run_cell`` calibrates against, factored out so the
    per-cell golden-hash fixtures (``tests/data``) pin the simulator's
    numerics across every (shape × fault × traffic) coordinate without
    paying for calibration.
    """
    wseed = workload_seed(matrix_seed, cell.shape)
    cseed = cell_seed(matrix_seed, cell)
    workload = generate_workload(cell.shape, wseed)
    plan = fault_plan_for(cell.fault, workload)
    schedule = traffic_schedule(
        cell.traffic, calibration_minutes, workload.base_rate_tpm
    )
    store = MetricsStore()
    simulation = HeronSimulation(
        workload.topology,
        workload.packing,
        workload.logic,
        store,
        SimulationConfig(seed=cseed),
        faults=plan,
    )
    for rate in schedule:
        workload.set_source_rates(simulation, rate)
        simulation.run(1)
    trace: dict[str, object] = {
        "topology": workload.name,
        "seed": cseed,
        "schedule_tpm": [float(r) for r in schedule],
    }
    trace.update(canonical_store_trace(store, workload.topology))
    return workload, store, trace


def _calibrate_cell(
    workload: GeneratedWorkload,
    store: MetricsStore,
) -> tuple[object, dict[str, LinearFit], int]:
    """Model + per-bolt CPU fits from a (possibly degraded) store."""
    topology = workload.topology
    tracker = TopologyTracker()
    tracked = tracker.register(topology, workload.packing)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", DegradedMetricsWarning)
        model, _ = calibrate_topology(tracked, store, warmup_minutes=1)
        cpu_fits: dict[str, LinearFit] = {}
        for bolt in topology.bolts():
            tags = {"topology": topology.name, "component": bolt.name}
            received = degraded_aggregate(
                store, MetricNames.RECEIVED_COUNT, tags
            )
            cpu = degraded_aggregate(store, MetricNames.CPU_LOAD, tags)
            received_aligned, cpu_aligned = received.align(cpu)
            # Through the origin: the CPU model's premise is load linear
            # in traffic, and steady-traffic cells cluster all x values
            # at one level, where an intercept fit is ill-conditioned.
            cpu_fits[bolt.name] = fit_linear(
                received_aligned.values,
                cpu_aligned.values,
                through_origin=True,
            )
    degraded = sum(
        1 for w in caught if issubclass(w.category, DegradedMetricsWarning)
    )
    return model, cpu_fits, degraded


def _validate_cell(
    workload: GeneratedWorkload,
    model,
    cpu_fits: Mapping[str, LinearFit],
    seed: int,
) -> tuple[float, float]:
    """(arrival MAPE, CPU MAPE) on a fresh fault-free validation run."""
    topology = workload.topology
    store = MetricsStore()
    simulation = HeronSimulation(
        workload.topology,
        workload.packing,
        workload.logic,
        store,
        SimulationConfig(seed=seed),
    )
    spouts = [s.name for s in topology.spouts()]
    actual: list[float] = []
    predicted: list[float] = []
    actual_cpu: list[float] = []
    predicted_cpu: list[float] = []
    for level in _VALIDATION_LEVELS:
        rate = level * workload.base_rate_tpm
        workload.set_source_rates(simulation, rate)
        simulation.run(_VALIDATION_MINUTES_PER_LEVEL)
        report = model.propagate({s: rate / len(spouts) for s in spouts})
        for bolt in topology.bolts():
            tags = {"topology": topology.name, "component": bolt.name}
            received = store.aggregate(MetricNames.RECEIVED_COUNT, tags)
            cpu = store.aggregate(MetricNames.CPU_LOAD, tags)
            # Each level appends exactly _VALIDATION_MINUTES_PER_LEVEL
            # minutes; the first is the level-transition minute, so the
            # measurement window is the last two.
            actual.append(float(received.values[-2:].mean()))
            model_input = float(report[bolt.name]["input"])
            predicted.append(model_input)
            actual_cpu.append(float(cpu.values[-2:].mean()))
            predicted_cpu.append(
                float(cpu_fits[bolt.name].predict(model_input))
            )
    return mape(actual, predicted), mape(actual_cpu, predicted_cpu)


def run_cell(
    cell: MatrixCell,
    matrix_seed: int,
    calibration_minutes: int = 9,
    thresholds: Mapping[str, Mapping[str, float]] | None = None,
) -> dict[str, object]:
    """Run simulate → calibrate → predict for one cell; never raises.

    Modelling failures (e.g. a calibration starved of clean minutes)
    become a failed cell with an ``error`` string — one broken cell must
    not take down the rest of the matrix.
    """
    thresholds = thresholds or DEFAULT_THRESHOLDS
    gate = thresholds[cell.fault]
    wseed = workload_seed(matrix_seed, cell.shape)
    cseed = cell_seed(matrix_seed, cell)
    record: dict[str, object] = {
        "id": cell.id,
        "shape": cell.shape,
        "fault": cell.fault,
        "traffic": cell.traffic,
        "workload_seed": wseed,
        "cell_seed": cseed,
        "arrival_mape": None,
        "cpu_mape": None,
        "degraded_warnings": None,
        "trace_hash": None,
        "passed": False,
        "error": None,
    }
    try:
        workload, store, trace = simulate_cell(
            cell, matrix_seed, calibration_minutes
        )
        record["topology"] = workload.name
        record["trace_hash"] = trace_hash(trace)

        model, cpu_fits, degraded = _calibrate_cell(workload, store)
        record["degraded_warnings"] = degraded
        arrival_mape, cpu_mape = _validate_cell(
            workload, model, cpu_fits, seed=cseed + 101
        )
        record["arrival_mape"] = arrival_mape
        record["cpu_mape"] = cpu_mape
        record["passed"] = (
            math.isfinite(arrival_mape)
            and math.isfinite(cpu_mape)
            and arrival_mape <= gate["arrival_mape"]
            and cpu_mape <= gate["cpu_mape"]
        )
    except ReproError as exc:
        record["error"] = f"{type(exc).__name__}: {exc}"
    return record


def run_matrix(
    seed: int = 7,
    cells: int | None = None,
    shapes: Sequence[str] = SHAPES,
    calibration_minutes: int = 9,
    thresholds: Mapping[str, Mapping[str, float]] | None = None,
) -> dict[str, object]:
    """Run a grid (or its first ``cells`` entries) and build the report."""
    thresholds = thresholds or DEFAULT_THRESHOLDS
    grid = default_grid(shapes)
    if cells is not None:
        if not 1 <= cells <= len(grid):
            raise ReproError(
                f"cells must be between 1 and {len(grid)}, got {cells}"
            )
        grid = grid[:cells]
    results = [
        run_cell(cell, seed, calibration_minutes, thresholds)
        for cell in grid
    ]
    return build_report(seed, results, thresholds, calibration_minutes)


def build_report(
    seed: int,
    cell_results: Sequence[Mapping[str, object]],
    thresholds: Mapping[str, Mapping[str, float]],
    calibration_minutes: int,
) -> dict[str, object]:
    """Assemble the machine-readable ``matrix_report.json`` payload."""
    passed = sum(1 for cell in cell_results if cell["passed"])
    arrival = [
        cell["arrival_mape"]
        for cell in cell_results
        if isinstance(cell["arrival_mape"], float)
    ]
    cpu = [
        cell["cpu_mape"]
        for cell in cell_results
        if isinstance(cell["cpu_mape"], float)
    ]
    return {
        "schema": REPORT_SCHEMA,
        "seed": int(seed),
        "calibration_minutes": int(calibration_minutes),
        "validation_levels": list(_VALIDATION_LEVELS),
        "thresholds": {
            kind: dict(gate) for kind, gate in thresholds.items()
        },
        "cells": [dict(cell) for cell in cell_results],
        "summary": {
            "cells": len(cell_results),
            "passed": passed,
            "failed": len(cell_results) - passed,
            "worst_arrival_mape": max(arrival) if arrival else None,
            "worst_cpu_mape": max(cpu) if cpu else None,
            "ok": passed == len(cell_results) and len(cell_results) > 0,
        },
    }


def report_json(report: Mapping[str, object]) -> str:
    """Deterministic serialisation: sorted keys, trailing newline."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"
