"""Heron substrate: a discrete-time simulator of an Apache Heron cluster.

The paper evaluates Caladrius against real Heron topologies running on
Twitter's Aurora cluster.  Offline, this package provides the equivalent
system: logical topology definition, Heron-style round-robin packing into
containers, stream groupings, a fluid (rate-level) per-second simulation of
instances with watermark-based backpressure, per-minute metrics emission,
a Heron-Tracker-style metadata service and the ``heron update`` scaling
command (including dry-run mode).

The simulator is *fluid*: it tracks tuple rates and queue sizes rather than
individual tuples.  Everything Caladrius's models observe — per-minute
counters, saturation points, the bimodal backpressure-time metric, grouping
induced traffic splits and CPU load — is preserved; per-tuple content is
not, because no model in the paper reads it.
"""

from repro.heron.corpus import SyntheticCorpus
from repro.heron.groupings import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    Grouping,
    KeyDistribution,
    ShuffleGrouping,
    grouping_from_name,
)
from repro.heron.metrics import MetricNames, MetricsManager
from repro.heron.packing import (
    ContainerPlan,
    InstancePlan,
    PackingPlan,
    Resources,
    RoundRobinPacking,
)
from repro.heron.scaling import ScalingCommand, UpdateResult
from repro.heron.simulation import (
    ComponentLogic,
    HeronSimulation,
    SimulationConfig,
    SpoutLogic,
)
from repro.heron.topology import (
    ComponentSpec,
    LogicalTopology,
    Stream,
    TopologyBuilder,
)
from repro.heron.topology_yaml import load_topology_yaml, parse_topology_document
from repro.heron.tracker import TopologyTracker
from repro.heron.wordcount import WordCountParams, build_word_count
from repro.heron.workloads import AdsPipelineParams, build_ads_pipeline

__all__ = [
    "AdsPipelineParams",
    "AllGrouping",
    "ComponentLogic",
    "ComponentSpec",
    "ContainerPlan",
    "FieldsGrouping",
    "GlobalGrouping",
    "Grouping",
    "HeronSimulation",
    "InstancePlan",
    "KeyDistribution",
    "LogicalTopology",
    "MetricNames",
    "MetricsManager",
    "PackingPlan",
    "Resources",
    "RoundRobinPacking",
    "ScalingCommand",
    "ShuffleGrouping",
    "SimulationConfig",
    "SpoutLogic",
    "Stream",
    "SyntheticCorpus",
    "TopologyBuilder",
    "TopologyTracker",
    "UpdateResult",
    "WordCountParams",
    "build_ads_pipeline",
    "build_word_count",
    "grouping_from_name",
    "load_topology_yaml",
    "parse_topology_document",
]
