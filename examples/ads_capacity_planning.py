"""Capacity planning for an ad-analytics pipeline under traffic growth.

A scenario from the paper's introduction ("jobs that process ad-click
rates"): the ads pipeline parses raw events, filters the billable ones
(selectivity 0.35) into a per-campaign aggregator, and audits the full
parsed stream on a side path.  Product forecasts 2x and 4x event growth
— will the pipeline hold, and if not, what is the cheapest configuration
that will?

The script calibrates Caladrius from the deployed pipeline's metrics,
evaluates each growth scenario in dry-run mode, and for the scenarios at
risk searches proposal space for the minimal-instance fix — all without
deploying anything.

Run with:  python examples/ads_capacity_planning.py
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core import ThroughputPredictionModel
from repro.heron import (
    AdsPipelineParams,
    HeronSimulation,
    SimulationConfig,
    TopologyTracker,
    build_ads_pipeline,
)
from repro.timeseries import MetricsStore

M = 1e6
BASELINE_TPM = 30 * M


def main() -> None:
    params = AdsPipelineParams()
    topology, packing, logic = build_ads_pipeline(params)
    store = MetricsStore()
    sim = HeronSimulation(
        topology, packing, logic, store, SimulationConfig(seed=5)
    )
    print("observing the deployed ads pipeline (sweep into saturation)...")
    for rate in np.arange(10 * M, 90 * M + 1, 16 * M):
        sim.set_source_rate("event-spout", float(rate))
        sim.run(minutes=2)
    tracker = TopologyTracker()
    tracker.register(topology, packing)
    model = ThroughputPredictionModel(tracker, store)

    print(f"\nbaseline traffic: {BASELINE_TPM / M:.0f}M events/min")
    print(f"{'scenario':>10} {'traffic':>9} {'risk':>6} "
          f"{'saturation':>11} {'bottleneck':>11}")
    at_risk = []
    for growth in (1, 2, 4):
        rate = BASELINE_TPM * growth
        prediction = model.predict("ads-pipeline", source_rate=rate)
        print(f"{growth:>9}x {rate / M:>8.0f}M "
              f"{prediction.backpressure_risk:>6} "
              f"{prediction.saturation_source_rate / M:>10.0f}M "
              f"{prediction.bottleneck or '-':>11}")
        if prediction.backpressure_risk == "high":
            at_risk.append(growth)

    for growth in at_risk:
        rate = BASELINE_TPM * growth
        print(f"\nsearching the cheapest fix for {growth}x "
              f"({rate / M:.0f}M events/min)...")
        best = None
        for parser_p, filterer_p in itertools.product(range(3, 16), range(2, 10)):
            proposal = {"parser": parser_p, "filterer": filterer_p}
            prediction = model.predict(
                "ads-pipeline", source_rate=rate, parallelisms=proposal
            )
            if prediction.backpressure_risk == "low":
                cost = parser_p + filterer_p
                if best is None or cost < best[0]:
                    best = (cost, proposal, prediction)
        if best is None:
            print("  no proposal in range keeps the risk low")
            continue
        cost, proposal, prediction = best
        print(f"  cheapest safe config: {proposal} "
              f"(saturation {prediction.saturation_source_rate / M:.0f}M, "
              f"{cost} instances across the scaled components)")
        print("  note: components that never saturated in the observed "
              "data keep their")
        print("  parallelism — Caladrius only sizes what it has evidence "
              "for, and a")
        print("  verification run after deployment closes the loop.")


if __name__ == "__main__":
    main()
