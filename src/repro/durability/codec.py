"""JSON codecs for durable snapshots of service state.

Two state holders survive restarts: the :class:`MetricsStore` series
(plus its per-topology version counters, so content-addressed cache
keys stay monotonic across a recovery) and the
:class:`TopologyTracker`'s registered topologies — logical plan,
groupings and packing plan, exactly enough to rebuild equivalent
:class:`TrackedTopology` records.  Everything here is pure data
transformation; atomic file handling lives in
:mod:`repro.durability.checkpoint`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.errors import DurabilityError
from repro.heron.groupings import (
    AllGrouping,
    FieldsGrouping,
    GlobalGrouping,
    Grouping,
    KeyDistribution,
    ShuffleGrouping,
)
from repro.heron.packing import (
    ContainerPlan,
    InstancePlan,
    PackingPlan,
    Resources,
)
from repro.heron.topology import ComponentSpec, LogicalTopology, Stream
from repro.heron.tracker import TopologyTracker
from repro.timeseries.store import MetricsStore

__all__ = [
    "encode_store_state",
    "restore_store_state",
    "encode_tracker_state",
    "restore_tracker_state",
    "store_content_hash",
]


# ----------------------------------------------------------------------
# MetricsStore
# ----------------------------------------------------------------------
def encode_store_state(store: MetricsStore) -> dict[str, Any]:
    """The store's full series content and version counters as JSON."""
    with store._lock:
        series = [
            {
                "name": key.name,
                "tags": key.tag_dict(),
                "timestamps": list(buffer.timestamps),
                "values": list(buffer.values),
            }
            for key, buffer in store._series.items()
        ]
        versions = [
            [topology, count] for topology, count in store._versions.items()
        ]
        latest = store._latest
    return {"series": series, "versions": versions, "latest": latest}


def restore_store_state(store: MetricsStore, state: dict[str, Any]) -> int:
    """Load a snapshot into an (empty) store; returns samples restored.

    Versions are restored *before* the series are replayed through
    :meth:`MetricsStore.write`, so the final counters are snapshot
    values plus replay increments — never lower than at snapshot time.
    """
    if not isinstance(state, dict) or "series" not in state:
        raise DurabilityError("malformed store snapshot: no 'series' list")
    with store._lock:
        for topology, count in state.get("versions", []):
            store._versions[topology] = max(
                store._versions.get(topology, 0), int(count)
            )
    samples = 0
    for record in state["series"]:
        store.write_many(
            record["name"],
            zip(record["timestamps"], record["values"]),
            record["tags"],
        )
        samples += len(record["timestamps"])
    return samples


def store_content_hash(store: MetricsStore) -> str:
    """SHA-256 over the store's *series content*, in canonical form.

    The hash covers every series (name, tags, timestamps, values) but
    deliberately excludes the data-version counters: recovery replays
    snapshot samples through the normal write path, which over-bumps
    versions (by design — cache keys must never go backwards), so two
    stores holding identical samples can disagree on counters.  The
    cluster tier compares a shard against its follower replica with this
    hash: equal hashes mean byte-identical series data.
    """
    with store._lock:
        series = sorted(
            (
                key.name,
                sorted(key.tag_dict().items()),
                list(buffer.timestamps),
                list(buffer.values),
            )
            for key, buffer in store._series.items()
        )
    canonical = json.dumps(series, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf8")).hexdigest()


# ----------------------------------------------------------------------
# Groupings
# ----------------------------------------------------------------------
def _encode_grouping(grouping: Grouping) -> dict[str, Any]:
    if isinstance(grouping, FieldsGrouping):
        return {
            "name": "fields",
            "fields": list(grouping.fields),
            "keys": list(grouping.key_distribution.keys),
            "weights": list(grouping.key_distribution.weights),
        }
    if isinstance(grouping, (ShuffleGrouping, AllGrouping, GlobalGrouping)):
        return {"name": grouping.name}
    raise DurabilityError(
        f"cannot snapshot grouping type {type(grouping).__name__}"
    )


def _decode_grouping(data: dict[str, Any]) -> Grouping:
    name = data.get("name")
    simple = {
        "shuffle": ShuffleGrouping,
        "all": AllGrouping,
        "global": GlobalGrouping,
    }
    if name in simple:
        return simple[name]()
    if name == "fields":
        return FieldsGrouping(
            data["fields"],
            KeyDistribution(
                tuple(data["keys"]), tuple(float(w) for w in data["weights"])
            ),
        )
    raise DurabilityError(f"unknown grouping {name!r} in snapshot")


# ----------------------------------------------------------------------
# TopologyTracker
# ----------------------------------------------------------------------
def _encode_topology(topology: LogicalTopology) -> dict[str, Any]:
    return {
        "name": topology.name,
        "components": [
            {"name": c.name, "kind": c.kind, "parallelism": c.parallelism}
            for c in topology.components.values()
        ],
        "streams": [
            {
                "source": s.source,
                "destination": s.destination,
                "stream": s.name,
                "grouping": _encode_grouping(s.grouping),
            }
            for s in topology.streams
        ],
    }


def _decode_topology(data: dict[str, Any]) -> LogicalTopology:
    components = {
        c["name"]: ComponentSpec(c["name"], c["kind"], int(c["parallelism"]))
        for c in data["components"]
    }
    streams = [
        Stream(
            s["source"],
            s["destination"],
            _decode_grouping(s["grouping"]),
            s.get("stream", "default"),
        )
        for s in data["streams"]
    ]
    return LogicalTopology(data["name"], components, streams)


def _encode_packing(packing: PackingPlan) -> dict[str, Any]:
    return {
        "topology": packing.topology_name,
        "containers": [
            {
                "id": container.container_id,
                "instances": [
                    {
                        "component": i.component,
                        "component_index": i.component_index,
                        "task_id": i.task_id,
                        "cpu": i.resources.cpu,
                        "ram_bytes": i.resources.ram_bytes,
                        "disk_bytes": i.resources.disk_bytes,
                    }
                    for i in container.instances
                ],
            }
            for container in packing.containers
        ],
    }


def _decode_packing(data: dict[str, Any]) -> PackingPlan:
    containers = []
    for entry in data["containers"]:
        instances = tuple(
            InstancePlan(
                component=i["component"],
                component_index=int(i["component_index"]),
                task_id=int(i["task_id"]),
                container_id=int(entry["id"]),
                resources=Resources(
                    cpu=float(i["cpu"]),
                    ram_bytes=int(i["ram_bytes"]),
                    disk_bytes=int(i.get("disk_bytes", 0)),
                ),
            )
            for i in entry["instances"]
        )
        containers.append(ContainerPlan(int(entry["id"]), instances))
    return PackingPlan(data["topology"], containers)


def encode_tracker_state(tracker: TopologyTracker) -> dict[str, Any]:
    """Every registered topology's plans, in revision order."""
    tracked = sorted(tracker.topologies(), key=lambda t: t.revision)
    return {
        "topologies": [
            {
                "cluster": t.cluster,
                "environ": t.environ,
                "logical": _encode_topology(t.topology),
                "packing": _encode_packing(t.packing),
            }
            for t in tracked
        ]
    }


def restore_tracker_state(
    tracker: TopologyTracker, state: dict[str, Any]
) -> int:
    """Re-register snapshotted topologies; returns how many."""
    if not isinstance(state, dict) or "topologies" not in state:
        raise DurabilityError(
            "malformed tracker snapshot: no 'topologies' list"
        )
    count = 0
    for entry in state["topologies"]:
        tracker.register(
            _decode_topology(entry["logical"]),
            _decode_packing(entry["packing"]),
            cluster=entry.get("cluster", "local"),
            environ=entry.get("environ", "test"),
        )
        count += 1
    return count
