"""Tests for the Gremlin-flavoured traversal API."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph.property_graph import PropertyGraph


@pytest.fixture()
def topo_graph() -> PropertyGraph:
    """spout -> splitter -> counter with labelled vertices."""
    g = PropertyGraph()
    g.add_vertex("spout", "spout", {"parallelism": 2})
    g.add_vertex("splitter", "bolt", {"parallelism": 3})
    g.add_vertex("counter", "bolt", {"parallelism": 4})
    g.add_edge("spout", "splitter", "shuffle")
    g.add_edge("splitter", "counter", "fields")
    return g


class TestStart:
    def test_v_with_ids(self, topo_graph):
        assert topo_graph.traversal().V("spout").ids() == ["spout"]

    def test_v_all(self, topo_graph):
        assert topo_graph.traversal().V().count() == 3

    def test_v_twice_rejected(self, topo_graph):
        t = topo_graph.traversal().V()
        with pytest.raises(GraphError, match="once"):
            t.V()

    def test_missing_start_rejected(self, topo_graph):
        with pytest.raises(GraphError, match="start with V"):
            topo_graph.traversal().count()

    def test_unknown_vertex_raises(self, topo_graph):
        with pytest.raises(GraphError):
            topo_graph.traversal().V("nope").to_list()


class TestFilters:
    def test_has_label(self, topo_graph):
        bolts = topo_graph.traversal().V().has_label("bolt").ids()
        assert sorted(bolts) == ["counter", "splitter"]

    def test_has_property(self, topo_graph):
        result = topo_graph.traversal().V().has("parallelism", 3).ids()
        assert result == ["splitter"]

    def test_where_predicate(self, topo_graph):
        result = (
            topo_graph.traversal()
            .V()
            .where(lambda v: v.get("parallelism", 0) >= 3)
            .ids()
        )
        assert sorted(result) == ["counter", "splitter"]

    def test_dedup(self, topo_graph):
        # Two traversers reach the splitter: dedup keeps one.
        ids = topo_graph.traversal().V("spout", "spout").out().dedup().ids()
        assert ids == ["splitter"]

    def test_limit(self, topo_graph):
        assert topo_graph.traversal().V().limit(2).count() == 2
        with pytest.raises(GraphError):
            topo_graph.traversal().V().limit(-1)


class TestMovement:
    def test_out_follows_edges(self, topo_graph):
        assert topo_graph.traversal().V("spout").out().ids() == ["splitter"]

    def test_out_with_label_filter(self, topo_graph):
        assert topo_graph.traversal().V("spout").out("fields").ids() == []
        assert topo_graph.traversal().V("splitter").out("fields").ids() == [
            "counter"
        ]

    def test_in_reverses(self, topo_graph):
        assert topo_graph.traversal().V("counter").in_().ids() == ["splitter"]

    def test_both(self, topo_graph):
        ids = sorted(topo_graph.traversal().V("splitter").both().ids())
        assert ids == ["counter", "spout"]

    def test_repeat_out_reaches_sinks(self, topo_graph):
        ids = topo_graph.traversal().V("spout").repeat_out().ids()
        assert ids == ["counter"]

    def test_repeat_out_cycle_raises(self):
        g = PropertyGraph()
        g.add_vertex("a", "n")
        g.add_vertex("b", "n")
        g.add_edge("a", "b", "e")
        g.add_edge("b", "a", "e")
        with pytest.raises(GraphError, match="cycle"):
            g.traversal().V("a").repeat_out().ids()


class TestTerminals:
    def test_paths_accumulate_history(self, topo_graph):
        paths = topo_graph.traversal().V("spout").out().out().paths()
        assert [[v.id for v in p] for p in paths] == [
            ["spout", "splitter", "counter"]
        ]

    def test_values(self, topo_graph):
        assert topo_graph.traversal().V("counter").values("parallelism") == [4]

    def test_terminal_reruns_pipeline(self, topo_graph):
        t = topo_graph.traversal().V().has_label("bolt")
        assert t.count() == 2
        assert t.count() == 2  # re-execution gives the same answer

    def test_chained_filters_and_moves(self, topo_graph):
        result = (
            topo_graph.traversal()
            .V()
            .has_label("spout")
            .out("shuffle")
            .has("parallelism", 3)
            .out()
            .ids()
        )
        assert result == ["counter"]
