"""Ablation: aggregate vs per-instance traffic modelling (Section IV-A).

"Caladrius allows users to specify ... whether a single Prophet model
should be used for all spouts' source throughput as a whole, or separate
models should be created for each spout instance's source throughput ...
The latter method is slower but more accurate."

This bench constructs the case that separates the modes: spout instances
whose seasonal patterns *cancel in aggregate* (counter-phased daily
cycles, e.g. per-region traffic).  The aggregate model sees a nearly
flat sum and forecasts it easily; when one instance's trend grows, the
per-instance mode attributes the growth correctly while remaining as
accurate, at a measurable fit-time cost.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.traffic_models import ProphetTrafficModel
from repro.forecasting.prophet_lite import ProphetLite, Seasonality
from repro.heron.metrics import MetricNames
from repro.heron.tracker import TopologyTracker
from repro.heron.wordcount import WordCountParams, build_word_count
from repro.timeseries.store import MetricsStore

M = 1e6
CYCLE_MIN = 120


def _make_history(minutes: int, seed: int) -> tuple[TopologyTracker, MetricsStore, dict]:
    topology, packing, _ = build_word_count(
        WordCountParams(spout_parallelism=2)
    )
    tracker = TopologyTracker()
    tracker.register(topology, packing)
    store = MetricsStore()
    rng = np.random.default_rng(seed)
    truth = {0: [], 1: []}
    for minute in range(minutes):
        phase = 2 * np.pi * minute / CYCLE_MIN
        # Instance 0: a strong cycle.  Instance 1: the same cycle in
        # anti-phase plus slow growth.  The sum is almost flat.
        values = {
            0: 6 * M + 4 * M * np.sin(phase),
            1: 6 * M - 4 * M * np.sin(phase) + 8_000.0 * minute,
        }
        for idx, value in values.items():
            noisy = max(0.0, value + rng.normal(0, 0.1 * M))
            truth[idx].append(value)
            store.write(
                MetricNames.SOURCE_COUNT,
                minute * 60,
                noisy,
                {
                    "topology": "word-count",
                    "component": "sentence-spout",
                    "instance": f"sentence-spout_{idx}",
                    "container": "1",
                },
            )
    return tracker, store, truth


def _forecaster():
    return ProphetLite(
        seasonalities=[Seasonality("cycle", CYCLE_MIN * 60, 4)],
        n_changepoints=5,
    )


def bench_traffic_model_modes(benchmark, quick, report):
    history = 3 * CYCLE_MIN if quick else 6 * CYCLE_MIN
    horizon = CYCLE_MIN
    tracker, store, truth = _make_history(history + horizon, seed=0)
    # Hold out the final horizon: rebuild a store without it.
    train_tracker, train_store, _ = _make_history(history, seed=0)

    results = {}
    timings = {}
    repeats = 3 if quick else 5
    for label, per_instance in (("aggregate", False), ("per-instance", True)):
        model = ProphetTrafficModel(
            train_tracker,
            train_store,
            per_instance=per_instance,
            make_forecaster=_forecaster,
        )
        results[label] = model.predict("word-count", None, horizon)  # warmup
        started = time.perf_counter()
        for _ in range(repeats):
            model.predict("word-count", None, horizon)
        timings[label] = (time.perf_counter() - started) / repeats

    benchmark(
        lambda: ProphetTrafficModel(
            train_tracker, train_store, make_forecaster=_forecaster
        ).predict("word-count", None, horizon)
    )

    future = range(history, history + horizon)
    true_total = np.array(
        [truth[0][m] + truth[1][m] for m in future]
    )
    true_hot = np.array([truth[1][m] for m in future])

    lines = [
        "Traffic-model modes: aggregate vs per-instance (Section IV-A)",
        "two spout instances with counter-phased cycles; instance 1 grows",
        "",
        f"{'mode':>14} {'total err':>10} {'hot-instance err':>17} "
        f"{'fit+predict s':>14}",
    ]
    for label, prediction in results.items():
        total_err = abs(
            prediction.summary["mean"] - true_total.mean()
        ) / true_total.mean()
        if prediction.per_instance:
            hot = prediction.per_instance["sentence-spout_1"]["mean"]
            hot_err = f"{abs(hot - true_hot.mean()) / true_hot.mean() * 100:.1f}%"
        else:
            hot_err = "n/a (not attributed)"
        lines.append(
            f"{label:>14} {total_err * 100:>9.1f}% {hot_err:>17} "
            f"{timings[label]:>14.3f}"
        )
    lines += [
        "",
        "Both modes forecast the total well; only the per-instance mode",
        "attributes the growing instance — at the higher fit cost the",
        "paper describes ('slower but more accurate').",
    ]
    report("traffic_model_modes", lines)

    agg_err = abs(
        results["aggregate"].summary["mean"] - true_total.mean()
    ) / true_total.mean()
    per_err = abs(
        results["per-instance"].summary["mean"] - true_total.mean()
    ) / true_total.mean()
    assert agg_err < 0.10
    assert per_err < 0.10
    assert timings["per-instance"] > timings["aggregate"]
    hot = results["per-instance"].per_instance["sentence-spout_1"]["mean"]
    assert abs(hot - true_hot.mean()) / true_hot.mean() < 0.10
