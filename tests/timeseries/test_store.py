"""Tests for the tag-indexed metrics store (the Cuckoo substitute)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import MetricsError
from repro.timeseries.store import MetricKey, MetricsStore


@pytest.fixture()
def store() -> MetricsStore:
    s = MetricsStore()
    for minute in range(5):
        ts = minute * 60
        s.write("execute-count", ts, 100.0 + minute, {"component": "a", "instance": "a_0"})
        s.write("execute-count", ts, 200.0 + minute, {"component": "a", "instance": "a_1"})
        s.write("execute-count", ts, 50.0 + minute, {"component": "b", "instance": "b_0"})
    return s


class TestMetricKey:
    def test_of_normalises_tag_order(self):
        a = MetricKey.of("m", {"x": "1", "y": "2"})
        b = MetricKey.of("m", {"y": "2", "x": "1"})
        assert a == b

    def test_matches_partial_filter(self):
        key = MetricKey.of("m", {"component": "a", "instance": "a_0"})
        assert key.matches("m", {"component": "a"})
        assert not key.matches("m", {"component": "b"})
        assert not key.matches("other", {})

    def test_tag_dict(self):
        key = MetricKey.of("m", {"k": "v"})
        assert key.tag_dict() == {"k": "v"}


class TestWrite:
    def test_rejects_out_of_order_writes(self, store):
        with pytest.raises(MetricsError, match="increasing"):
            store.write("execute-count", 0, 1.0, {"component": "a", "instance": "a_0"})

    def test_write_many(self):
        s = MetricsStore()
        s.write_many("m", [(0, 1.0), (60, 2.0)])
        assert s.get("m").to_pairs() == [(0, 1.0), (60, 2.0)]

    def test_distinct_tags_are_distinct_series(self, store):
        a0 = store.get("execute-count", {"component": "a", "instance": "a_0"})
        a1 = store.get("execute-count", {"component": "a", "instance": "a_1"})
        assert a0.values[0] == 100.0
        assert a1.values[0] == 200.0


class TestRead:
    def test_get_unknown_raises(self, store):
        with pytest.raises(MetricsError, match="no series"):
            store.get("execute-count", {"component": "zzz"})

    def test_metric_names(self, store):
        assert store.metric_names() == ["execute-count"]

    def test_query_by_partial_tags(self, store):
        matched = store.query("execute-count", {"component": "a"})
        assert len(matched) == 2

    def test_query_with_time_range(self, store):
        matched = store.query(
            "execute-count", {"component": "b"}, start=60, end=180
        )
        (series,) = matched.values()
        assert list(series.timestamps) == [60, 120]

    def test_aggregate_sums_matching_series(self, store):
        total = store.aggregate("execute-count", {"component": "a"})
        assert total.values[0] == 300.0

    def test_aggregate_no_match_raises(self, store):
        with pytest.raises(MetricsError, match="no series match"):
            store.aggregate("execute-count", {"component": "nope"})

    def test_group_by_tag(self, store):
        groups = store.group_by("execute-count", "component")
        assert set(groups) == {"a", "b"}
        assert groups["a"].values[0] == 300.0
        assert groups["b"].values[0] == 50.0

    def test_group_by_missing_tag_raises(self, store):
        with pytest.raises(MetricsError, match="carry tag"):
            store.group_by("execute-count", "nonexistent-tag")

    def test_latest_timestamp(self, store):
        assert store.latest_timestamp() == 240
        assert MetricsStore().latest_timestamp() is None

    def test_len_counts_series(self, store):
        assert len(store) == 3

    def test_clear(self, store):
        store.clear()
        assert len(store) == 0
        assert store.latest_timestamp() is None


class TestRetention:
    def test_old_samples_are_trimmed(self):
        s = MetricsStore(retention_seconds=120)
        for minute in range(5):
            s.write("m", minute * 60, float(minute))
        series = s.get("m")
        assert series.start >= 240 - 120

    def test_retention_must_be_positive(self):
        with pytest.raises(MetricsError):
            MetricsStore(retention_seconds=0)


class TestConcurrency:
    def test_parallel_writers_to_distinct_series(self):
        s = MetricsStore()
        errors: list[Exception] = []

        def writer(tag: str) -> None:
            try:
                for i in range(200):
                    s.write("m", i, float(i), {"writer": tag})
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(str(n),)) for n in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(s) == 8
        total = s.aggregate("m")
        assert total.values[-1] == 8 * 199.0


class TestPersistence:
    def test_save_load_round_trip(self, store, tmp_path):
        path = tmp_path / "metrics.json"
        store.save(path)
        loaded = MetricsStore.load(path)
        assert len(loaded) == len(store)
        original = store.aggregate("execute-count", {"component": "a"})
        restored = loaded.aggregate("execute-count", {"component": "a"})
        assert original == restored

    def test_round_trip_preserves_retention(self, tmp_path):
        s = MetricsStore(retention_seconds=120)
        s.write("m", 0, 1.0)
        path = tmp_path / "metrics.json"
        s.save(path)
        loaded = MetricsStore.load(path)
        # Retention still enforced on new writes.
        for minute in range(1, 5):
            loaded.write("m", minute * 60, float(minute))
        assert loaded.get("m").start >= 240 - 120

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else", "series": []}')
        with pytest.raises(MetricsError, match="not a repro metrics dump"):
            MetricsStore.load(path)

    def test_loaded_store_supports_further_writes(self, store, tmp_path):
        path = tmp_path / "metrics.json"
        store.save(path)
        loaded = MetricsStore.load(path)
        loaded.write(
            "execute-count", 300, 999.0,
            {"component": "a", "instance": "a_0"},
        )
        series = loaded.get(
            "execute-count", {"component": "a", "instance": "a_0"}
        )
        assert series.values[-1] == 999.0
