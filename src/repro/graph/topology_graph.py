"""Topology ↔ property-graph adapters and path calculations.

Caladrius uploads each topology's logical graph — "which includes the
instances and stream managers" — into the graph database and runs path
calculations over it (paper Section III-C1).  This module materialises:

* the **logical graph**: one vertex per component, edges labelled with
  their grouping;
* the **physical graph**: one vertex per instance and per stream manager,
  with instance→stmgr→instance edges reflecting the packing plan (local
  traffic passes one stream manager, remote traffic passes two, exactly
  as in Fig. 1c of the paper);

plus the path utilities the models use: source→sink path enumeration, the
combinatorial path count of the physical plan, and critical-path candidate
ranking for Eq. 12.
"""

from __future__ import annotations

import math

from repro.errors import GraphError
from repro.graph.property_graph import PropertyGraph, Vertex
from repro.heron.packing import PackingPlan
from repro.heron.topology import LogicalTopology

__all__ = [
    "logical_graph",
    "physical_graph",
    "source_sink_paths",
    "path_count",
    "critical_path_candidates",
]


def logical_graph(topology: LogicalTopology) -> PropertyGraph:
    """One vertex per component; one edge per stream.

    Vertex label is ``"spout"`` or ``"bolt"``; properties carry the
    parallelism.  Edge label is the grouping name; properties carry the
    stream name.
    """
    graph = PropertyGraph()
    for component in topology.components.values():
        graph.add_vertex(
            component.name,
            component.kind,
            {"parallelism": component.parallelism},
        )
    for stream in topology.streams:
        graph.add_edge(
            stream.source,
            stream.destination,
            stream.grouping.name,
            {"stream": stream.name},
        )
    return graph


def physical_graph(
    topology: LogicalTopology, packing: PackingPlan
) -> PropertyGraph:
    """Instance-level graph including stream managers.

    Vertices: one per instance (label ``"instance"``, properties
    ``component``, ``component_index``, ``container``, ``task_id``) and one
    per container stream manager (label ``"stmgr"``).  For every logical
    stream and every (upstream instance, downstream instance) pair, edges
    route sender → sender's stmgr → [receiver's stmgr →] receiver:
    co-located pairs touch one stream manager, remote pairs touch two.
    """
    graph = PropertyGraph()
    for container in packing.containers:
        graph.add_vertex(
            f"stmgr-{container.container_id}",
            "stmgr",
            {"container": container.container_id},
        )
        for instance in container.instances:
            graph.add_vertex(
                instance.instance_id,
                "instance",
                {
                    "component": instance.component,
                    "component_index": instance.component_index,
                    "container": instance.container_id,
                    "task_id": instance.task_id,
                },
            )
    for stream in topology.streams:
        senders = packing.instances_of(stream.source)
        receivers = packing.instances_of(stream.destination)
        for sender in senders:
            sender_stmgr = f"stmgr-{sender.container_id}"
            _ensure_edge(
                graph, sender.instance_id, sender_stmgr, stream.name,
                {"role": "egress"},
            )
            for receiver in receivers:
                receiver_stmgr = f"stmgr-{receiver.container_id}"
                if receiver.container_id != sender.container_id:
                    _ensure_edge(
                        graph, sender_stmgr, receiver_stmgr, stream.name,
                        {"role": "transfer"},
                    )
                _ensure_edge(
                    graph, receiver_stmgr, receiver.instance_id, stream.name,
                    {"role": "ingress"},
                )
    return graph


def _ensure_edge(
    graph: PropertyGraph,
    source: str,
    target: str,
    label: str,
    properties: dict[str, object],
) -> None:
    existing = {
        (e.target, e.label) for e in graph.out_edges(source)
    }
    if (target, label) not in existing:
        graph.add_edge(source, target, label, properties)


def source_sink_paths(topology: LogicalTopology) -> list[list[str]]:
    """Every component-level path from a spout to a sink, by name."""
    graph = logical_graph(topology)
    paths: list[list[str]] = []
    for spout in topology.spouts():
        for sink in topology.sinks():
            if sink.name == spout.name:
                paths.append([spout.name])
                continue
            for path in graph.all_paths(spout.name, sink.name):
                paths.append([v.id for v in path])
    if not paths:
        raise GraphError("topology has no source→sink path")
    return paths


def path_count(topology: LogicalTopology) -> int:
    """Number of distinct instance-level tuple paths through the topology.

    For each component-level path, the instance choices multiply (the
    paper's Fig. 1 example: parallelisms 2×2×4 = 16 possible paths).
    Routing through stream managers "does not increase the number of
    possible paths" (Section II-E), so only instances count.
    """
    total = 0
    for path in source_sink_paths(topology):
        total += math.prod(topology.parallelism(name) for name in path)
    return total


def critical_path_candidates(
    topology: LogicalTopology,
    weights: dict[str, float] | None = None,
) -> list[tuple[list[str], float]]:
    """Component paths ranked as critical-path candidates.

    The paper notes that when the critical path "cannot be identified
    easily, multiple sub-critical path candidates can be considered and
    predicted at the same time" (Section IV-B3).  Candidates are every
    source→sink path, scored by the sum of per-component weights —
    callers typically pass measured utilisation or per-component load.
    With no weights, longer paths rank first (more stages, more chances
    to bottleneck).

    Returns ``(path, score)`` pairs, highest score first.
    """
    weights = weights or {}
    scored: list[tuple[list[str], float]] = []
    for path in source_sink_paths(topology):
        if weights:
            score = sum(weights.get(name, 0.0) for name in path)
        else:
            score = float(len(path))
        scored.append((path, score))
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored
