"""asyncio HTTP front-end for high-throughput metrics ingestion.

The threaded server spends one OS thread per connection; a telemetry
fleet holding thousands of keep-alive connections needs an event loop.
:class:`AsyncCaladriusServer` terminates connections on a single
``asyncio`` loop and bridges each request into the existing synchronous
:class:`~repro.api.app.CaladriusApp` through a small worker pool
(``ingest.worker_threads``), preserving the threaded front-end's
contract exactly:

- the lifecycle gauge brackets dispatch *and* response writing, so a
  drain never closes a socket mid-response;
- deadlines, the 413 body cap, strict query parsing and the raw-body
  pass-through behave identically (the helpers are imported from
  :mod:`repro.api.server`, not re-implemented);
- :meth:`shutdown_gracefully` / :meth:`install_signal_handlers` are the
  same :class:`~repro.api.server.GracefulServerMixin` code.

``POST /metrics/write_batch`` additionally gets *streaming group-commit
acks*: a large batch is chunked into commit groups of
``ingest.commit_max_frames`` frames and the response is chunked NDJSON —
one ``{"commit": ...}`` line per group as its fsync lands, then a final
``{"done": true, ...}`` summary.  A drain beginning mid-stream refuses
the remaining groups while every already-streamed ack stands.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
from concurrent.futures import ThreadPoolExecutor
from http.client import responses as _REASONS
from typing import Any
from urllib.parse import urlsplit

from repro.api.app import CaladriusApp
from repro.api.ingest import STREAM_CONTENT_TYPE, decode_frames
from repro.api.server import (
    GracefulServerMixin,
    app_max_body_bytes,
    parse_query_strict,
)
from repro.errors import ApiError

__all__ = ["AsyncCaladriusServer"]

logger = logging.getLogger("repro.api.async_server")

# Bound on the request head (request line + headers); readuntil refuses
# anything larger, which doubles as slowloris header protection.
_MAX_HEAD_BYTES = 64 * 1024
_DEFAULT_COMMIT_MAX_FRAMES = 4096


def _parse_head(blob: bytes) -> tuple[str, str, str, dict[str, str]]:
    """Split a request head into (method, target, version, headers)."""
    lines = blob.decode("latin1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ValueError(f"malformed request line {lines[0]!r}")
    method, target, version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ValueError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method, target, version, headers


class AsyncCaladriusServer(GracefulServerMixin):
    """asyncio listener with the same surface as ``CaladriusServer``.

    ``start()``/``stop()``/``shutdown_gracefully()``/``port``/``host``
    and the context-manager protocol all match, so the CLI and tests
    can swap the two behind one flag (``serve --async-api``).
    """

    def __init__(
        self, app: CaladriusApp, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.app = app
        self._requested = (host, port)
        self._bound: tuple[str, int] | None = None
        ingest = getattr(app.config, "ingest", None)
        self._max_body_bytes = app_max_body_bytes(app)
        self._commit_max_frames = max(
            1,
            getattr(ingest, "commit_max_frames", _DEFAULT_COMMIT_MAX_FRAMES),
        )
        self._raw_prefixes = tuple(getattr(app, "raw_body_paths", ()))
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, getattr(ingest, "worker_threads", 8)),
            thread_name_prefix="caladrius-ingest",
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._shutdown_lock = threading.Lock()
        self._shutdown_done = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port."""
        if self._bound is None:
            raise RuntimeError("server is not started")
        return self._bound[1]

    @property
    def host(self) -> str:
        """The bound host address."""
        if self._bound is None:
            raise RuntimeError("server is not started")
        return self._bound[0]

    def start(self) -> "AsyncCaladriusServer":
        """Bind and serve on a daemon thread running the event loop."""
        self._thread = threading.Thread(
            target=self._run_loop, daemon=True, name="caladrius-async"
        )
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("async server failed to start within 10s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        finally:
            loop.close()

    async def _serve(self) -> None:
        host, port = self._requested
        try:
            server = await asyncio.start_server(
                self._handle_connection, host, port, limit=_MAX_HEAD_BYTES
            )
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._stop_event = asyncio.Event()
        sockname = server.sockets[0].getsockname()
        self._bound = (sockname[0], sockname[1])
        self._started.set()
        await self._stop_event.wait()
        server.close()
        # shutdown_gracefully already waited for in-flight requests;
        # anything left is an idle keep-alive reader — cancel it.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await server.wait_closed()

    def stop(self) -> None:
        """Stop serving and release the socket."""
        loop = self._loop
        if (
            loop is not None
            and not loop.is_closed()
            and self._stop_event is not None
        ):
            loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=5)
            if self._thread.is_alive():
                logger.warning(
                    "async serve thread did not join within 5s; "
                    "continuing shutdown"
                )
            self._thread = None
        self._pool.shutdown(wait=True)
        self.app.lifecycle.mark_stopped()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                ):
                    return  # client hung up between requests
                except asyncio.LimitOverrunError:
                    await self._send(
                        writer,
                        431,
                        {"error": "request head too large"},
                        close=True,
                    )
                    return
                if not await self._handle_request(reader, writer, head):
                    return
        except asyncio.CancelledError:
            return  # server stopping; connection is idle by contract
        except (BrokenPipeError, ConnectionResetError):
            return
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - best-effort close
                pass

    async def _handle_request(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        head: bytes,
    ) -> bool:
        """Serve one request; returns False when the connection is done."""
        try:
            method, target, version, headers = _parse_head(head)
        except ValueError as exc:
            await self._send(writer, 400, {"error": str(exc)}, close=True)
            return False
        keep_alive = (
            version == "HTTP/1.1"
            and headers.get("connection", "").lower() != "close"
        )
        raw_length = headers.get("content-length")
        try:
            length = int(raw_length or 0)
        except ValueError:
            await self._send(
                writer,
                400,
                {
                    "error": "Content-Length must be an integer, "
                    f"got {raw_length!r}"
                },
                close=True,
            )
            return False
        if length > self._max_body_bytes:
            # Same contract as the threaded server: refuse on the
            # declared size without buffering a byte, then close (the
            # unread body would desynchronise the connection).
            await self._send(
                writer,
                413,
                {
                    "error": "request body too large: "
                    f"{length} > {self._max_body_bytes} bytes",
                    "max_body_bytes": self._max_body_bytes,
                    "content_length": length,
                },
                close=True,
            )
            return False
        body_bytes = b""
        if length:
            try:
                body_bytes = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return False
        split = urlsplit(target)
        try:
            query = parse_query_strict(split.query)
        except ApiError as exc:
            await self._send(
                writer,
                exc.status,
                {"error": str(exc), **exc.payload},
                close=not keep_alive,
            )
            return keep_alive
        if method.upper() == "POST" and split.path == "/metrics/write_batch":
            return await self._handle_write_batch(
                writer, body_bytes, headers, keep_alive
            )
        if split.path.startswith(self._raw_prefixes):
            body: Any = body_bytes
        elif body_bytes:
            try:
                body = json.loads(body_bytes.decode("utf8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                await self._send(
                    writer,
                    400,
                    {"error": "request body is not JSON"},
                    close=not keep_alive,
                )
                return keep_alive
        else:
            body = {}
        # The in-flight gauge brackets dispatch AND response writing: a
        # drain must not close the socket mid-response.
        self.app.lifecycle.request_started()
        try:
            status, payload = await self._dispatch(
                method, split.path, query, body, headers
            )
            await self._send(writer, status, payload, close=not keep_alive)
        finally:
            self.app.lifecycle.request_finished()
        return keep_alive

    async def _dispatch(
        self,
        method: str,
        path: str,
        query: dict[str, str],
        body: Any,
        headers: dict[str, str],
    ) -> tuple[int, dict[str, Any]]:
        """Run the synchronous app on the worker pool."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, self.app.handle, method, path, query, body, headers
        )

    # ------------------------------------------------------------------
    # Streaming batched ingest
    # ------------------------------------------------------------------
    async def _handle_write_batch(
        self,
        writer: asyncio.StreamWriter,
        body_bytes: bytes,
        headers: dict[str, str],
        keep_alive: bool,
    ) -> bool:
        self.app.lifecycle.request_started()
        try:
            try:
                frames = decode_frames(body_bytes)
                if not frames:
                    raise ApiError("write_batch body contains no frames")
            except ApiError as exc:
                await self._send(
                    writer,
                    exc.status,
                    {"error": str(exc), **exc.payload},
                    close=not keep_alive,
                )
                return keep_alive
            loop = asyncio.get_running_loop()
            step = self._commit_max_frames
            if len(frames) <= step:
                # One commit group: a plain JSON response, no streaming
                # overhead — identical to the threaded server's answer.
                status, payload = await loop.run_in_executor(
                    self._pool,
                    self.app.handle_write_batch_frames,
                    frames,
                    headers,
                )
                await self._send(
                    writer, status, payload, close=not keep_alive
                )
                return keep_alive
            return await self._stream_commits(
                writer, frames, headers, keep_alive, loop
            )
        finally:
            self.app.lifecycle.request_finished()

    async def _stream_commits(
        self,
        writer: asyncio.StreamWriter,
        frames: list[tuple[Any, str]],
        headers: dict[str, str],
        keep_alive: bool,
        loop: asyncio.AbstractEventLoop,
    ) -> bool:
        """Commit groups one by one, streaming each ack as it lands.

        Each ``{"commit": ...}`` line is written after that group's
        WAL flush returns, so a client can treat every streamed frame
        range as durable the moment the line arrives — even if the
        connection later dies mid-batch.
        """
        head = (
            "HTTP/1.1 200 OK\r\n"
            f"Content-Type: {STREAM_CONTENT_TYPE}\r\n"
            "Transfer-Encoding: chunked\r\n"
        )
        if not keep_alive:
            head += "Connection: close\r\n"
        try:
            writer.write(head.encode("latin1") + b"\r\n")
            acked = 0
            rejected: list[dict[str, Any]] = []
            refused: list[dict[str, Any]] = []
            first_lsn: int | None = None
            last_lsn: int | None = None
            step = self._commit_max_frames
            for group_index, start in enumerate(range(0, len(frames), step)):
                group = frames[start:start + step]
                status, payload = await loop.run_in_executor(
                    self._pool,
                    self.app.handle_write_batch_frames,
                    group,
                    headers,
                )
                commit: dict[str, Any] = {
                    "group": group_index,
                    "frame_start": start,
                    "frames": len(group),
                }
                if status == 200:
                    # Rebase per-group frame indexes onto the batch.
                    group_rejected = [
                        {**entry, "frame": start + entry["frame"]}
                        for entry in payload.get("rejected", ())
                    ]
                    rejected.extend(group_rejected)
                    acked += payload.get("acked", 0)
                    commit.update(
                        acked=payload.get("acked", 0),
                        rejected=group_rejected,
                        first_lsn=payload.get("first_lsn"),
                        last_lsn=payload.get("last_lsn"),
                    )
                    if first_lsn is None:
                        first_lsn = payload.get("first_lsn")
                    if payload.get("last_lsn") is not None:
                        last_lsn = payload.get("last_lsn")
                else:
                    # Drain/fence/read-only arrived mid-stream: this
                    # group (and its frames) was refused, retryably —
                    # already-streamed acks stand.
                    entry = {**commit, "status": status, **payload}
                    refused.append(entry)
                    commit = entry
                await self._write_chunk(writer, {"commit": commit})
            summary: dict[str, Any] = {
                "done": True,
                "frames": len(frames),
                "acked": acked,
                "rejected": rejected,
                "first_lsn": first_lsn,
                "last_lsn": last_lsn,
            }
            if refused:
                summary["refused"] = refused
            await self._write_chunk(writer, summary)
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (BrokenPipeError, ConnectionResetError):
            # The client lost its acks, not its data: every streamed
            # commit is already durable.
            return False
        return keep_alive

    async def _write_chunk(
        self, writer: asyncio.StreamWriter, line: dict[str, Any]
    ) -> None:
        data = json.dumps(line).encode("utf8") + b"\n"
        writer.write(b"%x\r\n%s\r\n" % (len(data), data))
        await writer.drain()

    # ------------------------------------------------------------------
    # Response writing
    # ------------------------------------------------------------------
    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        close: bool,
    ) -> None:
        try:
            data = json.dumps(payload).encode("utf8")
            reason = _REASONS.get(status, "Unknown")
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(data)}\r\n"
            )
            retry_after = payload.get("retry_after")
            if isinstance(retry_after, (int, float)) and not isinstance(
                retry_after, bool
            ):
                head += f"Retry-After: {int(retry_after)}\r\n"
            if close:
                head += "Connection: close\r\n"
            writer.write(head.encode("latin1") + b"\r\n" + data)
            await writer.drain()
        except (BrokenPipeError, ConnectionResetError) as exc:
            # The client's problem, not ours (mirrors the threaded
            # server): the gauge in the caller's finally still runs.
            logger.debug("client disconnected mid-response: %s", exc)
