"""Experiment harnesses regenerating the paper's evaluation figures.

Each ``figNN_*`` function in :mod:`repro.experiments.figures` reproduces
one figure of the paper's Section V on top of the simulated Heron
cluster: it runs the Word Count topology sweep the paper ran, calibrates
the Caladrius models exactly as the paper does, and returns both the
measured series and the model predictions so callers (the benchmark
suite, tests, EXPERIMENTS.md) can compare shapes and errors.

:mod:`repro.experiments.sweeps` holds the shared sweep runner: fresh
simulation per (source rate, repetition), warmup discarded, steady-state
minutes averaged — the paper's "experiments were allowed to run ... to
attain steady state before measurements were retrieved".
"""

from repro.experiments.sweeps import (
    ObservationPoint,
    SweepResult,
    run_point,
    run_sweep,
)

__all__ = ["ObservationPoint", "SweepResult", "run_point", "run_sweep"]
