"""WAL-segment shipping: stream a shard's log to its follower.

The shipper runs inside a worker process next to its
:class:`~repro.durability.store.DurableMetricsStore`.  On every pass it

1. flushes the WAL so buffered group-commit bytes reach the segment
   files,
2. ships ``checkpoint.json`` whenever it changed (the follower resets
   its replica store from it), and
3. appends each segment's new bytes — from the last offset the follower
   acknowledged to the current end of file — via
   ``POST /replica/segment?name=…&offset=…``.

Bytes are shipped verbatim: the follower receives the same CRC-framed
stream the shard fsyncs, so the replica's ``wal/`` directory is
byte-identical to the shard's (up to the shipped offset) and remains a
valid data directory for :func:`repro.durability.recovery.open_data_dir`
— that is what makes rescuing a lost shard from its follower possible.

Offsets are the consistency protocol: the follower answers 409 with the
offset it actually holds when the shipper's bookkeeping disagrees (a
follower restart, a truncated transfer), and the shipper rewinds.  A
shipped chunk may end mid-frame; the follower only *applies* whole
frames, so torn tails are invisible to replica reads.

Epoch fencing rides the same transport: every post carries
``epoch=<writer generation>`` and a follower that has seen a newer
generation answers 409 with ``"fenced": true`` — *not* an offset
rewind.  A fenced shipper stops shipping permanently (``_fenced``); its
process belongs to a superseded primary and must never mutate replica
state again.
"""

from __future__ import annotations

import http.client
import json
import logging
import threading
import time
from pathlib import Path
from typing import Any

from repro.durability.checkpoint import CHECKPOINT_FILENAME
from repro.durability.store import DurableMetricsStore
from repro.errors import DurabilityError

__all__ = ["SegmentShipper"]

logger = logging.getLogger("repro.cluster.shipping")

_CHUNK_BYTES = 1024 * 1024


class SegmentShipper:
    """Streams sealed and active WAL segments to a follower process.

    Parameters
    ----------
    store:
        The shard's durable store (owns the WAL being shipped).
    target:
        ``"host:port"`` of the follower's replica endpoint.
    interval_seconds:
        Ship cadence of the background thread; :meth:`ship_now` can be
        called at any time for a synchronous pass (tests, drain).
    epoch:
        The worker's writer generation, stamped onto every post so the
        follower can fence off superseded shippers.  ``None`` ships
        unstamped (single-process and test deployments).
    """

    def __init__(
        self,
        store: DurableMetricsStore,
        target: str,
        interval_seconds: float = 0.5,
        timeout: float = 10.0,
        epoch: int | None = None,
    ) -> None:
        host, _, port = target.rpartition(":")
        self.store = store
        self.host = host or "127.0.0.1"
        self.port = int(port)
        self.interval_seconds = interval_seconds
        self.timeout = timeout
        self.epoch = epoch
        self._fenced = False
        self._fencing_409s = 0
        self._offsets: dict[str, int] = {}
        self._checkpoint_sig: tuple[int, int] | None = None
        self._conn: http.client.HTTPConnection | None = None
        self._mutex = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._shipped_bytes = 0
        self._failures = 0
        self._passes = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="wal-shipper", daemon=True
        )
        self._thread.start()

    def stop(self, final_ship: bool = True) -> None:
        """Stop the loop; by default ship once more so drain loses nothing."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.timeout + 5)
            self._thread = None
        if final_ship:
            try:
                self.ship_now()
            except OSError:
                logger.warning("final ship to %s:%d failed", self.host, self.port)
        with self._mutex:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            try:
                self.ship_now()
            except OSError as exc:
                self._failures += 1
                logger.debug("ship pass failed: %s", exc)
                if self._fenced:
                    return  # permanently superseded; stop burning passes

    # ------------------------------------------------------------------
    # One shipping pass
    # ------------------------------------------------------------------
    def ship_now(self) -> dict[str, Any]:
        """Flush the WAL and push every outstanding byte to the follower."""
        with self._mutex:
            if self._fenced:
                # A newer writer generation owns the replica now; this
                # process's bytes must never land there again.
                raise OSError(
                    f"shipper fenced off by follower {self.host}:{self.port} "
                    f"(our epoch {self.epoch} is superseded)"
                )
            failed = getattr(self.store.wal, "failed", None)
            if failed:
                # A failed WAL may have a torn frame on disk (injected
                # or real).  Shipping it would poison the follower's
                # byte mirror at an offset the primary will truncate on
                # reopen, desynchronising the two forever.
                raise OSError(
                    f"WAL is failed ({failed}); refusing to ship a "
                    "possibly-torn tail"
                )
            try:
                self.store.flush()
            except DurabilityError as exc:
                raise OSError(f"WAL flush failed: {exc}") from exc
            shipped = 0
            shipped += self._ship_checkpoint()
            live = set()
            for path in self.store.wal.segments():
                live.add(path.name)
                shipped += self._ship_segment(path)
            # Segments reclaimed by a checkpoint vanish from the shard;
            # forget their offsets so a reused name starts clean.
            for name in list(self._offsets):
                if name not in live:
                    del self._offsets[name]
            self._passes += 1
            self._shipped_bytes += shipped
            return {
                "shipped_bytes": shipped,
                "segments": sorted(live),
                "offsets": dict(self._offsets),
            }

    def _ship_checkpoint(self) -> int:
        path = self.store.data_dir / CHECKPOINT_FILENAME
        try:
            stat = path.stat()
        except FileNotFoundError:
            return 0
        signature = (stat.st_mtime_ns, stat.st_size)
        if signature == self._checkpoint_sig:
            return 0
        payload = path.read_bytes()
        self._post(f"/replica/{CHECKPOINT_FILENAME}", payload)
        self._checkpoint_sig = signature
        return len(payload)

    def _ship_segment(self, path: Path) -> int:
        name = path.name
        offset = self._offsets.get(name, 0)
        try:
            size = path.stat().st_size
        except FileNotFoundError:
            return 0  # pruned between listing and shipping
        shipped = 0
        while offset < size:
            with open(path, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read(min(_CHUNK_BYTES, size - offset))
            if not chunk:
                break
            status, body = self._post(
                f"/replica/segment?name={name}&offset={offset}", chunk
            )
            if status == 409:
                # A non-fenced 409 (``_post`` raised on the fenced kind)
                # means the follower holds a different prefix (it
                # restarted or a transfer tore); trust its offset and
                # rewind/advance.
                offset = int(body.get("offset", 0))
                self._offsets[name] = offset
                continue
            offset += len(chunk)
            shipped += len(chunk)
            self._offsets[name] = offset
        return shipped

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _post(self, path: str, body: bytes) -> tuple[int, dict[str, Any]]:
        if self.epoch is not None:
            separator = "&" if "?" in path else "?"
            path = f"{path}{separator}epoch={self.epoch}"
        for attempt in (0, 1):
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(
                    "POST",
                    path,
                    body=body,
                    headers={"Content-Type": "application/octet-stream"},
                )
                response = self._conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException):
                self._conn.close()
                self._conn = None
                if attempt:
                    raise
                continue  # stale keep-alive connection; retry once fresh
            try:
                payload = json.loads(raw.decode("utf8")) if raw else {}
            except (json.JSONDecodeError, UnicodeDecodeError):
                payload = {}
            if response.status >= 500:
                raise OSError(
                    f"follower {self.host}:{self.port} answered "
                    f"{response.status} for {path}"
                )
            if response.status == 409 and payload.get("fenced"):
                # Not an offset disagreement: the follower belongs to a
                # newer writer generation.  Stop shipping for good —
                # rewinding would loop forever against a fence.
                self._fenced = True
                self._fencing_409s += 1
                raise OSError(
                    f"follower {self.host}:{self.port} fenced off epoch "
                    f"{self.epoch} (follower epoch "
                    f"{payload.get('follower_epoch')})"
                )
            return response.status, payload
        raise OSError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Shipping counters for ``/healthz`` and ``/cluster/stats``."""
        with self._mutex:
            return {
                "target": f"{self.host}:{self.port}",
                "passes": self._passes,
                "shipped_bytes": self._shipped_bytes,
                "failures": self._failures,
                "offsets": dict(self._offsets),
                "epoch": self.epoch,
                "fenced": self._fenced,
                "fencing_409s": self._fencing_409s,
            }
