"""Tests for segmented regression and metrics-driven calibration."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import (
    calibrate_component,
    calibrate_sink,
    component_observations,
    fit_linear,
    fit_piecewise_linear,
)
from repro.errors import CalibrationError


def piecewise_data(alpha=7.63, sp=11e6, n=40, noise=0.0, seed=0, x_max=2.0):
    rng = np.random.default_rng(seed)
    x = np.linspace(0.05 * sp, x_max * sp, n)
    y = alpha * np.minimum(x, sp)
    if noise:
        y = y * (1 + rng.normal(0, noise, n))
    return x, y


class TestFitLinear:
    def test_exact_line(self):
        x = np.linspace(0, 10, 20)
        fit = fit_linear(x, 3.0 * x + 2.0)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_through_origin(self):
        x = np.linspace(1, 10, 10)
        fit = fit_linear(x, 4.0 * x, through_origin=True)
        assert fit.slope == pytest.approx(4.0)
        assert fit.intercept == 0.0

    def test_predict(self):
        fit = fit_linear(np.array([0.0, 1.0]), np.array([1.0, 3.0]))
        assert fit.predict(2.0) == pytest.approx(5.0)

    def test_needs_two_points(self):
        with pytest.raises(CalibrationError, match="at least 2"):
            fit_linear(np.array([1.0]), np.array([1.0]))

    def test_all_zero_x_through_origin(self):
        with pytest.raises(CalibrationError, match="undefined"):
            fit_linear(np.zeros(5), np.ones(5), through_origin=True)

    def test_nan_rows_dropped(self):
        x = np.array([0.0, 1.0, 2.0, np.nan])
        y = np.array([0.0, 2.0, 4.0, 100.0])
        fit = fit_linear(x, y)
        assert fit.slope == pytest.approx(2.0)
        assert fit.n_points == 3


class TestFitPiecewise:
    def test_recovers_exact_parameters(self):
        x, y = piecewise_data()
        fit = fit_piecewise_linear(x, y)
        assert fit.alpha == pytest.approx(7.63, rel=1e-3)
        assert fit.saturation_point == pytest.approx(11e6, rel=0.02)
        assert fit.saturation_throughput == pytest.approx(
            7.63 * 11e6, rel=0.02
        )
        assert fit.saturated

    def test_recovers_with_noise(self):
        x, y = piecewise_data(noise=0.02, seed=3)
        fit = fit_piecewise_linear(x, y)
        assert fit.alpha == pytest.approx(7.63, rel=0.03)
        assert fit.saturation_point == pytest.approx(11e6, rel=0.10)

    def test_pure_linear_data_reports_no_saturation(self):
        x = np.linspace(1, 100, 30)
        fit = fit_piecewise_linear(x, 2.0 * x)
        assert not fit.saturated
        assert math.isinf(fit.saturation_point)
        assert fit.alpha == pytest.approx(2.0)

    def test_two_points_per_segment_suffice(self):
        """The paper: one point per interval is enough to draw Fig. 3."""
        x = np.array([5e6, 10e6, 15e6, 20e6])
        y = 7.63 * np.minimum(x, 11e6)
        fit = fit_piecewise_linear(x, y)
        assert fit.alpha == pytest.approx(7.63, rel=0.01)
        assert 10e6 <= fit.saturation_point <= 15e6

    def test_predict_matches_model_form(self):
        x, y = piecewise_data()
        fit = fit_piecewise_linear(x, y)
        predicted = fit.predict(x)
        assert np.allclose(predicted, y, rtol=0.02)

    def test_validation(self):
        with pytest.raises(CalibrationError):
            fit_piecewise_linear(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        with pytest.raises(CalibrationError, match="non-negative"):
            fit_piecewise_linear(
                np.array([-1.0, 2.0, 3.0, 4.0]), np.array([1.0, 2.0, 3.0, 4.0])
            )
        with pytest.raises(CalibrationError, match="zero rate"):
            fit_piecewise_linear(np.zeros(5), np.zeros(5))

    def test_to_instance_model_scaling(self):
        x, y = piecewise_data(sp=33e6)  # a p=3 component observation
        fit = fit_piecewise_linear(x, y)
        instance = fit.to_instance_model(per_instance_scale=3.0)
        assert instance.saturation_point == pytest.approx(11e6, rel=0.02)
        with pytest.raises(CalibrationError):
            fit.to_instance_model(per_instance_scale=0.0)


class TestCalibrateComponent:
    def test_uniform_component(self):
        x, y = piecewise_data(sp=33e6, noise=0.01)
        model, fit = calibrate_component("splitter", x, y, parallelism=3)
        assert model.parallelism == 3
        assert model.instance.saturation_point == pytest.approx(
            11e6, rel=0.05
        )
        assert model.saturation_point() == pytest.approx(33e6, rel=0.05)

    def test_biased_component_uses_hottest_share(self):
        # Single-breakpoint observation (the model family's form): the
        # component's curve breaks when the hot instance saturates, so
        # the recovered instance SP must be fitted_SP * max_share.
        shares = np.array([0.5, 0.3, 0.2])
        sp_component = 11e6 / 0.5
        x, y = piecewise_data(sp=sp_component, noise=0.01, seed=2)
        model, fit = calibrate_component(
            "splitter", x, y, parallelism=3, input_shares=shares
        )
        assert model.instance.saturation_point == pytest.approx(
            fit.saturation_point * 0.5, rel=1e-9
        )
        assert model.saturation_point() == pytest.approx(
            sp_component, rel=0.10
        )

    def test_multi_breakpoint_truth_fits_a_compromise(self):
        # With biased shares the true component curve has one breakpoint
        # per distinct share; the paper's single-breakpoint family lands
        # between the first and last true breakpoints.  This documents
        # the model's known approximation, not a bug.
        shares = np.array([0.5, 0.3, 0.2])
        x = np.linspace(1e6, 2 * 55e6, 60)
        y = np.zeros_like(x)
        for share in shares:
            y += 7.63 * np.minimum(share * x, 11e6)
        _, fit = calibrate_component(
            "splitter", x, y, parallelism=3, input_shares=shares
        )
        assert 11e6 / 0.5 <= fit.saturation_point <= 11e6 / 0.2

    def test_calibrate_sink(self):
        offered = np.linspace(10e6, 400e6, 50)
        processed = np.minimum(offered, 210e6)
        model, fit = calibrate_sink("counter", offered, processed, 3)
        assert model.instance.alphas == {}
        assert model.instance.saturation_point == pytest.approx(
            70e6, rel=0.03
        )
        assert fit.alpha == pytest.approx(1.0, rel=0.01)

    def test_calibrate_sink_unsaturated(self):
        offered = np.linspace(10e6, 100e6, 20)
        model, fit = calibrate_sink("counter", offered, offered.copy(), 3)
        assert math.isinf(model.instance.saturation_point)


class TestComponentObservations:
    def test_reads_aligned_series(self, deployed_wordcount):
        _, _, _, store, _ = deployed_wordcount
        obs = component_observations(
            store, "word-count", "splitter", "sentence-spout"
        )
        assert set(obs) == {"source", "input", "output", "cpu"}
        lengths = {v.shape[0] for v in obs.values()}
        assert len(lengths) == 1
        assert lengths.pop() > 3

    def test_end_to_end_calibration_from_simulation(self, deployed_wordcount):
        _, _, logic, store, _ = deployed_wordcount
        obs = component_observations(
            store, "word-count", "splitter", "sentence-spout"
        )
        model, fit = calibrate_component(
            "splitter", obs["source"], obs["output"], parallelism=2
        )
        true_alpha = logic["splitter"].alphas["default"]
        true_sp = logic["splitter"].capacity_tps * 60 * 2
        assert fit.alpha == pytest.approx(true_alpha, rel=0.02)
        assert fit.saturation_point == pytest.approx(true_sp, rel=0.10)

    def test_warmup_must_leave_data(self, deployed_wordcount):
        _, _, _, store, _ = deployed_wordcount
        with pytest.raises(CalibrationError, match="warmup"):
            component_observations(
                store,
                "word-count",
                "splitter",
                "sentence-spout",
                warmup_minutes=10_000,
            )


@settings(max_examples=25)
@given(
    alpha=st.floats(min_value=0.1, max_value=50.0),
    sp=st.floats(min_value=1e3, max_value=1e9),
    noise=st.floats(min_value=0.0, max_value=0.02),
)
def test_property_piecewise_fit_recovers_alpha(alpha, sp, noise):
    x, y = piecewise_data(alpha=alpha, sp=sp, noise=noise, seed=1)
    fit = fit_piecewise_linear(x, y)
    assert fit.alpha == pytest.approx(alpha, rel=0.08)


@settings(max_examples=25)
@given(
    alpha=st.floats(min_value=0.1, max_value=50.0),
    sp=st.floats(min_value=1e3, max_value=1e9),
)
def test_property_piecewise_fit_recovers_sp_exactly_without_noise(alpha, sp):
    x, y = piecewise_data(alpha=alpha, sp=sp, noise=0.0)
    fit = fit_piecewise_linear(x, y)
    assert fit.saturation_point == pytest.approx(sp, rel=0.05)


class TestMeasuredShares:
    def test_shares_from_simulated_skew(self):
        from repro.core.calibration import measured_shares
        from repro.heron.groupings import FieldsGrouping, KeyDistribution
        from repro.heron.packing import RoundRobinPacking
        from repro.heron.simulation import (
            ComponentLogic,
            HeronSimulation,
            SimulationConfig,
            SpoutLogic,
        )
        from repro.heron.topology import TopologyBuilder
        from repro.timeseries.store import MetricsStore

        kd = KeyDistribution(("hot", "cold"), (0.7, 0.3))
        builder = TopologyBuilder("shares")
        builder.add_spout("s", 1)
        builder.add_bolt("w", 2)
        builder.connect("s", "w", FieldsGrouping(["k"], kd))
        topology = builder.build()
        packing = RoundRobinPacking().pack(topology, 1)
        store = MetricsStore()
        sim = HeronSimulation(
            topology,
            packing,
            {"s": SpoutLogic(), "w": ComponentLogic(capacity_tps=1e9)},
            store,
            SimulationConfig(seed=2),
        )
        sim.set_source_rate("s", 1e6)
        sim.run(2)
        shares = measured_shares(store, "shares", "w", parallelism=2)
        expected = kd.shares_mod(2)
        assert shares == pytest.approx(expected, abs=0.02)

    def test_no_traffic_raises(self, deployed_wordcount):
        from repro.core.calibration import measured_shares

        _, _, _, store, _ = deployed_wordcount
        with pytest.raises(CalibrationError, match="no traffic"):
            measured_shares(
                store, "word-count", "splitter", 2, start=10**9
            )
