"""Unit and property tests for :class:`repro.timeseries.series.TimeSeries`."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MetricsError
from repro.timeseries.series import TimeSeries, merge_sum


def make(ts, vs):
    return TimeSeries(ts, vs)


class TestConstruction:
    def test_sorts_input_by_timestamp(self):
        series = make([3, 1, 2], [30.0, 10.0, 20.0])
        assert list(series.timestamps) == [1, 2, 3]
        assert list(series.values) == [10.0, 20.0, 30.0]

    def test_rejects_duplicate_timestamps(self):
        with pytest.raises(MetricsError, match="duplicate"):
            make([1, 1], [1.0, 2.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(MetricsError, match="same length"):
            make([1, 2], [1.0])

    def test_rejects_infinities(self):
        with pytest.raises(MetricsError, match="infinite"):
            make([1], [math.inf])

    def test_allows_nan_as_missing_data(self):
        series = make([1, 2], [math.nan, 2.0])
        assert len(series) == 2
        assert series.drop_missing().to_pairs() == [(2, 2.0)]

    def test_empty(self):
        series = TimeSeries.empty()
        assert len(series) == 0
        assert not series

    def test_regular_constructor(self):
        series = TimeSeries.regular(100, 60, [1.0, 2.0, 3.0])
        assert list(series.timestamps) == [100, 160, 220]

    def test_from_pairs(self):
        series = TimeSeries.from_pairs([(5, 1.0), (1, 2.0)])
        assert series.to_pairs() == [(1, 2.0), (5, 1.0)]

    def test_arrays_are_read_only(self):
        series = make([1], [1.0])
        with pytest.raises(ValueError):
            series.values[0] = 5.0


class TestAccessors:
    def test_start_end_span(self):
        series = make([10, 40], [1.0, 2.0])
        assert series.start == 10
        assert series.end == 40
        assert series.span == 30

    def test_empty_start_raises(self):
        with pytest.raises(MetricsError):
            TimeSeries.empty().start

    def test_iteration_yields_pairs(self):
        series = make([1, 2], [1.5, 2.5])
        assert list(series) == [(1, 1.5), (2, 2.5)]

    def test_equality(self):
        assert make([1], [1.0]) == make([1], [1.0])
        assert make([1], [1.0]) != make([1], [2.0])

    def test_value_at_exact(self):
        series = make([1, 2], [1.0, 2.0])
        assert series.value_at(2) == 2.0
        with pytest.raises(MetricsError):
            series.value_at(3)

    def test_interpolate_between_and_clamped(self):
        series = make([0, 10], [0.0, 10.0])
        assert series.interpolate_at(5) == pytest.approx(5.0)
        assert series.interpolate_at(-5) == 0.0
        assert series.interpolate_at(99) == 10.0


class TestSlicing:
    def test_between_is_half_open(self):
        series = make([1, 2, 3], [1.0, 2.0, 3.0])
        sliced = series.between(1, 3)
        assert list(sliced.timestamps) == [1, 2]

    def test_between_invalid_range(self):
        with pytest.raises(MetricsError):
            make([1], [1.0]).between(5, 1)

    def test_head_and_tail(self):
        series = make([1, 2, 3], [1.0, 2.0, 3.0])
        assert list(series.head(2).values) == [1.0, 2.0]
        assert list(series.tail(2).values) == [2.0, 3.0]
        assert len(series.tail(10)) == 3

    def test_align_restricts_to_common(self):
        a = make([1, 2, 3], [1.0, 2.0, 3.0])
        b = make([2, 3, 4], [20.0, 30.0, 40.0])
        left, right = a.align(b)
        assert list(left.timestamps) == [2, 3]
        assert list(right.values) == [20.0, 30.0]


class TestArithmetic:
    def test_add_scalar(self):
        series = make([1, 2], [1.0, 2.0]) + 1.0
        assert list(series.values) == [2.0, 3.0]

    def test_add_series_aligns(self):
        a = make([1, 2], [1.0, 2.0])
        b = make([2, 3], [10.0, 20.0])
        assert (a + b).to_pairs() == [(2, 12.0)]

    def test_divide_by_zero_yields_nan(self):
        a = make([1], [1.0])
        b = make([1], [0.0])
        result = a / b
        assert math.isnan(result.values[0])

    def test_scale_and_shift(self):
        series = make([1], [2.0]).scale(3.0).shift(9)
        assert series.to_pairs() == [(10, 6.0)]


class TestSummaries:
    def test_basic_statistics(self):
        series = make([1, 2, 3, 4], [1.0, 2.0, 3.0, 4.0])
        assert series.mean() == 2.5
        assert series.median() == 2.5
        assert series.min() == 1.0
        assert series.max() == 4.0
        assert series.sum() == 10.0

    def test_statistics_ignore_nan(self):
        series = make([1, 2, 3], [1.0, math.nan, 3.0])
        assert series.mean() == 2.0

    def test_quantile_bounds(self):
        series = make([1, 2], [1.0, 2.0])
        with pytest.raises(MetricsError):
            series.quantile(1.5)

    def test_sum_of_empty_is_zero(self):
        assert TimeSeries.empty().sum() == 0.0


class TestResample:
    def test_sum_buckets(self):
        series = TimeSeries.regular(0, 20, [1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        minute = series.resample(60, "sum")
        assert minute.to_pairs() == [(0, 6.0), (60, 15.0)]

    def test_mean_buckets(self):
        series = TimeSeries.regular(0, 30, [2.0, 4.0, 6.0, 8.0])
        assert series.resample(60, "mean").to_pairs() == [(0, 3.0), (60, 7.0)]

    def test_last_skips_nan(self):
        series = make([0, 1], [5.0, math.nan])
        assert series.resample(60, "last").to_pairs() == [(0, 5.0)]

    def test_unknown_reducer(self):
        with pytest.raises(MetricsError, match="reducer"):
            make([0], [1.0]).resample(60, "mode")

    def test_bucket_must_be_positive(self):
        with pytest.raises(MetricsError):
            make([0], [1.0]).resample(0)


class TestMergeSum:
    def test_union_of_timestamps(self):
        a = make([1, 2], [1.0, 2.0])
        b = make([2, 3], [10.0, 20.0])
        merged = merge_sum([a, b])
        assert merged.to_pairs() == [(1, 1.0), (2, 12.0), (3, 20.0)]

    def test_empty_inputs(self):
        assert len(merge_sum([])) == 0
        assert len(merge_sum([TimeSeries.empty()])) == 0


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------
values_strategy = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    min_size=1,
    max_size=50,
)


@given(values=values_strategy)
def test_property_construction_preserves_multiset(values):
    ts = list(range(len(values)))
    series = TimeSeries(ts, values)
    assert sorted(series.values.tolist()) == sorted(values)


@given(values=values_strategy, bucket=st.integers(min_value=1, max_value=120))
def test_property_resample_sum_preserves_total(values, bucket):
    series = TimeSeries(range(len(values)), values)
    resampled = series.resample(bucket, "sum")
    assert resampled.sum() == pytest.approx(series.sum(), rel=1e-9, abs=1e-6)


@given(values=values_strategy)
def test_property_mean_between_min_and_max(values):
    series = TimeSeries(range(len(values)), values)
    # Tolerance scales with magnitude: nanmean of identical large values
    # can differ from them by a few ULPs.
    slack = 1e-9 + 1e-12 * max(abs(v) for v in values)
    assert series.min() - slack <= series.mean() <= series.max() + slack


@settings(max_examples=30)
@given(
    values=values_strategy,
    shift=st.integers(min_value=-1000, max_value=1000),
)
def test_property_shift_roundtrip(values, shift):
    series = TimeSeries(range(len(values)), values)
    assert series.shift(shift).shift(-shift) == series


@given(values=st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=30))
def test_property_merge_sum_is_commutative(values):
    half = len(values) // 2
    a = TimeSeries(range(half), values[:half])
    b = TimeSeries(range(100, 100 + len(values) - half), values[half:])
    assert merge_sum([a, b]) == merge_sum([b, a])


@given(
    values=values_strategy,
    lo=st.integers(min_value=0, max_value=20),
    width=st.integers(min_value=0, max_value=40),
)
def test_property_between_subset(values, lo, width):
    series = TimeSeries(range(len(values)), values)
    sliced = series.between(lo, lo + width)
    assert all(lo <= t < lo + width for t in sliced.timestamps)
    assert len(sliced) == int(
        np.sum((series.timestamps >= lo) & (series.timestamps < lo + width))
    )
