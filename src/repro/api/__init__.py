"""API tier: the RESTful surface of the Caladrius service.

"Caladrius ... is deployed as a web service that can easily be launched
in a container and is accessible to developers through a RESTful API
provided by the API tier" (paper Section III).  This package implements
that tier on the standard library's threading HTTP server:

* :class:`~repro.api.app.CaladriusApp` — request routing, model dispatch
  and the asynchronous job mechanism ("it is prudent to let the API be
  asynchronous");
* :class:`~repro.api.server.CaladriusServer` — the HTTP listener;
* :class:`~repro.api.client.CaladriusClient` — a Python client.

Endpoints (all responses JSON):

===========================================  =====================================
``GET  /topologies``                         registered topology names
``GET  /topology/{name}/logical``            logical plan
``GET  /topology/{name}/packing``            packing plan
``GET  /model/traffic/heron/{name}``         traffic forecast
``POST /model/topology/heron/{name}``        performance prediction
``GET  /model/result/{request_id}``          async result retrieval
===========================================  =====================================
"""

from repro.api.app import CaladriusApp
from repro.api.async_server import AsyncCaladriusServer
from repro.api.client import BatchAck, BatchWriter, CaladriusClient
from repro.api.server import CaladriusServer

__all__ = [
    "AsyncCaladriusServer",
    "BatchAck",
    "BatchWriter",
    "CaladriusApp",
    "CaladriusClient",
    "CaladriusServer",
]
