"""A redeployable simulated deployment with continuous metric history.

Scaling a real Heron topology restarts it with a new packing plan while
the metrics database keeps accumulating.  :class:`SimulatedCluster`
reproduces that: every :meth:`deploy` builds a fresh simulation for the
new parallelisms, started at the previous simulation's clock, writing to
the same store and re-registering with the same tracker.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.errors import SimulationError
from repro.heron.metrics import MetricNames
from repro.heron.simulation import (
    ComponentLogic,
    HeronSimulation,
    SimulationConfig,
    SpoutLogic,
)
from repro.heron.topology import LogicalTopology
from repro.heron.tracker import TopologyTracker
from repro.heron.packing import PackingPlan
from repro.heron.wordcount import WordCountParams, build_word_count
from repro.timeseries.store import MetricsStore

__all__ = ["SimulatedCluster"]

BuildFn = Callable[
    [Mapping[str, int] | None],
    tuple[LogicalTopology, PackingPlan, dict[str, SpoutLogic | ComponentLogic]],
]


def _word_count_builder(base: WordCountParams) -> BuildFn:
    def build(parallelisms: Mapping[str, int] | None):
        params = base
        if parallelisms:
            params = WordCountParams(
                spout_parallelism=parallelisms.get(
                    "sentence-spout", base.spout_parallelism
                ),
                splitter_parallelism=parallelisms.get(
                    "splitter", base.splitter_parallelism
                ),
                counter_parallelism=parallelisms.get(
                    "counter", base.counter_parallelism
                ),
                corpus=base.corpus,
                splitter_capacity_tps=base.splitter_capacity_tps,
                counter_capacity_tps=base.counter_capacity_tps,
            )
        return build_word_count(params)

    return build


class SimulatedCluster:
    """One topology, redeployable at new parallelisms.

    Parameters
    ----------
    build:
        Maps a parallelism proposal to ``(topology, packing, logic)``.
        Defaults to the Word Count factory when ``word_count_params`` is
        given instead.
    word_count_params:
        Convenience: base parameters for the default Word Count builder.
    config:
        Simulation engine parameters (seed advances per deployment so
        redeployments do not replay identical noise).
    """

    def __init__(
        self,
        build: BuildFn | None = None,
        word_count_params: WordCountParams | None = None,
        config: SimulationConfig | None = None,
    ) -> None:
        if build is None:
            build = _word_count_builder(word_count_params or WordCountParams())
        self._build = build
        self._config = config or SimulationConfig()
        self.store = MetricsStore()
        self.tracker = TopologyTracker()
        self.simulation: HeronSimulation | None = None
        self._source_tpm: dict[str, float] = {}
        self._deploy_count = 0
        self._deployed_at: int = 0
        self.deploy(None)

    # ------------------------------------------------------------------
    # Deployment lifecycle
    # ------------------------------------------------------------------
    def deploy(self, parallelisms: Mapping[str, int] | None) -> None:
        """(Re)deploy the topology with the requested parallelisms.

        The new simulation continues the metric clock; configured source
        rates carry over (the external data keeps flowing during a
        restart).
        """
        topology, packing, logic = self._build(parallelisms)
        start = 0 if self.simulation is None else int(self.simulation.now)
        if start % 60 != 0:
            raise SimulationError(
                "redeploy must happen on a minute boundary"
            )
        config = SimulationConfig(
            tick_seconds=self._config.tick_seconds,
            high_watermark_bytes=self._config.high_watermark_bytes,
            low_watermark_bytes=self._config.low_watermark_bytes,
            stmgr_capacity_tps=self._config.stmgr_capacity_tps,
            seed=self._config.seed + self._deploy_count,
        )
        self.simulation = HeronSimulation(
            topology, packing, logic, self.store, config, start_at_seconds=start
        )
        if self._deploy_count == 0:
            self.tracker.register(topology, packing)
        else:
            self.tracker.update(topology.name, topology, packing)
        for spout, rate in self._source_tpm.items():
            self.simulation.set_source_rate(spout, rate)
        self._deploy_count += 1
        self._deployed_at = start

    @property
    def topology(self) -> LogicalTopology:
        """The currently deployed logical topology."""
        assert self.simulation is not None
        return self.simulation.topology

    @property
    def topology_name(self) -> str:
        """Name of the deployed topology."""
        return self.topology.name

    @property
    def deployed_at_seconds(self) -> int:
        """Metric timestamp at which the current deployment started."""
        return self._deployed_at

    @property
    def deployments(self) -> int:
        """Number of deploy calls so far (including the initial one)."""
        return self._deploy_count

    def parallelisms(self) -> dict[str, int]:
        """Current per-component parallelisms."""
        return {
            name: spec.parallelism
            for name, spec in self.topology.components.items()
        }

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def set_source_rate(self, spout: str, tuples_per_minute: float) -> None:
        """Set a spout's external rate (persists across redeployments)."""
        assert self.simulation is not None
        self.simulation.set_source_rate(spout, tuples_per_minute)
        self._source_tpm[spout] = tuples_per_minute

    def run(self, minutes: float) -> None:
        """Advance the deployed simulation."""
        assert self.simulation is not None
        self.simulation.run(minutes)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        assert self.simulation is not None
        return self.simulation.now

    # ------------------------------------------------------------------
    # Observations (what a scaler reads between rounds)
    # ------------------------------------------------------------------
    def recent_output_tpm(self, window_minutes: int) -> float:
        """Mean sink processing rate over the trailing window."""
        start = int(self.now) - window_minutes * 60
        total = 0.0
        for sink in self.topology.sinks():
            series = self.store.aggregate(
                MetricNames.EXECUTE_COUNT,
                {"topology": self.topology_name, "component": sink.name},
                start=start,
            )
            total += series.mean()
        return total

    def recent_backpressure_ms(self, window_minutes: int) -> float:
        """Mean topology backpressure time over the trailing window."""
        start = int(self.now) - window_minutes * 60
        series = self.store.get(
            MetricNames.TOPOLOGY_BACKPRESSURE_TIME_MS,
            {"topology": self.topology_name},
        ).between(start, 2**62)
        return series.mean() if len(series) else 0.0

    def component_backpressure_ms(
        self, window_minutes: int
    ) -> dict[str, float]:
        """Per-bolt mean backpressure time over the trailing window."""
        start = int(self.now) - window_minutes * 60
        result = {}
        for bolt in self.topology.bolts():
            series = self.store.aggregate(
                MetricNames.BACKPRESSURE_TIME_MS,
                {"topology": self.topology_name, "component": bolt.name},
                start=start,
            )
            result[bolt.name] = series.mean() if len(series) else 0.0
        return result
