"""Forecasting substrate: the Prophet-flavoured traffic models.

Caladrius forecasts topology source throughput with Facebook's Prophet,
"a framework for generalized time series modelling ... based on an
additive model where non-linear trends are fit with periodic (yearly,
weekly, daily, etc.) seasonality.  It is robust to missing data, shifts
in the trend, and large outliers" (paper Section IV-A).  Prophet is not
available offline, so this package re-implements the same additive
decomposition:

* :class:`~repro.forecasting.prophet_lite.ProphetLite` — piecewise-linear
  trend with automatic changepoints plus Fourier seasonality, fit by
  (optionally robust) ridge regression, with uncertainty intervals from
  residual spread and simulated future trend changes.
* :class:`~repro.forecasting.summary.SummaryForecaster` — the paper's
  "Statistic Summary Traffic Model" for stable traffic profiles.
* :mod:`~repro.forecasting.backtest` — rolling-origin evaluation.
"""

from repro.forecasting.backtest import BacktestResult, rolling_origin_backtest
from repro.forecasting.base import Forecast, Forecaster
from repro.forecasting.holt_winters import HoltWinters
from repro.forecasting.prophet_lite import ProphetLite, Seasonality
from repro.forecasting.summary import SummaryForecaster

__all__ = [
    "BacktestResult",
    "Forecast",
    "Forecaster",
    "HoltWinters",
    "ProphetLite",
    "Seasonality",
    "SummaryForecaster",
    "rolling_origin_backtest",
]
