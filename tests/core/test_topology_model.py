"""Tests for critical-path chaining and backpressure risk (Eq. 12-14)."""

from __future__ import annotations

import math

import pytest

from repro.core.component_model import ComponentModel
from repro.core.instance_model import InstanceModel
from repro.core.topology_model import BackpressureRisk, TopologyModel
from repro.errors import ModelError
from repro.heron.groupings import ShuffleGrouping
from repro.heron.topology import TopologyBuilder
from repro.heron.wordcount import WordCountParams, build_word_count

PATH = ["sentence-spout", "splitter", "counter"]


def wordcount_model(splitter_p=2, counter_p=4):
    topology, _, _ = build_word_count(
        WordCountParams(
            splitter_parallelism=splitter_p, counter_parallelism=counter_p
        )
    )
    components = {
        "splitter": ComponentModel(
            "splitter", InstanceModel({"default": 7.63}, 11e6), splitter_p
        ),
        "counter": ComponentModel(
            "counter", InstanceModel({}, 70e6), counter_p
        ),
    }
    return TopologyModel(topology, components)


class TestConstruction:
    def test_missing_bolt_model_rejected(self):
        topology, _, _ = build_word_count()
        with pytest.raises(ModelError, match="no component model"):
            TopologyModel(topology, {})

    def test_parallelism_mismatch_rejected(self):
        topology, _, _ = build_word_count(
            WordCountParams(splitter_parallelism=2, counter_parallelism=2)
        )
        components = {
            "splitter": ComponentModel(
                "splitter", InstanceModel({"default": 7.63}, 11e6), 5
            ),
            "counter": ComponentModel("counter", InstanceModel({}, 70e6), 2),
        }
        with pytest.raises(ModelError, match="parallelism"):
            TopologyModel(topology, components)

    def test_spout_defaults_to_identity(self):
        model = wordcount_model()
        spout = model.component("sentence-spout")
        assert spout.output_rate(5e6) == pytest.approx(5e6)
        assert math.isinf(spout.saturation_point())


class TestEquation12:
    def test_linear_chain(self):
        model = wordcount_model()
        # 10M sentences -> 76.3M words -> counter processes all of them.
        assert model.critical_path_output(PATH, 10e6) == pytest.approx(76.3e6)

    def test_splitter_bottleneck(self):
        model = wordcount_model(splitter_p=2, counter_p=4)
        # Splitter saturates at 22M: output clips at 2 * 7.63 * 11M.
        out = model.critical_path_output(PATH, 40e6)
        assert out == pytest.approx(2 * 7.63 * 11e6)

    def test_counter_bottleneck(self):
        model = wordcount_model(splitter_p=8, counter_p=2)
        # Counter capacity 140M words < splitter output at high rates.
        out = model.critical_path_output(PATH, 40e6)
        assert out == pytest.approx(2 * 70e6)

    def test_path_validation(self):
        model = wordcount_model()
        with pytest.raises(ModelError, match="start at a spout"):
            model.critical_path_output(["splitter", "counter"], 1e6)
        with pytest.raises(ModelError, match="no stream"):
            model.critical_path_output(
                ["sentence-spout", "counter"], 1e6
            )


class TestEquation13:
    def test_saturation_output_is_chained_st(self):
        model = wordcount_model(splitter_p=2, counter_p=4)
        assert model.path_saturation_output(PATH) == pytest.approx(
            2 * 7.63 * 11e6
        )

    def test_saturation_source_rate_splitter_bound(self):
        model = wordcount_model(splitter_p=2, counter_p=4)
        t0_prime = model.path_saturation_source_rate(PATH)
        assert t0_prime == pytest.approx(22e6, rel=1e-6)

    def test_saturation_source_rate_counter_bound(self):
        model = wordcount_model(splitter_p=8, counter_p=2)
        t0_prime = model.path_saturation_source_rate(PATH)
        # Counter saturates at 140M words = 140/7.63 M sentences.
        assert t0_prime == pytest.approx(140e6 / 7.63, rel=1e-6)

    def test_bottleneck_identification(self):
        model = wordcount_model(splitter_p=2, counter_p=4)
        name, rate = model.path_bottleneck(PATH)
        assert name == "splitter"
        assert rate == pytest.approx(22e6)
        model2 = wordcount_model(splitter_p=8, counter_p=2)
        name2, _ = model2.path_bottleneck(PATH)
        assert name2 == "counter"

    def test_bottleneck_agrees_with_inverse_chain(self):
        for sp, cp in ((2, 4), (8, 2), (3, 3)):
            model = wordcount_model(splitter_p=sp, counter_p=cp)
            _, via_factors = model.path_bottleneck(PATH)
            via_inverse = model.path_saturation_source_rate(PATH)
            assert via_factors == pytest.approx(via_inverse, rel=1e-6)

    def test_unsaturable_path(self):
        topology, _, _ = build_word_count(
            WordCountParams(splitter_parallelism=1, counter_parallelism=1)
        )
        components = {
            "splitter": ComponentModel(
                "splitter", InstanceModel({"default": 7.63}), 1
            ),
            "counter": ComponentModel("counter", InstanceModel({}), 1),
        }
        model = TopologyModel(topology, components)
        assert math.isinf(model.path_saturation_source_rate(PATH))
        name, rate = model.path_bottleneck(PATH)
        assert name is None
        assert math.isinf(rate)


class TestEquation14:
    def test_low_risk_far_from_saturation(self):
        model = wordcount_model()
        assessment = model.backpressure_risk(PATH, 5e6)
        assert assessment.risk is BackpressureRisk.LOW
        assert assessment.headroom > 4

    def test_high_risk_near_saturation(self):
        model = wordcount_model(splitter_p=2, counter_p=4)
        assessment = model.backpressure_risk(PATH, 21e6)
        assert assessment.risk is BackpressureRisk.HIGH
        assert assessment.bottleneck == "splitter"

    def test_threshold_is_tunable(self):
        model = wordcount_model(splitter_p=2, counter_p=4)
        at_80pct = model.backpressure_risk(PATH, 17.6e6, threshold=0.8)
        at_90pct = model.backpressure_risk(PATH, 17.6e6, threshold=0.9)
        assert at_80pct.risk is BackpressureRisk.HIGH
        assert at_90pct.risk is BackpressureRisk.LOW

    def test_validation(self):
        model = wordcount_model()
        with pytest.raises(ModelError):
            model.backpressure_risk(PATH, 1e6, threshold=0.0)
        with pytest.raises(ModelError):
            model.backpressure_risk(PATH, -1.0)


class TestPropagate:
    def test_dag_propagation_matches_chain_on_linear_topology(self):
        model = wordcount_model()
        report = model.propagate({"sentence-spout": 10e6})
        assert report["counter"]["processed"] == pytest.approx(
            model.critical_path_output(PATH, 10e6)
        )
        assert not report["splitter"]["saturated"]

    def test_saturation_flags(self):
        model = wordcount_model(splitter_p=2, counter_p=4)
        report = model.propagate({"sentence-spout": 40e6})
        assert report["splitter"]["saturated"]

    def test_missing_spout_rate_rejected(self):
        model = wordcount_model()
        with pytest.raises(ModelError, match="missing source rate"):
            model.propagate({})

    def test_diamond_topology_propagation(self):
        builder = TopologyBuilder("diamond")
        builder.add_spout("s", 1)
        builder.add_bolt("left", 1)
        builder.add_bolt("right", 1)
        builder.add_bolt("sink", 1)
        builder.connect("s", "left", ShuffleGrouping())
        builder.connect("s", "right", ShuffleGrouping())
        builder.connect("left", "sink", ShuffleGrouping())
        builder.connect("right", "sink", ShuffleGrouping())
        topology = builder.build()
        components = {
            "left": ComponentModel("left", InstanceModel({"default": 2.0}), 1),
            "right": ComponentModel("right", InstanceModel({"default": 3.0}), 1),
            "sink": ComponentModel("sink", InstanceModel({}, 1e9), 1),
        }
        model = TopologyModel(topology, components)
        report = model.propagate({"s": 100.0})
        # The spout's single stream feeds both bolts in full.
        assert report["left"]["input"] == 100.0
        assert report["right"]["input"] == 100.0
        assert report["sink"]["input"] == pytest.approx(500.0)


class TestWithParallelism:
    def test_dry_run_rescaling(self):
        model = wordcount_model(splitter_p=2, counter_p=4)
        scaled = model.with_parallelism({"splitter": 4})
        # After scaling the splitter to 4, the counter (4 x 70M words =
        # 280M, i.e. 280/7.63 M sentences) becomes the binding stage.
        assert scaled.path_saturation_source_rate(PATH) == pytest.approx(
            280e6 / 7.63, rel=1e-6
        )
        # The original is untouched.
        assert model.path_saturation_source_rate(PATH) == pytest.approx(22e6)

    def test_scaling_moves_the_bottleneck(self):
        model = wordcount_model(splitter_p=2, counter_p=4)
        assert model.path_bottleneck(PATH)[0] == "splitter"
        scaled = model.with_parallelism({"splitter": 8})
        assert scaled.path_bottleneck(PATH)[0] == "counter"
