"""Tests for the Holt-Winters forecaster."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ForecastError
from repro.forecasting.backtest import rolling_origin_backtest
from repro.forecasting.holt_winters import HoltWinters
from repro.forecasting.summary import SummaryForecaster
from repro.timeseries.series import TimeSeries

STEP = 600


def seasonal_series(periods=10, m=24, noise=0.5, trend=0.0, seed=0):
    rng = np.random.default_rng(seed)
    n = periods * m
    t = np.arange(n) * STEP
    y = (
        100.0
        + 20.0 * np.sin(2 * np.pi * np.arange(n) / m)
        + trend * np.arange(n)
        + rng.normal(0, noise, n)
    )
    return TimeSeries(t, y)


class TestValidation:
    def test_parameter_bounds(self):
        with pytest.raises(ForecastError):
            HoltWinters(alpha=0.0)
        with pytest.raises(ForecastError):
            HoltWinters(beta=1.5)
        with pytest.raises(ForecastError):
            HoltWinters(season_length=1)
        with pytest.raises(ForecastError):
            HoltWinters(interval_level=1.0)

    def test_needs_two_seasons(self):
        series = seasonal_series(periods=1, m=24)
        with pytest.raises(ForecastError, match="two seasons"):
            HoltWinters(season_length=24).fit(series)

    def test_unfitted_predict(self):
        with pytest.raises(ForecastError, match="not fitted"):
            HoltWinters().predict([0])


class TestSeasonal:
    def test_tracks_the_seasonal_shape(self):
        series = seasonal_series(m=24, noise=0.5)
        model = HoltWinters(season_length=24).fit(series)
        forecast = model.forecast(steps=24, step_seconds=STEP)
        # The forecast should swing with the season, not sit flat.
        assert forecast.yhat.max() > 110
        assert forecast.yhat.min() < 90

    def test_phase_alignment(self):
        # Pure sinusoid: the forecast's first sample continues the phase.
        series = seasonal_series(m=24, noise=0.0)
        model = HoltWinters(season_length=24, gamma=0.5).fit(series)
        forecast = model.forecast(steps=24, step_seconds=STEP)
        n = len(series)
        truth = 100.0 + 20.0 * np.sin(
            2 * np.pi * (np.arange(n, n + 24)) / 24
        )
        assert np.allclose(forecast.yhat, truth, atol=3.0)

    def test_trend_continues(self):
        series = seasonal_series(m=24, trend=0.5, noise=0.2)
        model = HoltWinters(season_length=24).fit(series)
        forecast = model.forecast(steps=48, step_seconds=STEP)
        assert forecast.yhat[-24:].mean() > forecast.yhat[:24].mean()


class TestNonSeasonal:
    def test_holt_linear_mode(self):
        t = np.arange(50) * STEP
        series = TimeSeries(t, 10.0 + 2.0 * np.arange(50))
        model = HoltWinters(season_length=None).fit(series)
        forecast = model.forecast(steps=5, step_seconds=STEP)
        expected = 10.0 + 2.0 * np.arange(50, 55)
        assert np.allclose(forecast.yhat, expected, rtol=0.05)

    def test_floor_at_zero(self):
        t = np.arange(30) * STEP
        series = TimeSeries(t, np.maximum(0, 50.0 - 2.0 * np.arange(30)))
        model = HoltWinters(season_length=None, alpha=0.9, beta=0.9).fit(series)
        forecast = model.forecast(steps=40, step_seconds=STEP)
        assert np.all(forecast.yhat >= 0.0)


class TestUncertainty:
    def test_bands_widen_with_horizon(self):
        series = seasonal_series(m=24, noise=2.0)
        model = HoltWinters(season_length=24).fit(series)
        forecast = model.forecast(steps=72, step_seconds=STEP)
        near = (forecast.yhat_upper - forecast.yhat_lower)[:10].mean()
        far = (forecast.yhat_upper - forecast.yhat_lower)[-10:].mean()
        assert far > near


class TestAccuracy:
    def test_beats_summary_on_seasonal_traffic(self):
        series = seasonal_series(periods=12, m=24, noise=1.0)
        hw = rolling_origin_backtest(
            lambda: HoltWinters(season_length=24),
            series,
            initial_train=6 * 24,
            horizon=24,
        )
        summary = rolling_origin_backtest(
            lambda: SummaryForecaster("mean", window=24),
            series,
            initial_train=6 * 24,
            horizon=24,
        )
        assert hw.smape < summary.smape / 2
