"""Calibration: recovering model parameters from observed metrics.

The paper fits its models from production observations: "to draw the
curve in Fig. 3 for a given instance, we need at least two data points:
one in the non-saturation interval and one in the saturation interval"
(Section V-B).  This module implements that fitting:

* :func:`fit_piecewise_linear` — segmented regression for the
  ``min(alpha * t, ST)`` curve, with the paper's structural constraint
  ``ST = alpha * SP`` built in, plus confidence information;
* :func:`fit_linear` — straight-line fits (through the origin or with an
  intercept) used for I/O ratios and the CPU model;
* :func:`component_observations` / :func:`calibrate_component` — adapters
  that pull per-minute counters out of a metrics store and produce a
  ready-to-use :class:`~repro.core.component_model.ComponentModel`.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.component_model import ComponentModel
from repro.core.instance_model import InstanceModel
from repro.errors import CalibrationError, DegradedMetricsWarning, MetricsError
from repro.heron.metrics import MetricNames
from repro.timeseries.series import TimeSeries
from repro.timeseries.store import MetricsStore

__all__ = [
    "PiecewiseLinearFit",
    "LinearFit",
    "fit_piecewise_linear",
    "fit_linear",
    "mape",
    "degraded_aggregate",
    "component_observations",
    "calibrate_component",
    "calibrate_sink",
    "measured_shares",
]


@dataclass(frozen=True)
class PiecewiseLinearFit:
    """Parameters of a fitted ``y = alpha * min(x, SP)`` curve.

    ``saturation_point`` is ``math.inf`` when the data never saturates
    (all points lie on the linear segment); ``saturation_throughput`` is
    then also infinite.  ``alpha_stderr`` is the standard error of the
    slope; ``residual_std`` the RMS residual of the chosen fit.
    """

    alpha: float
    saturation_point: float
    residual_std: float
    alpha_stderr: float
    r_squared: float
    n_points: int

    @property
    def saturation_throughput(self) -> float:
        """``ST = alpha * SP``."""
        return self.alpha * self.saturation_point

    @property
    def saturated(self) -> bool:
        """True when the fit found a finite saturation point."""
        return math.isfinite(self.saturation_point)

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the fitted curve."""
        return self.alpha * np.minimum(x, self.saturation_point)

    def to_instance_model(
        self, stream: str = "default", per_instance_scale: float = 1.0
    ) -> InstanceModel:
        """Convert to an :class:`InstanceModel`.

        ``per_instance_scale`` divides the fitted saturation point when
        the fit was made at component level over ``p`` uniformly loaded
        instances (``scale = p``).
        """
        if per_instance_scale <= 0:
            raise CalibrationError("per_instance_scale must be positive")
        return InstanceModel(
            {stream: self.alpha},
            self.saturation_point / per_instance_scale,
        )


@dataclass(frozen=True)
class LinearFit:
    """A straight-line fit ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    residual_std: float
    r_squared: float
    n_points: int

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the fitted line."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept


def _validate_xy(x: np.ndarray, y: np.ndarray, minimum: int) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise CalibrationError("x and y must be 1-D arrays of equal length")
    mask = np.isfinite(x) & np.isfinite(y)
    x, y = x[mask], y[mask]
    if x.shape[0] < minimum:
        raise CalibrationError(
            f"need at least {minimum} finite observations, got {x.shape[0]}"
        )
    if np.any(x < 0) or np.any(y < 0):
        raise CalibrationError("rates must be non-negative")
    return x, y


def fit_linear(
    x: np.ndarray,
    y: np.ndarray,
    through_origin: bool = False,
) -> LinearFit:
    """Ordinary least squares for a straight line.

    ``through_origin=True`` fits ``y = slope * x`` (used for I/O
    coefficients, which are zero at zero input).
    """
    x, y = _validate_xy(x, y, minimum=2)
    if through_origin:
        denom = float(np.dot(x, x))
        if denom == 0:
            raise CalibrationError("all x are zero; slope is undefined")
        slope = float(np.dot(x, y) / denom)
        intercept = 0.0
    else:
        design = np.column_stack([x, np.ones_like(x)])
        coef, *_ = np.linalg.lstsq(design, y, rcond=None)
        slope, intercept = float(coef[0]), float(coef[1])
    residuals = y - (slope * x + intercept)
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(
        slope=slope,
        intercept=intercept,
        residual_std=float(np.sqrt(ss_res / x.shape[0])),
        r_squared=r2,
        n_points=int(x.shape[0]),
    )


def mape(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute percentage error of predictions against truth.

    The workload matrix's per-cell score: ``mean(|pred - act| / act)``
    over the pairs whose actual value is positive (a component that
    observed nothing contributes no percentage).  Raises when *no* pair
    has a positive actual — a score of a silent topology is meaningless,
    not zero.
    """
    actual = np.asarray(actual, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if actual.shape != predicted.shape or actual.ndim != 1:
        raise CalibrationError(
            "actual and predicted must be 1-D arrays of equal length"
        )
    mask = np.isfinite(actual) & np.isfinite(predicted) & (actual > 0)
    if not mask.any():
        raise CalibrationError(
            "mape needs at least one pair with a positive actual value"
        )
    return float(
        np.mean(np.abs(predicted[mask] - actual[mask]) / actual[mask])
    )


def fit_piecewise_linear(
    x: np.ndarray,
    y: np.ndarray,
    min_linear_points: int = 2,
) -> PiecewiseLinearFit:
    """Segmented regression for ``y = alpha * min(x, SP)``.

    The paper's structural form has only two parameters — the slope and
    the breakpoint (the plateau is their product) — so the fit scans
    candidate breakpoints and solves the conditional least squares
    problem in closed form at each:

    with basis ``m(x) = min(x, SP)``, the optimal slope is
    ``alpha = sum(y * m) / sum(m^2)``.

    Candidates are the observed x values plus a refinement grid between
    the best candidate's neighbours.  If the best breakpoint lands at or
    beyond the largest observation, the data never saturated and the fit
    degenerates to a line through the origin with ``SP = inf``.
    """
    x, y = _validate_xy(x, y, minimum=max(3, min_linear_points + 1))
    order = np.argsort(x)
    x, y = x[order], y[order]
    if float(x.max()) == 0.0:
        raise CalibrationError("all observations at zero rate; nothing to fit")

    def sse_for(sp: float) -> tuple[float, float]:
        m = np.minimum(x, sp)
        denom = float(np.dot(m, m))
        if denom == 0:
            return math.inf, 0.0
        alpha = float(np.dot(y, m) / denom)
        residual = y - alpha * m
        return float(np.dot(residual, residual)), alpha

    # Pass 1: candidate breakpoints at the observed x values.
    candidates = np.unique(x[x > 0])
    best_sp, (best_sse, best_alpha) = candidates[0], sse_for(candidates[0])
    for sp in candidates[1:]:
        sse, alpha = sse_for(float(sp))
        if sse < best_sse:
            best_sp, best_sse, best_alpha = float(sp), sse, alpha
    # Pass 2: refine between the neighbours of the winning candidate.
    idx = int(np.searchsorted(candidates, best_sp))
    lo = candidates[idx - 1] if idx > 0 else best_sp * 0.5
    hi = candidates[idx + 1] if idx + 1 < candidates.shape[0] else best_sp * 1.5
    for sp in np.linspace(lo, hi, 64):
        if sp <= 0:
            continue
        sse, alpha = sse_for(float(sp))
        if sse < best_sse:
            best_sp, best_sse, best_alpha = float(sp), sse, alpha

    # Saturation requires evidence: points meaningfully beyond the
    # breakpoint.  Otherwise report a pure linear fit.
    beyond = int(np.count_nonzero(x > best_sp * 1.0001))
    if beyond == 0 or best_sp >= float(x.max()) * 0.9999:
        line = fit_linear(x, y, through_origin=True)
        return PiecewiseLinearFit(
            alpha=line.slope,
            saturation_point=math.inf,
            residual_std=line.residual_std,
            alpha_stderr=_slope_stderr(x, line.residual_std),
            r_squared=line.r_squared,
            n_points=int(x.shape[0]),
        )
    m = np.minimum(x, best_sp)
    residual_std = float(np.sqrt(best_sse / x.shape[0]))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - best_sse / ss_tot if ss_tot > 0 else 1.0
    return PiecewiseLinearFit(
        alpha=best_alpha,
        saturation_point=best_sp,
        residual_std=residual_std,
        alpha_stderr=_slope_stderr(m, residual_std),
        r_squared=r2,
        n_points=int(x.shape[0]),
    )


def _slope_stderr(basis: np.ndarray, residual_std: float) -> float:
    denom = float(np.dot(basis, basis))
    if denom == 0:
        return math.inf
    return residual_std / math.sqrt(denom)


# ----------------------------------------------------------------------
# Metrics-store adapters
# ----------------------------------------------------------------------
def degraded_aggregate(
    store: MetricsStore,
    name: str,
    tag_filter: dict[str, str],
    start: int | None = None,
) -> TimeSeries:
    """Component rollup that *skips* degraded minutes instead of lying.

    A plain :meth:`~repro.timeseries.store.MetricsStore.aggregate` sums
    over the union of timestamps, silently under-counting any minute
    where an instance failed to report (crash, metrics dropout).  This
    wrapper keeps only fully reported minutes, emits a
    :class:`~repro.errors.DegradedMetricsWarning` naming what was
    dropped, and lets calibration proceed on the clean window — the
    graceful-degradation contract of the fault model.
    """
    series, degraded = store.aggregate_complete(name, tag_filter, start=start)
    if degraded:
        warnings.warn(
            DegradedMetricsWarning(
                f"{name} for {tag_filter}: skipped {len(degraded)} "
                f"degraded metric minute(s) (missing or partially "
                f"reported); calibrating on the remaining {len(series)}"
            ),
            stacklevel=2,
        )
    return series


def component_observations(
    store: MetricsStore,
    topology_name: str,
    component: str,
    source_spout: str,
    warmup_minutes: int = 1,
) -> dict[str, np.ndarray]:
    """Per-minute observation arrays for one component.

    Returns aligned arrays keyed ``source`` (topology source rate:
    the spouts' external ``source-count``), ``input`` (the component's
    received or fetched tuples), ``output`` (its emitted tuples) and
    ``cpu`` (component CPU cores).  The first ``warmup_minutes`` samples
    are dropped, mirroring the paper's steady-state measurement
    discipline.
    """
    base_tags = {"topology": topology_name}
    source = degraded_aggregate(
        store, MetricNames.SOURCE_COUNT, {**base_tags, "component": source_spout}
    )
    component_tags = {**base_tags, "component": component}
    try:
        inputs = degraded_aggregate(
            store, MetricNames.RECEIVED_COUNT, component_tags
        )
    except MetricsError:  # spouts have no received-count; use fetched
        inputs = degraded_aggregate(
            store, MetricNames.EXECUTE_COUNT, component_tags
        )
    outputs = degraded_aggregate(store, MetricNames.EMIT_COUNT, component_tags)
    cpu = degraded_aggregate(store, MetricNames.CPU_LOAD, component_tags)
    src_aligned, in_aligned = source.align(inputs)
    _, out_aligned = source.align(outputs)
    _, cpu_aligned = source.align(cpu)
    n = min(len(src_aligned), len(out_aligned), len(cpu_aligned))
    if n <= warmup_minutes:
        raise CalibrationError(
            f"only {n} usable aligned minutes available (degraded metric "
            f"windows are skipped); need more than the "
            f"{warmup_minutes}-minute warmup"
        )
    sl = slice(warmup_minutes, n)
    return {
        "source": src_aligned.values[sl],
        "input": in_aligned.values[sl],
        "output": out_aligned.values[sl],
        "cpu": cpu_aligned.values[sl],
    }


def calibrate_component(
    name: str,
    source: np.ndarray,
    output: np.ndarray,
    parallelism: int,
    stream: str = "default",
    input_shares: np.ndarray | None = None,
) -> tuple[ComponentModel, PiecewiseLinearFit]:
    """Fit a component model from (source rate, output rate) points.

    The fit is at *component* level (what the metrics expose); the
    instance model is derived by dividing the component saturation point
    by the parallelism (uniform shares) or by the hottest share (biased),
    which inverts Eq. 9 / the Section IV-B2b share analysis.
    """
    fit = fit_piecewise_linear(source, output)
    if input_shares is None:
        scale = float(parallelism)
    else:
        shares = np.asarray(input_shares, dtype=np.float64)
        max_share = float(shares.max())
        if max_share <= 0:
            raise CalibrationError("input shares must have positive mass")
        scale = 1.0 / max_share
    instance = fit.to_instance_model(stream, per_instance_scale=scale)
    model = ComponentModel(
        name,
        instance,
        parallelism,
        None if input_shares is None else input_shares,
    )
    return model, fit


def measured_shares(
    store: MetricsStore,
    topology_name: str,
    component: str,
    parallelism: int,
    start: int | None = None,
) -> np.ndarray:
    """The observed per-instance traffic shares of one component.

    The paper's "routing probability ... is a function of the data in
    the tuple stream and their relative frequency" — and the most direct
    way to obtain it is to measure it: each instance's share of the
    component's received tuples over a window.  Use the result as
    ``input_shares`` when building a :class:`ComponentModel` for a
    fields-grouped component whose key distribution is unknown.
    """
    totals = np.zeros(parallelism, dtype=np.float64)
    for index in range(parallelism):
        series = store.aggregate(
            MetricNames.RECEIVED_COUNT,
            {
                "topology": topology_name,
                "component": component,
                "instance": f"{component}_{index}",
            },
            start=start,
        )
        totals[index] = series.sum()
    grand_total = float(totals.sum())
    if grand_total <= 0:
        raise CalibrationError(
            f"component {component!r} received no traffic in the window; "
            "shares are undefined"
        )
    return totals / grand_total


def calibrate_sink(
    name: str,
    offered: np.ndarray,
    processed: np.ndarray,
    parallelism: int,
    input_shares: np.ndarray | None = None,
) -> tuple[ComponentModel, PiecewiseLinearFit]:
    """Fit a sink component (no output streams) from its input curve.

    The paper's Counter evaluation (Fig. 9) fits the component's *input*
    throughput against the rate offered to it: slope ~1 below the
    saturation point, flat above.  The resulting model has no alphas —
    its processed rate is what the topology chain (Eq. 12) reports as
    the topology output.
    """
    fit = fit_piecewise_linear(offered, processed)
    if input_shares is None:
        scale = float(parallelism)
    else:
        shares = np.asarray(input_shares, dtype=np.float64)
        max_share = float(shares.max())
        if max_share <= 0:
            raise CalibrationError("input shares must have positive mass")
        scale = 1.0 / max_share
    # The instance's saturation point is its processing capacity: the
    # plateau height divided over the instances (alpha~1 folds noise in).
    instance_sp = (
        fit.saturation_throughput / scale
        if fit.saturated
        else math.inf
    )
    instance = InstanceModel({}, instance_sp)
    model = ComponentModel(
        name,
        instance,
        parallelism,
        None if input_shares is None else input_shares,
    )
    return model, fit
