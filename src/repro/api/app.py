"""Request routing and model dispatch for the Caladrius API tier.

:class:`CaladriusApp` is transport-agnostic: it maps
``(method, path, query, body)`` to a JSON-able response and a status
code.  :mod:`repro.api.server` adapts it to HTTP; tests can call
:meth:`CaladriusApp.handle` directly without sockets.

Modelling calls "may incur a wait ... therefore, it is prudent to let
the API be asynchronous" (paper Section III-A): POSTing with
``async=1`` returns a request id immediately, the modelling runs on a
worker pool, and ``GET /model/result/{id}`` retrieves the outcome.
By default an endpoint runs *all* configured model implementations and
concatenates the results into one JSON response, as the paper
describes; ``?model=`` narrows to one.
"""

from __future__ import annotations

import threading
import uuid
from collections.abc import Mapping
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any

from repro.config.loader import CaladriusConfig
from repro.config.registry import ModelRegistry, build_registry
from repro.errors import ApiError, ReproError, TopologyError
from repro.faults.health import assess_topology_metrics
from repro.heron.tracker import TopologyTracker
from repro.timeseries.store import MetricsStore

__all__ = ["CaladriusApp"]


class CaladriusApp:
    """The Caladrius service core: routing plus async job management.

    Parameters
    ----------
    config:
        Validated service configuration (enabled models and options).
    tracker:
        Topology metadata source.
    store:
        Metrics database.
    max_workers:
        Size of the asynchronous modelling pool.
    """

    def __init__(
        self,
        config: CaladriusConfig,
        tracker: TopologyTracker,
        store: MetricsStore,
        max_workers: int = 4,
    ) -> None:
        self.config = config
        self.tracker = tracker
        self.store = store
        self.registry: ModelRegistry = build_registry(config, tracker, store)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="caladrius-model"
        )
        self._jobs: dict[str, Future[dict[str, Any]]] = {}
        self._jobs_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def handle(
        self,
        method: str,
        path: str,
        query: Mapping[str, str] | None = None,
        body: Mapping[str, Any] | None = None,
    ) -> tuple[int, dict[str, Any]]:
        """Route one request; returns ``(status, json_payload)``."""
        query = dict(query or {})
        body = dict(body or {})
        parts = [p for p in path.split("/") if p]
        try:
            return 200, self._route(method.upper(), parts, query, body)
        except ApiError as exc:
            return exc.status, {"error": str(exc), **exc.payload}
        except ReproError as exc:
            return 400, {"error": str(exc)}

    def _route(
        self,
        method: str,
        parts: list[str],
        query: Mapping[str, str],
        body: Mapping[str, Any],
    ) -> dict[str, Any]:
        if method == "GET" and parts == ["topologies"]:
            return {"topologies": self.tracker.names()}
        if method == "GET" and len(parts) == 3 and parts[0] == "topology":
            return self._topology_info(parts[1], parts[2])
        if (
            len(parts) == 4
            and parts[0] == "model"
            and parts[1] == "traffic"
            and parts[2] == "heron"
        ):
            if method != "GET":
                raise ApiError("traffic modelling uses GET", 405)
            return self._maybe_async(
                query, lambda: self._traffic(parts[3], query)
            )
        if (
            len(parts) == 4
            and parts[0] == "model"
            and parts[1] == "topology"
            and parts[2] == "heron"
        ):
            if method != "POST":
                raise ApiError("performance modelling uses POST", 405)
            return self._maybe_async(
                query, lambda: self._performance(parts[3], query, body)
            )
        if method == "GET" and len(parts) == 3 and parts[:2] == ["model", "result"]:
            return self._result(parts[2])
        raise ApiError(f"no route for {method} /{'/'.join(parts)}", 404)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _tracked(self, name: str):
        """Topology lookup with not-found semantics (404, not 400)."""
        try:
            return self.tracker.get(name)
        except TopologyError as exc:
            raise ApiError(str(exc), 404) from exc

    def _require_healthy_metrics(self, topology: str) -> None:
        """503 (structured) when the topology's metrics can't be modelled.

        Models calibrated on windows with many missing minutes produce
        confidently wrong answers; the service declines instead, and the
        response carries the health report so callers can decide whether
        to retry later or lower ``degraded_threshold``.
        """
        tracked = self._tracked(topology)
        spouts = [s.name for s in tracked.topology.spouts()]
        health = assess_topology_metrics(
            self.store,
            topology,
            spouts,
            degraded_threshold=self.config.degraded_threshold,
        )
        if not health.usable:
            raise ApiError(
                f"metrics for topology {topology!r} are {health.status}: "
                f"{health.detail}",
                503,
                {"metrics_health": health.as_dict()},
            )

    def _topology_info(self, name: str, kind: str) -> dict[str, Any]:
        tracked = self._tracked(name)
        if kind == "logical":
            return tracked.logical_plan()
        if kind == "packing":
            return tracked.packing_plan()
        raise ApiError(f"unknown topology view {kind!r}", 404)

    def _traffic(
        self, topology: str, query: Mapping[str, str]
    ) -> dict[str, Any]:
        horizon = _int_param(query, "horizon_minutes", default=60)
        source = _int_param(query, "source_minutes", default=None)
        self._require_healthy_metrics(topology)
        models = self.registry.traffic_model(query.get("model"))
        results = [
            model.predict(topology, source, horizon).as_dict()
            for model in models
        ]
        return {"topology": topology, "results": results}

    def _performance(
        self,
        topology: str,
        query: Mapping[str, str],
        body: Mapping[str, Any],
    ) -> dict[str, Any]:
        source_rate = body.get("source_rate")
        if source_rate is not None and not isinstance(source_rate, (int, float)):
            raise ApiError("source_rate must be a number")
        parallelisms = body.get("parallelisms")
        if parallelisms is not None:
            if not isinstance(parallelisms, dict) or not all(
                isinstance(v, int) for v in parallelisms.values()
            ):
                raise ApiError("parallelisms must map components to integers")
        traffic_model_name = body.get("traffic_model")
        self._require_healthy_metrics(topology)
        traffic = None
        if source_rate is None:
            horizon = _int_param(query, "horizon_minutes", default=60)
            traffic_models = self.registry.traffic_model(traffic_model_name)
            traffic = traffic_models[0].predict(topology, None, horizon)
        models = self.registry.performance_model(query.get("model"))
        results = [
            model.predict(
                topology,
                source_rate=source_rate,
                traffic=traffic,
                parallelisms=parallelisms,
            ).as_dict()
            for model in models
        ]
        return {"topology": topology, "results": results}

    # ------------------------------------------------------------------
    # Async jobs
    # ------------------------------------------------------------------
    def _maybe_async(self, query: Mapping[str, str], work) -> dict[str, Any]:
        if query.get("async") not in ("1", "true", "yes"):
            return work()
        request_id = uuid.uuid4().hex
        future = self._pool.submit(work)
        with self._jobs_lock:
            self._jobs[request_id] = future
        return {"request_id": request_id, "status": "pending"}

    def _result(self, request_id: str) -> dict[str, Any]:
        with self._jobs_lock:
            future = self._jobs.get(request_id)
        if future is None:
            raise ApiError(f"unknown request id {request_id!r}", 404)
        if not future.done():
            return {"request_id": request_id, "status": "pending"}
        with self._jobs_lock:
            self._jobs.pop(request_id, None)
        try:
            result = future.result()
        except ReproError as exc:
            return {"request_id": request_id, "status": "error", "error": str(exc)}
        return {"request_id": request_id, "status": "done", "result": result}

    def shutdown(self) -> None:
        """Stop the worker pool (pending jobs are completed)."""
        self._pool.shutdown(wait=True)


def _int_param(
    query: Mapping[str, str], name: str, default: int | None
) -> int | None:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ApiError(f"{name} must be an integer, got {raw!r}") from None
    if value < 1:
        raise ApiError(f"{name} must be >= 1")
    return value
