"""End-to-end tests over real HTTP: server + client."""

from __future__ import annotations

import pytest

from repro.api.app import CaladriusApp
from repro.api.client import CaladriusClient
from repro.api.server import CaladriusServer
from repro.config import load_config
from repro.errors import ApiError

M = 1e6


@pytest.fixture(scope="module")
def live_service(deployed_wordcount):
    _, _, _, store, tracker = deployed_wordcount
    config = load_config(
        {
            "traffic_models": ["stats-summary"],
            "performance_models": ["throughput-prediction"],
        }
    )
    app = CaladriusApp(config, tracker, store)
    with CaladriusServer(app, port=0) as server:
        yield CaladriusClient(server.host, server.port)
    app.shutdown()


class TestOverHttp:
    def test_topologies(self, live_service):
        assert live_service.topologies() == ["word-count"]

    def test_logical_and_packing_plans(self, live_service):
        logical = live_service.logical_plan("word-count")
        assert "splitter" in logical["bolts"]
        packing = live_service.packing_plan("word-count")
        assert packing["containers"]

    def test_traffic_forecast(self, live_service):
        response = live_service.traffic("word-count", horizon_minutes=5)
        (result,) = response["results"]
        assert result["horizon_minutes"] == 5

    def test_performance_prediction(self, live_service):
        response = live_service.performance(
            "word-count", source_rate=10 * M
        )
        (result,) = response["results"]
        assert result["output_rate"] == pytest.approx(
            7.635 * 10 * M, rel=0.05
        )

    def test_performance_with_proposal(self, live_service):
        response = live_service.performance(
            "word-count",
            source_rate=30 * M,
            parallelisms={"splitter": 4},
        )
        (result,) = response["results"]
        assert result["parallelisms"]["splitter"] == 4

    def test_async_round_trip(self, live_service):
        result = live_service.performance_async(
            "word-count", source_rate=10 * M
        )
        assert result["results"][0]["output_rate"] > 0

    def test_error_surfaces_as_api_error(self, live_service):
        with pytest.raises(ApiError):
            live_service.logical_plan("missing")

    def test_bad_json_body_rejected(self, live_service):
        from http.client import HTTPConnection

        connection = HTTPConnection(
            live_service.host, live_service.port, timeout=10
        )
        try:
            connection.request(
                "POST",
                "/model/topology/heron/word-count",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            response.read()
        finally:
            connection.close()
