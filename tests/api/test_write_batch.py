"""The batched binary ingest endpoint over the threaded server.

``POST /metrics/write_batch`` carries WAL-framed samples verbatim;
these tests pin the codec's strict decode errors, the route's ack
contract (per-frame rejection without batch poisoning, LSN offsets on
durable stores), the request-size cap (413) and strict query parsing
(400 on duplicates), the client's Retry-After handling, and the
``BatchWriter``'s size/time auto-flush.
"""

from __future__ import annotations

import json
import struct
import threading
import time
import zlib
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.api.app import CaladriusApp
from repro.api.client import BatchWriter, CaladriusClient
from repro.api.ingest import (
    decode_frames,
    encode_frame,
    encode_frames,
    merge_stream_lines,
    rebase_refused,
)
from repro.api.server import CaladriusServer
from repro.config import load_config
from repro.durability import DurableMetricsStore
from repro.errors import ApiError
from repro.heron.tracker import TopologyTracker
from repro.timeseries.store import MetricsStore

_HEADER = struct.Struct("<II")


def _bare_config(**ingest_overrides):
    config = load_config({})
    config = replace(config, serving=replace(config.serving, enabled=False))
    if ingest_overrides:
        config = replace(
            config, ingest=replace(config.ingest, **ingest_overrides)
        )
    return config


@pytest.fixture()
def live(tmp_path):
    """A durable app on the threaded server, plus a no-retry client."""
    config = _bare_config()
    store = DurableMetricsStore(tmp_path / "data", fsync="always")
    app = CaladriusApp(config, TopologyTracker(), store)
    with CaladriusServer(app, port=0) as server:
        client = CaladriusClient(server.host, server.port, retries=0)
        try:
            yield app, client, store
        finally:
            client.close()
    app.shutdown()
    store.close()


class TestCodec:
    def test_round_trip(self):
        raw = encode_frames(
            [("m", 60, 1.5, {"topology": "t"}), ("m", 120, 2.5, None)]
        )
        frames = decode_frames(raw)
        assert [r["ts"] for r, _ in frames] == [60, 120]
        # The decoded body is the exact payload string that was framed.
        for record, body in frames:
            assert json.loads(body) == record
            assert "lsn" not in record

    def test_truncated_header_names_frame_and_offset(self):
        raw = encode_frame("m", 60, 1.0) + b"\x01\x02"
        with pytest.raises(ApiError) as excinfo:
            decode_frames(raw)
        assert excinfo.value.status == 400
        assert "malformed frame 1" in str(excinfo.value)
        assert excinfo.value.payload["frame"] == 1

    def test_truncated_payload(self):
        raw = encode_frame("m", 60, 1.0)[:-3]
        with pytest.raises(ApiError, match="truncated payload"):
            decode_frames(raw)

    def test_crc_mismatch(self):
        raw = bytearray(encode_frame("m", 60, 1.0))
        raw[-1] ^= 0xFF
        with pytest.raises(ApiError, match="crc32 mismatch"):
            decode_frames(bytes(raw))

    def test_non_json_payload(self):
        payload = b"not json"
        raw = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        with pytest.raises(ApiError, match="payload is not JSON"):
            decode_frames(raw)

    def test_rebase_refused_maps_both_shapes(self):
        indexes = [3, 7, 9]
        streamed = rebase_refused(
            {"frame_start": 1, "frames": 2, "group": 0, "error": "x"},
            indexes,
        )
        assert streamed["frames"] == [7, 9]
        assert "frame_start" not in streamed
        listed = rebase_refused(
            {"frames": [0, 2], "error": "x"}, indexes, shard_id=1
        )
        assert listed["frames"] == [3, 9]
        assert listed["shard_id"] == 1

    def test_merge_stream_lines_folds_commits_and_done(self):
        merged = merge_stream_lines(
            [
                {"commit": {"group": 0, "acked": 2}},
                {"commit": {"group": 1, "acked": 1}},
                {"done": True, "frames": 3, "acked": 3, "rejected": [],
                 "first_lsn": 1, "last_lsn": 3},
            ]
        )
        assert merged["acked"] == 3
        assert merged["first_lsn"] == 1
        assert [c["group"] for c in merged["commits"]] == [0, 1]


class TestWriteBatchRoute:
    def test_acked_batch_reports_lsn_offsets(self, live):
        _, client, store = live
        ack = client.write_batch(
            [("arrivals", 60 * (i + 1), float(i), {"topology": "wc"})
             for i in range(20)]
        )
        assert ack.frames == 20 and ack.acked == 20
        assert ack.rejected == []
        assert ack.last_lsn - ack.first_lsn == 19
        series = store.get("arrivals", {"topology": "wc"})
        assert len(series.timestamps) == 20

    def test_per_frame_rejection_does_not_poison_the_batch(self, live):
        _, client, _ = live
        ack = client.write_batch(
            [
                ("m", 60, 1.0, {"topology": "t"}),
                ("m", 60, 2.0, {"topology": "t"}),  # duplicate ts
                ("m", 120, 3.0, {"topology": "t"}),
            ]
        )
        assert ack.acked == 2
        assert [r["frame"] for r in ack.rejected] == [1]
        assert "increasing timestamp order" in ack.rejected[0]["error"]

    def test_torn_frame_is_a_structured_400(self, live):
        _, client, _ = live
        raw = encode_frame("m", 60, 1.0)[:-2]
        with pytest.raises(ApiError) as excinfo:
            client.write_batch_raw(raw)
        assert excinfo.value.status == 400
        assert excinfo.value.payload["frame"] == 0

    def test_empty_body_is_a_400(self, live):
        app, client, _ = live
        # Over HTTP a zero-length body arrives as "no body at all".
        with pytest.raises(ApiError) as excinfo:
            client.write_batch_raw(b"")
        assert excinfo.value.status == 400
        # Handed empty bytes directly, the route names the real defect.
        status, payload = app.handle("POST", "/metrics/write_batch", {}, b"")
        assert status == 400 and "no frames" in payload["error"]

    def test_draining_app_refuses_with_503(self, live):
        app, client, _ = live
        app.lifecycle.begin_drain()
        with pytest.raises(ApiError) as excinfo:
            client.write_batch([("m", 60, 1.0)])
        assert excinfo.value.status == 503

    def test_mismatched_epoch_is_a_fencing_409(self, tmp_path):
        config = _bare_config()
        app = CaladriusApp(
            config, TopologyTracker(), MetricsStore(), shard_id=0, epoch=3
        )
        with CaladriusServer(app, port=0) as server:
            client = CaladriusClient(server.host, server.port, retries=0)
            try:
                with pytest.raises(ApiError) as excinfo:
                    client.write_batch([("m", 60, 1.0)], epoch=2)
                assert excinfo.value.status == 409
                assert excinfo.value.payload.get("fenced") is True
            finally:
                client.close()
        app.shutdown()

    def test_plain_store_acks_without_lsns(self):
        config = _bare_config()
        app = CaladriusApp(config, TopologyTracker(), MetricsStore())
        status, payload = app.handle(
            "POST", "/metrics/write_batch", {},
            encode_frames([("m", 60, 1.0, None)]),
        )
        assert status == 200
        assert payload["acked"] == 1
        assert payload["first_lsn"] is None
        app.shutdown()


class TestRequestLimits:
    def test_oversized_body_is_a_413(self, tmp_path):
        config = _bare_config(max_body_bytes=1024)
        app = CaladriusApp(config, TopologyTracker(), MetricsStore())
        with CaladriusServer(app, port=0) as server:
            client = CaladriusClient(server.host, server.port, retries=0)
            try:
                with pytest.raises(ApiError) as excinfo:
                    client.write_batch(
                        [("m", 60 * (i + 1), float(i)) for i in range(200)]
                    )
                assert excinfo.value.status == 413
                assert excinfo.value.payload["max_body_bytes"] == 1024
                assert excinfo.value.payload["content_length"] > 1024
            finally:
                client.close()
        app.shutdown()

    def test_duplicate_query_parameter_is_a_400(self):
        config = _bare_config()
        app = CaladriusApp(config, TopologyTracker(), MetricsStore())
        with CaladriusServer(app, port=0) as server:
            client = CaladriusClient(server.host, server.port, retries=0)
            try:
                with pytest.raises(ApiError) as excinfo:
                    client._request(
                        "GET", "/metrics/read?name=a&name=b"
                    )
                assert excinfo.value.status == 400
                assert "duplicate query parameter" in str(excinfo.value)
            finally:
                client.close()
        app.shutdown()


class _ThrottleOnce(BaseHTTPRequestHandler):
    """Answers the first write_batch with 429 + Retry-After, then 200."""

    hits = 0

    def do_POST(self):  # noqa: N802 - http.server API
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length)
        type(self).hits += 1
        if type(self).hits == 1:
            body = json.dumps({"error": "shed", "retry_after": 7}).encode()
            self.send_response(429)
            self.send_header("Retry-After", "7")
        else:
            frames = decode_frames(raw)
            body = json.dumps(
                {"frames": len(frames), "acked": len(frames),
                 "rejected": [], "first_lsn": 1,
                 "last_lsn": len(frames)}
            ).encode()
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # quiet
        pass


class TestRetryAfter:
    def test_write_batch_honors_retry_after_capped(self):
        _ThrottleOnce.hits = 0
        server = ThreadingHTTPServer(("127.0.0.1", 0), _ThrottleOnce)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        sleeps: list[float] = []
        try:
            client = CaladriusClient(
                "127.0.0.1", server.server_address[1],
                retries=2, backoff_max_seconds=0.5, sleep=sleeps.append,
            )
            ack = client.write_batch([("m", 60, 1.0)])
            assert ack.acked == 1
            # The server's 7s hint is honored but capped at the
            # client's backoff ceiling — not the exponential guess.
            assert sleeps == [0.5]
            client.close()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestBatchWriter:
    def test_flushes_when_frame_threshold_crossed(self, live):
        _, client, _ = live
        writer = BatchWriter(client, max_frames=10)
        for i in range(25):
            writer.add("arrivals", 60 * (i + 1), float(i), {"topology": "b"})
        assert len(writer.acks) == 2  # two full batches went out
        assert len(writer) == 5
        writer.close()
        assert sum(ack.acked for ack in writer.acks) == 25

    def test_flushes_when_byte_threshold_crossed(self, live):
        _, client, _ = live
        writer = BatchWriter(client, max_frames=10_000, max_bytes=256)
        count = 0
        while not writer.acks:
            count += 1
            writer.add("bytes", 60 * count, float(count), {"topology": "b2"})
            assert count < 100, "byte threshold never triggered"
        writer.close()
        assert sum(ack.acked for ack in writer.acks) == count

    def test_age_thread_flushes_a_trickle(self, live):
        _, client, _ = live
        with BatchWriter(
            client, max_frames=10_000, max_age_seconds=0.05
        ) as writer:
            writer.add("trickle", 60, 1.0, {"topology": "b3"})
            deadline = time.monotonic() + 5
            while not writer.acks and time.monotonic() < deadline:
                time.sleep(0.01)
            assert writer.acks, "age-based flush never fired"
        assert sum(ack.acked for ack in writer.acks) == 1

    def test_closed_writer_refuses_adds(self, live):
        _, client, _ = live
        writer = BatchWriter(client)
        writer.close()
        with pytest.raises(ApiError, match="closed"):
            writer.add("m", 60, 1.0)
