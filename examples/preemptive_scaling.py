"""Preemptive scaling: forecast traffic, scale before the peak arrives.

The paper's introduction motivates Caladrius with exactly this loop
("Enabling preemptive scaling"): accept a prediction of future workload,
check whether it would overwhelm the current configuration, and scale
ahead of time.  This example:

1. drives the Word Count topology with a diurnal traffic curve for a few
   simulated hours (peaks safely below today's capacity, but growing);
2. fits the Prophet-style traffic model to the spout's source counters
   and forecasts the next two hours, where the cycle plus growth pushes
   traffic past the current saturation point;
3. runs the backpressure-evaluation model against the forecast peak and,
   when the risk is high, searches for the smallest Splitter parallelism
   whose dry-run risk is low;
4. validates the choice by actually simulating the scaled topology at
   the forecast peak.

Run with:  python examples/preemptive_scaling.py
"""

from __future__ import annotations

import numpy as np

from repro.core import BackpressureEvaluationModel, ProphetTrafficModel
from repro.forecasting import ProphetLite, Seasonality
from repro.heron import (
    HeronSimulation,
    SimulationConfig,
    TopologyTracker,
    WordCountParams,
    build_word_count,
)
from repro.timeseries import MetricsStore

M = 1e6
CYCLE_MINUTES = 120  # a compressed "day" so the example runs fast


def diurnal_rate(minute: int) -> float:
    """Traffic: a daily-shaped cycle plus steady growth."""
    phase = 2 * np.pi * minute / CYCLE_MINUTES
    growth = 1.0 + 0.002 * minute
    return growth * (12 * M + 7 * M * np.sin(phase))


def main() -> None:
    params = WordCountParams(splitter_parallelism=2, counter_parallelism=6)
    topology, packing, logic = build_word_count(params)
    store = MetricsStore()
    simulation = HeronSimulation(
        topology, packing, logic, store, SimulationConfig(seed=11)
    )
    history_minutes = 3 * CYCLE_MINUTES
    print(f"simulating {history_minutes} minutes of diurnal traffic...")
    for minute in range(history_minutes):
        simulation.set_source_rate("sentence-spout", diurnal_rate(minute))
        simulation.run(minutes=1)

    tracker = TopologyTracker()
    tracker.register(topology, packing)

    # Forecast the next two hours of source traffic.
    traffic_model = ProphetTrafficModel(
        tracker,
        store,
        make_forecaster=lambda: ProphetLite(
            seasonalities=[Seasonality("cycle", CYCLE_MINUTES * 60, 4)],
            n_changepoints=6,
        ),
    )
    horizon = CYCLE_MINUTES
    forecast = traffic_model.predict("word-count", None, horizon)
    peak = forecast.summary["upper_max"]
    print(f"forecast over the next {horizon} minutes:")
    print(f"  mean  : {forecast.summary['mean'] / M:7.1f}M tuples/min")
    print(f"  peak  : {peak / M:7.1f}M tuples/min (90% upper bound)")

    # Evaluate backpressure risk at the forecast peak.
    risk_model = BackpressureEvaluationModel(tracker, store)
    assessment = risk_model.predict("word-count", traffic=forecast)
    print(f"\ncurrent configuration at the forecast peak:")
    print(f"  saturation point  : "
          f"{assessment.saturation_source_rate / M:7.1f}M tuples/min")
    print(f"  backpressure risk : {assessment.backpressure_risk} "
          f"(bottleneck: {assessment.bottleneck})")

    chosen = topology.parallelism("splitter")
    if assessment.backpressure_risk == "high":
        for proposal in range(chosen + 1, 13):
            candidate = risk_model.predict(
                "word-count",
                traffic=forecast,
                parallelisms={"splitter": proposal},
            )
            print(f"  dry-run splitter={proposal}: "
                  f"risk {candidate.backpressure_risk}, saturation "
                  f"{candidate.saturation_source_rate / M:.1f}M")
            if candidate.backpressure_risk == "low":
                chosen = proposal
                break
        else:
            raise SystemExit("no feasible parallelism found")
        print(f"\npreemptively scaling the Splitter to {chosen} "
              "before the peak arrives")

    # Validate: run the scaled topology at the forecast peak.
    scaled_params = WordCountParams(
        splitter_parallelism=chosen, counter_parallelism=6
    )
    scaled_topology, scaled_packing, scaled_logic = build_word_count(
        scaled_params
    )
    check_store = MetricsStore()
    check = HeronSimulation(
        scaled_topology, scaled_packing, scaled_logic, check_store,
        SimulationConfig(seed=12),
    )
    check.set_source_rate("sentence-spout", peak)
    check.run(minutes=4)
    bp = check_store.get(
        "topology-backpressure-time-ms", {"topology": "word-count"}
    )
    print(f"\nvalidation at the forecast peak ({peak / M:.1f}M tuples/min):")
    print(f"  backpressure time per minute: "
          f"{[f'{v:.0f}ms' for v in bp.values]}")
    if max(bp.values[1:]) < 1000:
        print("  -> the scaled topology absorbs the peak: no backpressure.")
    else:
        print("  -> WARNING: backpressure observed; the model under-scaled.")


if __name__ == "__main__":
    main()
