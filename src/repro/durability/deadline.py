"""End-to-end request deadlines, propagated cooperatively.

A client that will give up after two seconds gains nothing from the
service finishing its computation in four — it only wastes a scheduler
slot.  Callers send ``X-Request-Deadline: <seconds>`` (a delta budget,
immune to clock skew); the API tier turns it into a :class:`Deadline`,
feeds the remaining budget into the admission gate
(:meth:`PriorityScheduler.run(timeout=...)`) and installs it in a
context variable so model evaluation can poll :func:`check_deadline`
at natural yield points and abandon work whose requester has already
left.  An exceeded deadline surfaces as a structured HTTP 504.

This module is dependency-free on purpose: the core modelling tier
imports it without touching the rest of the durability package.
"""

from __future__ import annotations

import contextvars
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager

from repro.errors import ApiError

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "parse_deadline_header",
]

DEADLINE_HEADER = "X-Request-Deadline"


class DeadlineExceeded(ApiError):
    """The request's deadline passed before the work finished (HTTP 504)."""

    def __init__(self, overshoot_seconds: float) -> None:
        super().__init__(
            "request deadline exceeded "
            f"({overshoot_seconds * 1000.0:.0f} ms past the budget)",
            504,
            {"deadline": "exceeded"},
        )


class Deadline:
    """An absolute point in (monotonic) time the request must finish by."""

    def __init__(
        self,
        budget_seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_seconds <= 0:
            raise ApiError(
                f"{DEADLINE_HEADER} must be a positive number of seconds, "
                f"got {budget_seconds!r}"
            )
        self._clock = clock
        self._at = clock() + budget_seconds

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self._at - self._clock()

    def expired(self) -> bool:
        """True once the budget has run out."""
        return self.remaining() <= 0

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` when expired."""
        remaining = self.remaining()
        if remaining <= 0:
            raise DeadlineExceeded(-remaining)


_current: contextvars.ContextVar[Deadline | None] = contextvars.ContextVar(
    "repro_request_deadline", default=None
)


def current_deadline() -> Deadline | None:
    """The deadline governing the current request, if any."""
    return _current.get()


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[None]:
    """Install a deadline for the duration of a request's processing."""
    token = _current.set(deadline)
    try:
        yield
    finally:
        _current.reset(token)


def check_deadline() -> None:
    """Cooperative cancellation point: cheap no-op without a deadline.

    Model evaluation calls this between expensive stages (per-component
    calibration, per-path propagation) so an expired request stops
    consuming its scheduler slot.
    """
    deadline = _current.get()
    if deadline is not None:
        deadline.check()


def parse_deadline_header(value: str | None) -> Deadline | None:
    """Build a :class:`Deadline` from a raw header value.

    Malformed values raise :class:`~repro.errors.ApiError` (400): a
    client that asked for a deadline and mistyped it should hear about
    it, not silently run unbounded.
    """
    if value is None:
        return None
    try:
        budget = float(value)
    except ValueError:
        raise ApiError(
            f"{DEADLINE_HEADER} must be a number of seconds, got {value!r}"
        ) from None
    return Deadline(budget)
