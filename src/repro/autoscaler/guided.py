"""The Caladrius-guided scaler: observe once, model, deploy once.

The paper's promise: dry-run modelling "significantly reduc[es] the time
taken to find a packing plan to satisfy the SLO".  The loop:

1. observe the current deployment for one window (enough minutes that
   the saturated components show their plateaus);
2. calibrate the Eq. 1-14 models from exactly that window;
3. compute, per bolt, the *demand* — the rate the component would
   receive if nothing throttled (source rate amplified through the
   fitted alphas) — and size its parallelism as
   ``ceil(headroom * demand / instance_SP)``; components whose fits
   never saturated keep their parallelism (they were never the problem);
4. deploy that configuration once, then verify with a final observation
   window.
"""

from __future__ import annotations

import math

from repro.autoscaler.cluster import SimulatedCluster
from repro.autoscaler.types import ScalingRound, ScalingTrace
from repro.errors import ModelError
from repro.heron.metrics import MetricNames
from repro.serving.fingerprint import canonical_json
from repro.sweep import PlanSweepEngine, evaluate_plans

__all__ = ["ModelGuidedScaler"]


class ModelGuidedScaler:
    """One observation, one model-sized deployment, one verification.

    Parameters
    ----------
    cluster:
        The deployment to manage.
    slo_output_tpm:
        Sink throughput target (tuples per minute).
    observe_minutes:
        Length of the calibration window (and of the verification
        window after deployment).
    headroom:
        Capacity margin applied when sizing (1.15 = 15% above demand),
        covering calibration noise and traffic variance.
    backpressure_slo_ms:
        Mean backpressure time above which verification fails.
    """

    strategy = "model-guided (Caladrius)"

    def __init__(
        self,
        cluster: SimulatedCluster,
        slo_output_tpm: float,
        observe_minutes: int = 3,
        headroom: float = 1.15,
        backpressure_slo_ms: float = 1_000.0,
    ) -> None:
        if slo_output_tpm <= 0:
            raise ModelError("slo_output_tpm must be positive")
        if observe_minutes < 2:
            raise ModelError(
                "observe_minutes must be >= 2 (one warmup + one measured)"
            )
        if headroom < 1.0:
            raise ModelError("headroom must be >= 1")
        self.cluster = cluster
        self.slo_output_tpm = slo_output_tpm
        self.observe_minutes = observe_minutes
        self.headroom = headroom
        self.backpressure_slo_ms = backpressure_slo_ms
        # Calibrate-once / evaluate-many: the engine memoizes the
        # calibration artifact per observation window and revalidates it
        # against the metrics data_version, so candidate evaluation —
        # however many plans the search scores — never re-reads metrics
        # while the window is unchanged.  CPU fitting is skipped: sizing
        # only needs the throughput chain.
        self._engine = PlanSweepEngine(
            cluster.tracker, cluster.store, warmup_minutes=1, fit_cpu=False
        )

    def run(self, source_tpm: float) -> ScalingTrace:
        """Size the topology for ``source_tpm`` and verify.

        ``source_tpm`` is the traffic the topology must sustain — the
        current rate, or a traffic-model forecast for preemptive scaling.
        """
        if source_tpm <= 0:
            raise ModelError("source_tpm must be positive")
        trace = ScalingTrace(self.strategy, self.slo_output_tpm)

        # Round 0: observe, then calibrate on everything the *current*
        # deployment has seen.  The paper's calibration needs points in
        # both regimes ("one in the non-saturation interval and one in
        # the saturation interval"), which production traffic variation
        # provides; metrics from before the deployment describe a
        # different physical plan and are excluded.
        window_start = self.cluster.deployed_at_seconds
        self.cluster.run(self.observe_minutes)
        output = self.cluster.recent_output_tpm(self.observe_minutes)
        backpressure = self.cluster.recent_backpressure_ms(self.observe_minutes)
        meets = (
            output >= self.slo_output_tpm
            and backpressure <= self.backpressure_slo_ms
        )
        parallelisms = self.cluster.parallelisms()
        if meets:
            trace.rounds.append(
                ScalingRound(0, parallelisms, output, backpressure, True,
                             "slo already met; no scaling needed")
            )
            return trace

        proposal = self._size(source_tpm, window_start)
        trace.rounds.append(
            ScalingRound(0, parallelisms, output, backpressure, False,
                         f"model sizes the topology to {proposal}")
        )
        self.cluster.deploy(proposal)

        # Round 1: verification window on the sized deployment.
        self.cluster.run(self.observe_minutes)
        output = self.cluster.recent_output_tpm(self.observe_minutes)
        backpressure = self.cluster.recent_backpressure_ms(self.observe_minutes)
        meets = (
            output >= self.slo_output_tpm
            and backpressure <= self.backpressure_slo_ms
        )
        trace.rounds.append(
            ScalingRound(
                1, self.cluster.parallelisms(), output, backpressure, meets,
                "verified" if meets else "verification FAILED",
            )
        )
        return trace

    def _size(self, source_tpm: float, window_start: int) -> dict[str, int]:
        """Analytical sizing from the calibrated models.

        Instance capacities come from two sources, in preference order:

        1. **Backpressure attribution** — a bolt that spent minutes
           suppressing the spouts was processing flat out, so its
           per-instance processed rate over those minutes *is* its
           capacity.  This is exact even when several components are
           entangled.
        2. **The fitted saturation point** — for bolts that plateaued
           without raising backpressure, the plateau was inherited from
           a throttling neighbour, so the fit is only a *lower bound*
           on capacity; sizing with it over-provisions conservatively
           (the paper: "any modelling system is subject to errors so
           some re-deployment may be required" — a conservative bound
           avoids the re-deployment at the cost of some slack).

        Bolts that never plateaued keep their parallelism unless demand
        exceeds what they were ever offered, in which case the fit bound
        applies.
        """
        artifact = self._engine.artifact(
            self.cluster.topology_name, since_seconds=window_start
        )
        model, fits = artifact.base, artifact.fits
        topology = artifact.topology
        demand: dict[str, float] = {
            spout.name: source_tpm / len(topology.spouts())
            for spout in topology.spouts()
        }
        proposal: dict[str, int] = {}
        for spec in topology.topological_order():
            name = spec.name
            incoming = demand.get(name, 0.0)
            if not spec.is_spout:
                capacity = self._instance_capacity(
                    name, spec.parallelism, model, window_start
                )
                if math.isfinite(capacity) and capacity > 0:
                    needed = math.ceil(self.headroom * incoming / capacity)
                    proposal[name] = max(needed, 1)
                else:
                    # Never stressed: keep the current parallelism and
                    # let the verification round catch under-sizing.
                    proposal[name] = spec.parallelism
                alpha = (
                    fits[name].alpha if topology.outputs(name) else 0.0
                )
            else:
                alpha = 1.0
            for stream in topology.outputs(name):
                demand[stream.destination] = (
                    demand.get(stream.destination, 0.0) + incoming * alpha
                )
        return self._best_candidate(artifact, source_tpm, proposal)

    def _best_candidate(
        self,
        artifact,
        source_tpm: float,
        proposal: dict[str, int],
    ) -> dict[str, int]:
        """Refine the analytic proposal through the plan-sweep kernel.

        The proposal plus its upward neighborhood (each component +1,
        and all +1) is scored in one batch against the memoized
        artifact.  The cheapest plan predicted to clear the output SLO
        wins, preferring low backpressure risk; candidates only grow the
        proposal, so the search can correct under-sizing but never
        shrinks what the analytic bound asked for.  With no viable
        candidate the proposal stands and verification has the last
        word.
        """
        candidates: list[dict[str, int]] = [dict(proposal)]
        for name in proposal:
            bumped = dict(proposal)
            bumped[name] += 1
            candidates.append(bumped)
        if proposal:
            candidates.append({name: p + 1 for name, p in proposal.items()})
        predictions = evaluate_plans(artifact, source_tpm, candidates)
        viable = [
            (plan, prediction)
            for plan, prediction in zip(candidates, predictions)
            if prediction.output_rate >= self.slo_output_tpm
        ]
        if not viable:
            return dict(proposal)
        best, _ = min(
            viable,
            key=lambda item: (
                item[1].backpressure_risk != "low",
                sum(item[0].values()),
                canonical_json(item[0]),
            ),
        )
        return best

    def _instance_capacity(
        self,
        component: str,
        parallelism: int,
        model,
        window_start: int,
    ) -> float:
        """Best available per-instance capacity estimate for one bolt."""
        store = self.cluster.store
        tags = {
            "topology": self.cluster.topology_name,
            "component": component,
        }
        bp = store.aggregate(
            MetricNames.BACKPRESSURE_TIME_MS, tags, start=window_start
        )
        processed = store.aggregate(
            MetricNames.EXECUTE_COUNT, tags, start=window_start
        )
        bp_aligned, proc_aligned = bp.align(processed)
        saturated = bp_aligned.values > 5_000.0
        if saturated.any():
            return float(proc_aligned.values[saturated].mean()) / parallelism
        return model.component(component).instance.saturation_point
