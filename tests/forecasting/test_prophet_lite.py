"""Tests for the ProphetLite forecaster (the Prophet substitute).

The paper's requirements: additive trend + seasonality, robustness to
missing data, trend shifts and large outliers, per-period forecasts with
summary statistics.  Each requirement has a test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ForecastError
from repro.forecasting.base import Forecast
from repro.forecasting.prophet_lite import ProphetLite, Seasonality
from repro.forecasting.seasonality import DAY_SECONDS
from repro.timeseries.series import TimeSeries

STEP = 600  # ten-minute cadence


def seasonal_series(days=10, noise=0.0, trend=0.0, seed=0):
    rng = np.random.default_rng(seed)
    n = days * DAY_SECONDS // STEP
    t = np.arange(n) * STEP
    y = (
        100.0
        + 20.0 * np.sin(2 * np.pi * t / DAY_SECONDS)
        + trend * t
        + rng.normal(0, noise, n)
    )
    return TimeSeries(t, y)


def daily_model(**kwargs):
    defaults = dict(
        seasonalities=[Seasonality.daily(order=3)], n_changepoints=5
    )
    defaults.update(kwargs)
    return ProphetLite(**defaults)


class TestSeasonality:
    def test_daily_weekly_factories(self):
        assert Seasonality.daily().period_seconds == DAY_SECONDS
        assert Seasonality.weekly().period_seconds == 7 * DAY_SECONDS

    def test_validation(self):
        with pytest.raises(ForecastError):
            Seasonality("bad", -1, 2)
        with pytest.raises(ForecastError):
            Seasonality("bad", 10, 0)


class TestFit:
    def test_recovers_seasonal_signal(self):
        series = seasonal_series(noise=1.0)
        model = daily_model().fit(series)
        forecast = model.forecast(steps=144, step_seconds=STEP)
        # The forecast must reproduce the daily swing, not a flat mean.
        assert forecast.yhat.max() > 110
        assert forecast.yhat.min() < 90

    def test_recovers_linear_trend(self):
        series = seasonal_series(trend=1e-4, noise=0.5)
        model = daily_model().fit(series)
        forecast = model.forecast(steps=144, step_seconds=STEP)
        history_mean = series.tail(144).mean()
        assert forecast.yhat.mean() > history_mean  # trend continues up

    def test_handles_missing_data(self):
        series = seasonal_series(noise=1.0)
        values = series.values.copy()
        values[::7] = np.nan  # 14% missing
        gappy = TimeSeries(series.timestamps, values)
        model = daily_model().fit(gappy)
        forecast = model.forecast(steps=10, step_seconds=STEP)
        assert np.all(np.isfinite(forecast.yhat))

    def test_robust_mode_shrugs_off_outliers(self):
        series = seasonal_series(noise=1.0, seed=3)
        values = series.values.copy()
        outlier_idx = np.arange(10, len(values), 97)
        values[outlier_idx] += 500.0  # massive spikes
        dirty = TimeSeries(series.timestamps, values)
        robust = daily_model(robust=True).fit(dirty)
        plain = daily_model(robust=False).fit(dirty)
        clean_forecast = daily_model().fit(series).forecast(50, STEP)
        robust_error = np.abs(
            robust.forecast(50, STEP).yhat - clean_forecast.yhat
        ).mean()
        plain_error = np.abs(
            plain.forecast(50, STEP).yhat - clean_forecast.yhat
        ).mean()
        assert robust_error < plain_error

    def test_adapts_to_trend_shift(self):
        # Slope changes halfway: the hinge basis must absorb it.
        n = 10 * DAY_SECONDS // STEP
        t = np.arange(n) * STEP
        mid = t[n // 2]
        y = 100.0 + 0.00002 * t + 0.0002 * np.maximum(0, t - mid)
        series = TimeSeries(t, y)
        model = ProphetLite(
            seasonalities=[], n_changepoints=10, changepoint_prior_scale=10.0
        ).fit(series)
        forecast = model.forecast(steps=20, step_seconds=STEP)
        # Continue at the NEW slope, not the average slope.
        expected = 100.0 + 0.00002 * forecast.timestamps + 0.0002 * (
            forecast.timestamps - mid
        )
        assert np.allclose(forecast.yhat, expected, rtol=0.03)

    def test_fit_requires_two_points(self):
        with pytest.raises(ForecastError, match="at least two"):
            daily_model().fit(TimeSeries([0], [1.0]))

    def test_fit_returns_self(self):
        model = daily_model()
        assert model.fit(seasonal_series()) is model


class TestPredict:
    def test_unfitted_predict_raises(self):
        with pytest.raises(ForecastError, match="not fitted"):
            daily_model().predict([0])

    def test_forecast_requires_positive_steps(self):
        model = daily_model().fit(seasonal_series())
        with pytest.raises(ForecastError):
            model.forecast(0)

    def test_bands_bracket_point_forecast(self):
        model = daily_model().fit(seasonal_series(noise=2.0))
        forecast = model.forecast(steps=100, step_seconds=STEP)
        assert np.all(forecast.yhat_lower <= forecast.yhat + 1e-9)
        assert np.all(forecast.yhat <= forecast.yhat_upper + 1e-9)

    def test_bands_widen_with_horizon(self):
        model = ProphetLite(
            seasonalities=[], n_changepoints=8, seed=1
        ).fit(seasonal_series(noise=2.0, trend=1e-4))
        forecast = model.forecast(steps=1000, step_seconds=STEP)
        near = forecast.yhat_upper[:50] - forecast.yhat_lower[:50]
        far = forecast.yhat_upper[-50:] - forecast.yhat_lower[-50:]
        assert far.mean() > near.mean()

    def test_floor_clamps_negative_forecasts(self):
        # A steep negative trend would go below zero without the floor.
        t = np.arange(100) * STEP
        y = 100.0 - 1.2 * np.arange(100)
        model = ProphetLite(seasonalities=[], n_changepoints=0).fit(
            TimeSeries(t, y)
        )
        forecast = model.forecast(steps=100, step_seconds=STEP)
        assert np.all(forecast.yhat >= 0.0)

    def test_in_sample_prediction_close_to_data(self):
        series = seasonal_series(noise=0.5)
        model = daily_model().fit(series)
        fitted = model.predict(series.timestamps)
        residual = np.abs(fitted.yhat - series.values).mean()
        assert residual < 2.0

    def test_summary_fields(self):
        model = daily_model().fit(seasonal_series())
        summary = model.forecast(steps=10, step_seconds=STEP).summary()
        for key in ("mean", "median", "min", "max", "lower_min", "upper_max"):
            assert key in summary
        assert summary["upper_max"] >= summary["max"]

    def test_components_decomposition(self):
        series = seasonal_series(noise=0.5)
        model = daily_model().fit(series)
        parts = model.components(series.timestamps)
        assert set(parts) == {"trend", "daily"}
        recomposed = parts["trend"] + parts["daily"]
        assert np.allclose(recomposed, series.values, atol=5.0)


class TestForecastType:
    def test_validation(self):
        ts = np.array([0, 1])
        with pytest.raises(ForecastError):
            Forecast(ts, np.zeros(2), np.ones(2), np.zeros(2))  # lower>upper
        with pytest.raises(ForecastError):
            Forecast(ts, np.zeros(3), np.zeros(2), np.zeros(2))

    def test_to_series(self):
        forecast = Forecast(
            np.array([0, 60]),
            np.array([1.0, 2.0]),
            np.zeros(2),
            np.full(2, 3.0),
        )
        assert forecast.to_series().to_pairs() == [(0, 1.0), (60, 2.0)]

    def test_hyperparameter_validation(self):
        with pytest.raises(ForecastError):
            ProphetLite(interval_level=0.5)
        with pytest.raises(ForecastError):
            ProphetLite(changepoint_prior_scale=0)
        with pytest.raises(ForecastError):
            ProphetLite(uncertainty_samples=-1)
