"""The Caladrius web service end to end, exactly as the paper deploys it.

"Caladrius ... is deployed as a web service ... accessible to developers
through a RESTful API" (Section III).  This example stands the whole
stack up — simulated cluster, tracker, metrics store, YAML-configured
model registry, HTTP server — and then drives every endpoint with the
Python client:

* ``GET /topologies`` and the logical/packing plan views,
* ``GET /model/traffic/heron/{topology}`` running *all* configured
  traffic models (the response concatenates their results, as the paper
  describes),
* ``POST /model/topology/heron/{topology}`` for a performance prediction
  under a proposed parallelism, both synchronously and asynchronously.

Run with:  python examples/caladrius_service.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.api import CaladriusApp, CaladriusClient, CaladriusServer
from repro.config import load_config
from repro.heron import (
    HeronSimulation,
    SimulationConfig,
    TopologyTracker,
    WordCountParams,
    build_word_count,
)
from repro.timeseries import MetricsStore

M = 1e6

CONFIG_YAML = """
caladrius:
  traffic_models: [prophet, stats-summary]
  performance_models: [throughput-prediction, backpressure-evaluation]
  model_options:
    prophet:
      n_changepoints: 5
    stats-summary:
      statistic: mean
      window: 30
  api:
    host: 127.0.0.1
    port: 0
"""


def main() -> None:
    # Simulated cluster state.
    params = WordCountParams(splitter_parallelism=2, counter_parallelism=4)
    topology, packing, logic = build_word_count(params)
    store = MetricsStore()
    simulation = HeronSimulation(
        topology, packing, logic, store, SimulationConfig(seed=23)
    )
    print("running the topology to populate the metrics database...")
    for rate in np.arange(4 * M, 44 * M + 1, 8 * M):
        simulation.set_source_rate("sentence-spout", float(rate))
        simulation.run(minutes=2)
    tracker = TopologyTracker()
    tracker.register(topology, packing)

    # YAML-configured service, as in production.
    with tempfile.TemporaryDirectory() as tmp:
        config_path = Path(tmp) / "caladrius.yaml"
        config_path.write_text(CONFIG_YAML)
        config = load_config(config_path)
    app = CaladriusApp(config, tracker, store)

    with CaladriusServer(app, host=config.api_host, port=config.api_port) as server:
        client = CaladriusClient(server.host, server.port)
        print(f"service listening on {server.host}:{server.port}\n")

        print("GET /topologies ->", client.topologies())
        logical = client.logical_plan("word-count")
        print("GET /topology/word-count/logical ->",
              json.dumps(logical, indent=2)[:300], "...")

        print("\nGET /model/traffic/heron/word-count (all traffic models):")
        traffic = client.traffic("word-count", horizon_minutes=10)
        for result in traffic["results"]:
            print(f"  {result['model']:>18}: "
                  f"mean {result['summary']['mean'] / M:6.1f}M, "
                  f"90% upper {result['summary']['upper_max'] / M:6.1f}M")

        print("\nPOST /model/topology/heron/word-count (sync, 30M/min):")
        performance = client.performance("word-count", source_rate=30 * M)
        for result in performance["results"]:
            print(f"  {result['model']:>24}: "
                  f"risk {result['backpressure_risk']}, "
                  f"saturation {result['saturation_source_rate'] / M:.1f}M")

        print("\nPOST ...?async=1 with a proposed splitter=4 "
              "(the dry-run update):")
        proposal = client.performance_async(
            "word-count", source_rate=30 * M, parallelisms={"splitter": 4}
        )
        for result in proposal["results"]:
            print(f"  {result['model']:>24}: "
                  f"output {result['output_rate'] / M:.1f}M, "
                  f"risk {result['backpressure_risk']}")
    app.shutdown()
    print("\nservice stopped.")


if __name__ == "__main__":
    main()
