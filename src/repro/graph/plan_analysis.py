"""Packing-plan property estimation over the physical graph.

Caladrius "provides a graph calculation interface for estimating
properties of proposed packing plans" (paper Section III-C1), and the
related-work schedulers it aims to evaluate optimise exactly these
properties: "minimize ... the network distance between operators that
communicate large tuples or very high volumes of tuples" and "ensure
that no worker nodes are overloaded".

Given a topology, a (proposed) packing plan and per-stream rates, this
module computes:

* how much traffic flows instance-to-instance *locally* (same container,
  one stream-manager hop) vs *remotely* (two stream managers + network);
* each container's stream-manager load (egress + ingress tuples/min);
* a JSON-friendly cost summary for comparing scheduler proposals.

Stream rates come from measurements or from a calibrated
:class:`~repro.core.topology_model.TopologyModel` via
:func:`stream_rates_from_propagation`.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.heron.packing import PackingPlan
from repro.heron.topology import LogicalTopology

__all__ = [
    "PlanCost",
    "analyse_plan",
    "stream_rates_from_propagation",
    "compare_plans",
]


@dataclass(frozen=True)
class PlanCost:
    """Estimated communication properties of one packing plan.

    Rates are in the unit of the input stream rates (typically tuples
    per minute).  ``stmgr_load`` maps container id to the total traffic
    its stream manager routes (instance egress plus instance ingress —
    a tuple crossing containers is counted at both ends, as it occupies
    both stream managers).
    """

    local_rate: float
    remote_rate: float
    stmgr_load: dict[int, float] = field(default_factory=dict)

    @property
    def total_rate(self) -> float:
        """All instance-to-instance traffic."""
        return self.local_rate + self.remote_rate

    @property
    def remote_fraction(self) -> float:
        """Share of traffic that crosses containers (network cost)."""
        if self.total_rate == 0:
            return 0.0
        return self.remote_rate / self.total_rate

    @property
    def max_stmgr_load(self) -> float:
        """The busiest stream manager's routed rate (hotspot check)."""
        return max(self.stmgr_load.values()) if self.stmgr_load else 0.0

    def summary(self) -> dict[str, object]:
        """A JSON-friendly report."""
        return {
            "local_rate": self.local_rate,
            "remote_rate": self.remote_rate,
            "remote_fraction": self.remote_fraction,
            "max_stmgr_load": self.max_stmgr_load,
            "stmgr_load": {str(k): v for k, v in self.stmgr_load.items()},
        }


def stream_rates_from_propagation(
    topology: LogicalTopology,
    propagation: Mapping[str, Mapping[str, object]],
) -> dict[tuple[str, str], float]:
    """Per-(component, stream) rates from a DAG propagation report.

    ``propagation`` is the output of
    :meth:`~repro.core.topology_model.TopologyModel.propagate`; the
    result maps ``(source component, stream name)`` to the stream's
    emitted rate, ready for :func:`analyse_plan`.
    """
    rates: dict[tuple[str, str], float] = {}
    for name, report in propagation.items():
        outputs = report.get("outputs", {})
        for stream_name, rate in outputs.items():  # type: ignore[union-attr]
            rates[(name, stream_name)] = float(rate)
    # Spouts in the propagation report emit their input as "outputs" too;
    # any declared stream missing from the report defaults to zero.
    for stream in topology.streams:
        rates.setdefault((stream.source, stream.name), 0.0)
    return rates


def analyse_plan(
    topology: LogicalTopology,
    packing: PackingPlan,
    stream_rates: Mapping[tuple[str, str], float],
) -> PlanCost:
    """Estimate a packing plan's communication costs.

    Parameters
    ----------
    topology:
        The logical topology (streams and groupings).
    packing:
        The physical plan to cost.  Parallelisms must match.
    stream_rates:
        ``(source component, stream name)`` → total emitted rate on that
        stream.  Upstream instances are assumed to emit evenly (the
        evaluation-spout and shuffle-input convention); downstream
        splits follow each stream's grouping shares.
    """
    local = 0.0
    remote = 0.0
    stmgr_load: dict[int, float] = {
        c.container_id: 0.0 for c in packing.containers
    }
    for stream in topology.streams:
        key = (stream.source, stream.name)
        if key not in stream_rates:
            raise GraphError(
                f"no rate provided for stream {stream.name!r} of "
                f"{stream.source!r}"
            )
        rate = float(stream_rates[key])
        if rate < 0:
            raise GraphError("stream rates must be non-negative")
        senders = packing.instances_of(stream.source)
        receivers = packing.instances_of(stream.destination)
        if packing.parallelism(stream.source) != topology.parallelism(
            stream.source
        ):
            raise GraphError(
                f"packing parallelism mismatch for {stream.source!r}"
            )
        shares = stream.grouping.shares(len(receivers))
        per_sender = rate / len(senders)
        for sender in senders:
            for j, receiver in enumerate(receivers):
                flow = per_sender * float(shares[j])
                if flow == 0.0:
                    continue
                stmgr_load[sender.container_id] += flow
                if receiver.container_id == sender.container_id:
                    local += flow
                else:
                    remote += flow
                    stmgr_load[receiver.container_id] += flow
    return PlanCost(local, remote, stmgr_load)


def compare_plans(
    topology: LogicalTopology,
    plans: Mapping[str, PackingPlan],
    stream_rates: Mapping[tuple[str, str], float],
) -> dict[str, PlanCost]:
    """Cost several proposed plans for the same topology at once.

    This is the "several different proposed topology configurations to
    be assessed in parallel" benefit from the paper's introduction,
    restricted to the network dimension schedulers argue about.
    """
    return {
        name: analyse_plan(topology, plan, stream_rates)
        for name, plan in plans.items()
    }
