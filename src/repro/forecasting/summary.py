"""The Statistic Summary traffic model.

"For stable traffic profiles with little variation, a simple statistical
summary (mean, median, etc.) of a given period of historic data may be
sufficient for a reasonable forecast" (paper Section IV-A).  This model
predicts a flat line at a chosen statistic of a recent window, with an
empirical-quantile uncertainty band.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.errors import ForecastError
from repro.forecasting.base import Forecast, Forecaster
from repro.timeseries.series import TimeSeries

__all__ = ["SummaryForecaster"]

_STATISTICS = ("mean", "median", "max", "min", "p90", "p95")


class SummaryForecaster(Forecaster):
    """Forecast a constant statistic of recent history.

    Parameters
    ----------
    statistic:
        Which summary to project forward: ``"mean"``, ``"median"``,
        ``"max"``, ``"min"``, ``"p90"`` or ``"p95"``.  Peak-oriented
        statistics suit provisioning decisions; the mean suits load
        accounting.
    window:
        Number of trailing samples summarised (``None`` = all history).
    interval_level:
        Coverage of the uncertainty band, taken from the empirical
        quantiles of the same window.
    """

    def __init__(
        self,
        statistic: str = "mean",
        window: int | None = None,
        interval_level: float = 0.90,
    ) -> None:
        if statistic not in _STATISTICS:
            raise ForecastError(
                f"statistic must be one of {_STATISTICS}, got {statistic!r}"
            )
        if window is not None and window < 2:
            raise ForecastError("window must hold at least two samples")
        if not 0.0 < interval_level < 1.0:
            raise ForecastError("interval_level must be in (0, 1)")
        self.statistic = statistic
        self.window = window
        self.interval_level = interval_level
        self._point: float | None = None
        self._lower: float | None = None
        self._upper: float | None = None

    def fit(self, series: TimeSeries) -> "SummaryForecaster":
        """Summarise the (windowed) history."""
        cleaned = self._remember(series)
        windowed = cleaned.tail(self.window) if self.window else cleaned
        values = windowed.values
        statistics = {
            "mean": float(np.mean(values)),
            "median": float(np.median(values)),
            "max": float(np.max(values)),
            "min": float(np.min(values)),
            "p90": float(np.quantile(values, 0.90)),
            "p95": float(np.quantile(values, 0.95)),
        }
        self._point = statistics[self.statistic]
        alpha = (1.0 - self.interval_level) / 2.0
        self._lower = float(np.quantile(values, alpha))
        self._upper = float(np.quantile(values, 1.0 - alpha))
        # A peak statistic can exceed the band's upper quantile; widen the
        # band so it always contains the point forecast.
        self._lower = min(self._lower, self._point)
        self._upper = max(self._upper, self._point)
        return self

    def predict(self, timestamps: Iterable[int]) -> Forecast:
        """A flat forecast at every requested timestamp."""
        if self._point is None:
            raise ForecastError("SummaryForecaster is not fitted")
        ts = np.asarray(list(timestamps), dtype=np.int64)
        if ts.size == 0:
            raise ForecastError("predict needs at least one timestamp")
        n = ts.shape[0]
        return Forecast(
            ts,
            np.full(n, self._point),
            np.full(n, self._lower),
            np.full(n, self._upper),
            self.interval_level,
        )
