"""Tests for the component model (paper Eq. 6-11)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.component_model import ComponentModel
from repro.core.instance_model import InstanceModel
from repro.errors import ModelError


def splitter_component(parallelism=3, shares=None):
    instance = InstanceModel({"default": 7.63}, 11e6)
    return ComponentModel("splitter", instance, parallelism, shares)


class TestEquations6And7:
    def test_uniform_split(self):
        model = splitter_component(3)
        rates = model.instance_input_rates(30e6)
        assert np.allclose(rates, 10e6)

    def test_component_output_is_sum_of_instances(self):
        model = splitter_component(3)
        # 30M over 3 instances: each below SP -> fully linear.
        assert model.output_rate(30e6) == pytest.approx(7.63 * 30e6)

    def test_partial_saturation_with_bias(self):
        model = splitter_component(2, shares=[0.8, 0.2])
        # At 20M: hot instance gets 16M (saturated at 11M), cold 4M.
        expected = 7.63 * (11e6 + 4e6)
        assert model.output_rate(20e6) == pytest.approx(expected)

    def test_share_validation(self):
        with pytest.raises(ModelError, match="sum to 1"):
            splitter_component(2, shares=[0.5, 0.4])
        with pytest.raises(ModelError, match="shares for parallelism"):
            splitter_component(2, shares=[1.0])
        with pytest.raises(ModelError, match="non-negative"):
            splitter_component(2, shares=[1.5, -0.5])
        with pytest.raises(ModelError, match=">= 1"):
            splitter_component(0)


class TestSaturationPoints:
    def test_uniform_sp_scales_with_parallelism(self):
        assert splitter_component(1).saturation_point() == pytest.approx(11e6)
        assert splitter_component(3).saturation_point() == pytest.approx(33e6)

    def test_biased_sp_set_by_hottest_instance(self):
        model = splitter_component(2, shares=[0.75, 0.25])
        assert model.saturation_point() == pytest.approx(11e6 / 0.75)

    def test_saturation_throughput_counts_active_instances(self):
        model = splitter_component(2, shares=[1.0, 0.0])
        assert model.saturation_throughput() == pytest.approx(7.63 * 11e6)

    def test_unsaturable_component(self):
        instance = InstanceModel({"default": 2.0})
        model = ComponentModel("c", instance, 4)
        assert math.isinf(model.saturation_point())


class TestEquation9:
    """Parallelism scaling for shuffle / load-balanced connections."""

    def test_gamma_scaling(self):
        p3 = splitter_component(3)
        p6 = p3.with_parallelism(6)
        # Double the parallelism, double both SP and ST.
        assert p6.saturation_point() == pytest.approx(2 * p3.saturation_point())
        assert p6.saturation_throughput() == pytest.approx(
            2 * p3.saturation_throughput()
        )

    def test_p1_reduces_to_instance(self):
        p1 = splitter_component(1)
        instance = p1.instance
        for rate in (1e6, 5e6, 20e6):
            assert p1.output_rate(rate) == pytest.approx(
                instance.output_rate(rate)
            )

    def test_scaling_biased_component_requires_new_shares(self):
        biased = splitter_component(2, shares=[0.7, 0.3])
        with pytest.raises(ModelError, match="new_shares"):
            biased.with_parallelism(4)
        rescaled = biased.with_parallelism(4, new_shares=[0.25] * 4)
        assert rescaled.saturation_point() == pytest.approx(44e6)

    def test_linear_region_output_unchanged_by_parallelism(self):
        # Below everyone's SP the output rate only depends on alpha.
        p2 = splitter_component(2)
        p4 = p2.with_parallelism(4)
        assert p2.output_rate(10e6) == pytest.approx(p4.output_rate(10e6))


class TestEquation11:
    """Traffic scaling at fixed parallelism."""

    def test_beta_scaling_in_linear_region(self):
        model = splitter_component(3)
        base = model.output_rate(10e6)
        assert model.outputs_under_traffic_scale(10e6, 2.0) == pytest.approx(
            2 * base
        )

    def test_beta_scaling_clips_at_st(self):
        model = splitter_component(3)
        scaled = model.outputs_under_traffic_scale(20e6, 4.0)  # 80M >> SP
        assert scaled == pytest.approx(model.saturation_throughput())

    def test_beta_validation(self):
        with pytest.raises(ModelError):
            splitter_component(1).outputs_under_traffic_scale(1e6, -1.0)

    def test_biased_shares_clip_per_instance(self):
        model = splitter_component(2, shares=[0.8, 0.2])
        # beta pushes only the hot instance past SP.
        out = model.outputs_under_traffic_scale(10e6, 1.6)  # 16M total
        hot = min(0.8 * 16e6, 11e6)
        cold = 0.2 * 16e6
        assert out == pytest.approx(7.63 * (hot + cold))


class TestInverse:
    def test_uniform_inverse_round_trip(self):
        model = splitter_component(3)
        for rate in (1e6, 20e6, 32e6):
            output = model.output_rate(rate)
            assert model.required_source_rate(output) == pytest.approx(
                rate, rel=1e-6
            )

    def test_biased_inverse_round_trip(self):
        model = splitter_component(2, shares=[0.7, 0.3])
        for rate in (1e6, 12e6, 20e6):
            output = model.output_rate(rate)
            recovered = model.required_source_rate(output)
            assert model.output_rate(recovered) == pytest.approx(
                output, rel=1e-6
            )

    def test_inverse_of_infeasible_output(self):
        model = splitter_component(2)
        with pytest.raises(ModelError, match="cannot produce"):
            model.required_source_rate(model.saturation_throughput() * 1.01)

    def test_inverse_zero(self):
        assert splitter_component(2).required_source_rate(0.0) == 0.0


@given(
    parallelism=st.integers(min_value=1, max_value=12),
    rate=st.floats(min_value=0, max_value=2e8),
)
def test_property_component_output_bounded(parallelism, rate):
    model = splitter_component(parallelism)
    out = model.output_rate(rate)
    assert out <= model.saturation_throughput() * (1 + 1e-9)
    assert out <= 7.63 * rate * (1 + 1e-9)


@given(
    parallelism=st.integers(min_value=1, max_value=8),
    r1=st.floats(min_value=0, max_value=1e8),
    r2=st.floats(min_value=0, max_value=1e8),
)
def test_property_component_output_monotone(parallelism, r1, r2):
    model = splitter_component(parallelism)
    lo, hi = sorted((r1, r2))
    assert model.output_rate(lo) <= model.output_rate(hi) + 1e-6


@given(
    shares=st.lists(
        st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=6
    )
)
def test_property_biased_sp_never_exceeds_uniform_sp(shares):
    shares = np.asarray(shares)
    shares = shares / shares.sum()
    p = shares.shape[0]
    biased = splitter_component(p, shares=list(shares))
    uniform = splitter_component(p)
    assert biased.saturation_point() <= uniform.saturation_point() * (1 + 1e-9)
