"""Plan sweep and guided autoscaling over generated topologies.

The sweep engine and guided scaler were developed against the fixed
Word Count deployment; these tests run them over the generator's
diamond and fan-in shapes, asserting the two properties the matrix
leans on: calibration artifacts are reused across sweeps, and the plan
ranking is stable across simulation seeds.
"""

from __future__ import annotations

import pytest

from repro.autoscaler import ModelGuidedScaler, SimulatedCluster
from repro.heron.simulation import HeronSimulation, SimulationConfig
from repro.heron.tracker import TopologyTracker
from repro.sweep import PlanSweepEngine
from repro.timeseries.store import MetricsStore
from repro.workloads import generate_workload


def bolts_of(topology):
    return [n for n, s in topology.components.items() if not s.is_spout]


def drive(workload, sim_seed: int):
    """Simulate three rate levels, return (store, tracker)."""
    store = MetricsStore()
    tracker = TopologyTracker()
    topology, packing, logic = workload.deployment()
    tracker.register(topology, packing)
    simulation = HeronSimulation(
        topology, packing, logic, store, SimulationConfig(seed=sim_seed)
    )
    for level in (0.4, 0.55, 0.7):
        workload.set_source_rates(
            simulation, level * workload.base_rate_tpm
        )
        simulation.run(3)
    return store, tracker


def plans_for(workload, width: int = 3):
    """A small grid scaling the first two bolts of the topology."""
    first, second = bolts_of(workload.topology)[:2]
    return [
        {first: a, second: b}
        for a in range(1, width + 1)
        for b in range(1, width + 1)
    ]


def ranking_of(payload):
    return [
        tuple(sorted(entry["plan"].items())) for entry in payload["ranked"]
    ]


@pytest.mark.parametrize("shape", ["diamond", "fanin"])
class TestSweepOnGeneratedShapes:
    def test_artifact_reused_across_sweeps(self, shape):
        workload = generate_workload(shape, seed=7)
        store, tracker = drive(workload, sim_seed=1)
        engine = PlanSweepEngine(tracker, store)
        plans = plans_for(workload)
        rate = 0.7 * workload.base_rate_tpm
        first = engine.sweep(workload.name, rate, plans)
        second = engine.sweep(workload.name, rate, plans)
        stats = engine.stats()
        assert stats["artifact_hits"] >= 1
        assert stats["artifact_misses"] == 1
        assert ranking_of(first) == ranking_of(second)

    def test_ranking_stable_across_sim_seeds(self, shape):
        workload = generate_workload(shape, seed=7)
        plans = plans_for(workload)
        rate = 0.7 * workload.base_rate_tpm
        rates = []
        for sim_seed in (1, 2):
            store, tracker = drive(workload, sim_seed)
            engine = PlanSweepEngine(tracker, store)
            payload = engine.sweep(workload.name, rate, plans)
            rates.append({
                tuple(sorted(entry["plan"].items())): entry["output_rate"]
                for entry in payload["ranked"]
            })
        # Different measurement noise, same model structure: any pair of
        # plans that is clearly ordered under one seed (>2% apart) must
        # keep that order under the other.  Exact ties — plans that hit
        # the same bottleneck — may legitimately swap positions.
        first, second = rates
        keys = list(first)
        inversions = [
            (p, q)
            for p in keys
            for q in keys
            if first[p] > 1.02 * first[q] and second[p] <= second[q]
        ]
        assert not inversions


@pytest.mark.parametrize("shape", ["diamond", "fanin"])
def test_guided_scaler_reuses_artifacts_on_generated_cluster(shape):
    workload = generate_workload(shape, seed=7)
    cluster = SimulatedCluster(
        build=workload.build_fn(), config=SimulationConfig(seed=5)
    )
    spouts = [
        n for n, s in workload.topology.components.items() if s.is_spout
    ]
    for level in (0.4, 0.55, 0.7):
        per_spout = level * workload.base_rate_tpm / len(spouts)
        for spout in spouts:
            cluster.set_source_rate(spout, per_spout)
        cluster.run(2)
    # Pin the SLO above what the current deployment delivers so the
    # scaler actually has to size (an already-met SLO short-circuits
    # before any modelling happens).
    current = cluster.recent_output_tpm(2)
    scaler = ModelGuidedScaler(
        cluster, slo_output_tpm=1.5 * current, observe_minutes=3
    )
    trace = scaler.run(source_tpm=1.5 * 0.7 * workload.base_rate_tpm)
    assert len(trace.rounds) == 2  # sized and verified, no retry loop
    stats = scaler._engine.stats()
    # The sizing pass calibrated through the engine exactly once...
    assert stats["artifact_misses"] == 1
    # ...and while the window is unchanged, further artifact requests
    # reuse it rather than re-reading metrics.
    first = scaler._engine.artifact(workload.name, since_seconds=0)
    second = scaler._engine.artifact(workload.name, since_seconds=0)
    assert first is second
    assert scaler._engine.stats()["artifact_hits"] >= 1
