"""Tests for the (shape x fault x traffic) scenario-matrix runner."""

from __future__ import annotations

import json

import pytest

from repro.workloads import (
    DEFAULT_THRESHOLDS,
    FAULTS,
    REPORT_SCHEMA,
    SHAPES,
    TRAFFICS,
    MatrixCell,
    build_report,
    cell_seed,
    default_grid,
    report_json,
    run_cell,
    run_matrix,
)

CELL_FIELDS = {
    "id", "shape", "fault", "traffic", "workload_seed", "cell_seed",
    "arrival_mape", "cpu_mape", "degraded_warnings", "trace_hash",
    "passed", "error", "topology",
}


class TestGrid:
    def test_full_grid_covers_every_combination(self):
        grid = default_grid()
        assert len(grid) == len(SHAPES) * len(FAULTS) * len(TRAFFICS)
        assert len({cell.id for cell in grid}) == len(grid)

    def test_prefix_covers_all_fault_kinds_by_sixteen(self):
        """--cells 16 must already exercise all four fault kinds."""
        prefix = default_grid()[:16]
        faults = {cell.fault for cell in prefix}
        assert {"crash", "straggler", "stmgr_stall",
                "metric_dropout"} <= faults
        shapes = {cell.shape for cell in prefix}
        assert set(SHAPES) == shapes

    def test_cell_seed_depends_on_everything(self):
        cell = MatrixCell("diamond", "crash", "steady")
        other = MatrixCell("diamond", "crash", "ramp")
        assert cell_seed(7, cell) == cell_seed(7, cell)
        assert cell_seed(7, cell) != cell_seed(8, cell)
        assert cell_seed(7, cell) != cell_seed(7, other)


class TestRunCell:
    def test_record_shape_and_finite_error(self):
        record = run_cell(
            MatrixCell("diamond", "straggler", "steady"), matrix_seed=7
        )
        assert set(record) == CELL_FIELDS
        assert record["error"] is None
        assert 0.0 <= record["arrival_mape"] < 1.0
        assert 0.0 <= record["cpu_mape"] < 1.0
        assert record["passed"] is True
        assert len(record["trace_hash"]) == 64

    def test_deterministic_per_seed(self):
        cell = MatrixCell("fanin", "metric_dropout", "ramp")
        first = run_cell(cell, matrix_seed=7)
        second = run_cell(cell, matrix_seed=7)
        assert first == second
        third = run_cell(cell, matrix_seed=8)
        assert third["trace_hash"] != first["trace_hash"]

    def test_threshold_gate_fails_cell(self):
        tight = {
            fault: {"arrival_mape": 1e-9, "cpu_mape": 1e-9}
            for fault in DEFAULT_THRESHOLDS
        }
        record = run_cell(
            MatrixCell("diamond", "none", "steady"),
            matrix_seed=7,
            thresholds=tight,
        )
        assert record["passed"] is False
        assert record["error"] is None


class TestRunMatrix:
    def test_report_schema_and_summary(self):
        report = run_matrix(seed=7, cells=4)
        assert report["schema"] == REPORT_SCHEMA
        assert report["seed"] == 7
        assert len(report["cells"]) == 4
        summary = report["summary"]
        assert summary["cells"] == 4
        assert summary["passed"] + summary["failed"] == 4
        assert summary["ok"] is (summary["failed"] == 0)
        assert set(report["thresholds"]) == set(DEFAULT_THRESHOLDS)

    def test_report_json_byte_identical_across_runs(self):
        first = report_json(run_matrix(seed=7, cells=4))
        second = report_json(run_matrix(seed=7, cells=4))
        assert first == second
        assert first.endswith("\n")
        parsed = json.loads(first)
        assert parsed["schema"] == REPORT_SCHEMA

    def test_cells_bounds_validated(self):
        with pytest.raises(Exception):
            run_matrix(seed=7, cells=0)
        with pytest.raises(Exception):
            run_matrix(seed=7, cells=10_000)

    def test_build_report_summarises_failures(self):
        cell = MatrixCell("diamond", "none", "steady")
        record = run_cell(cell, matrix_seed=7)
        failing = dict(record, passed=False)
        report = build_report(
            7, [record, failing], DEFAULT_THRESHOLDS, 9
        )
        assert report["summary"]["failed"] == 1
        assert report["summary"]["ok"] is False
