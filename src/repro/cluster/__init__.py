"""Horizontal scale-out: sharded serving with replicated metrics.

One Caladrius process is bounded by the GIL; the cluster tier scales
the service across processes while keeping the durability story intact:

* :mod:`repro.cluster.ring` — deterministic consistent-hash placement
  of topology ids onto shards;
* :mod:`repro.cluster.shard` — worker/follower process supervision:
  spawn, crash-detect, respawn onto the same data directory;
* :mod:`repro.cluster.router` — the HTTP front door: topology-keyed
  proxying, fleet-wide ``/healthz`` and ``/serving/stats`` aggregation,
  ring publication and resize;
* :mod:`repro.cluster.shipping` / :mod:`repro.cluster.follower` — WAL
  segment shipping from each shard to a read-only follower replica,
  replayed with the same CRC-framed codec crash recovery uses;
* :mod:`repro.cluster.client` — shard-aware client that routes
  data-plane calls directly to shard owners;
* :mod:`repro.cluster.epoch` — persistent per-shard writer generations
  backing the epoch-fencing protocol (no split-brain after failover);
* :mod:`repro.cluster.chaos` — seeded fault-injection campaigns against
  a live cluster with invariant checking (``caladrius chaos``).

``caladrius serve --shards N`` boots the whole tier; see
``docs/architecture.md`` ("Cluster tier" and "Failover & fencing") for
the consistency model.
"""

from repro.cluster.chaos import ChaosController, ChaosEvent, build_schedule
from repro.cluster.client import ClusterClient
from repro.cluster.epoch import EPOCH_HEADER, EpochStore, fencing_rejection
from repro.cluster.follower import FollowerApp, FollowerReplica
from repro.cluster.ring import DEFAULT_VIRTUAL_NODES, HashRing
from repro.cluster.router import RouterApp
from repro.cluster.shard import (
    FAILED,
    GAVE_UP,
    PROMOTING,
    READY,
    RESTARTING,
    STARTING,
    STOPPED,
    ClusterError,
    ShardHandle,
    ShardManager,
)
from repro.cluster.shipping import SegmentShipper

__all__ = [
    "ChaosController",
    "ChaosEvent",
    "ClusterClient",
    "ClusterError",
    "DEFAULT_VIRTUAL_NODES",
    "EPOCH_HEADER",
    "EpochStore",
    "FAILED",
    "FollowerApp",
    "FollowerReplica",
    "GAVE_UP",
    "HashRing",
    "PROMOTING",
    "READY",
    "RESTARTING",
    "RouterApp",
    "STARTING",
    "STOPPED",
    "SegmentShipper",
    "ShardHandle",
    "ShardManager",
    "build_schedule",
    "fencing_rejection",
]
