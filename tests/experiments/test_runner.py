"""Tests for the figure-reproduction runner."""

from __future__ import annotations

import pytest

from repro.experiments.runner import SECTIONS, main


class TestRunner:
    def test_subset_selection(self, capsys):
        code = main(["--quick", "--only", "fig10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "fig04" not in out

    def test_invalid_section_rejected(self):
        with pytest.raises(SystemExit):
            main(["--only", "fig99"])

    def test_sections_cover_all_figures(self):
        assert set(SECTIONS) == {
            "fig04-06", "fig07-08", "fig09", "fig10", "fig11-12", "matrix"
        }

    def test_quick_full_run_prints_every_group(self, capsys):
        code = main(["--quick"])
        assert code == 0
        out = capsys.readouterr().out
        for group in SECTIONS:
            assert f"=== {group} ===" in out
