"""Shared fixtures for the figure-reproduction benchmarks.

Each ``bench_figNN_*.py`` regenerates one figure of the paper's Section V
at full scale (set ``REPRO_BENCH_QUICK=1`` for a fast smoke run), prints
a paper-vs-measured table, writes it to ``benchmarks/results/`` and
benchmarks the *model-evaluation* step — the latency Caladrius's API tier
pays per request, which the paper flags as "up to several seconds".

The heavyweight simulation sweeps are session-scoped so experiments that
share a workload (Figs. 4-6 share the single-instance sweep; Figs. 7, 8,
11, 12 share the Splitter sweeps) only simulate it once.

Besides the figure benches, three infrastructure benchmarks gate CI:
``bench_serving_throughput`` (cache hit rate / warm speedup),
``bench_wal_overhead`` (durable-write throughput) and
``bench_plan_sweep`` (calibrate-once sweep speedup and byte-identity
against serial evaluation).  Each doubles as a standalone script with a
``--smoke`` flag and writes its table to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import figures

RESULTS_DIR = Path(__file__).parent / "results"


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


@pytest.fixture(scope="session")
def quick() -> bool:
    """True when REPRO_BENCH_QUICK requests a fast smoke run."""
    return _quick()


@pytest.fixture(scope="session")
def report():
    """Writer that prints a result table and stores it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, lines: list[str]) -> None:
        text = "\n".join(lines)
        print(f"\n=== {name} ===\n{text}")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return write


# ----------------------------------------------------------------------
# Shared sweeps (session scope: simulate once, reuse everywhere)
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def instance_sweep(quick):
    """Fig. 4-6 workload: Splitter p=1, source 1..20 M/min."""
    return figures.single_instance_sweep(quick=quick)


@pytest.fixture(scope="session")
def splitter_sweep3(quick):
    """Fig. 7/11 workload: Splitter p=3, source 2..68 M/min."""
    return figures.splitter_sweep(3, quick=quick)


@pytest.fixture(scope="session")
def splitter_sweep2(quick):
    """Fig. 8/12 validation workload at p=2."""
    return figures.splitter_sweep(2, quick=quick, seed=8)


@pytest.fixture(scope="session")
def splitter_sweep4(quick):
    """Fig. 8/12 validation workload at p=4."""
    return figures.splitter_sweep(4, quick=quick, seed=9)


@pytest.fixture(scope="session")
def fig07_result(quick, splitter_sweep3):
    return figures.fig07_component_model(quick=quick, sweep3=splitter_sweep3)


@pytest.fixture(scope="session")
def fig09_result(quick):
    return figures.fig09_counter_model(quick=quick)


@pytest.fixture(scope="session")
def fig11_result(quick, splitter_sweep3):
    return figures.fig11_cpu_model(quick=quick, sweep3=splitter_sweep3)


def fmt_m(value: float) -> str:
    """Format tuples/minute as millions."""
    import math

    if math.isinf(value):
        return "inf"
    return f"{value / 1e6:.2f}M"
