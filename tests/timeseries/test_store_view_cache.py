"""Repeated reads reuse frozen series views until a write invalidates."""

from __future__ import annotations

from repro.timeseries.store import MetricsStore

TAGS = {"topology": "t", "component": "c"}


def populated_store() -> MetricsStore:
    store = MetricsStore()
    for minute in range(5):
        store.write("execute-count", minute * 60, float(minute), TAGS)
    return store


class TestFrozenViewCache:
    def test_repeated_get_returns_same_object(self):
        store = populated_store()
        first = store.get("execute-count", TAGS)
        second = store.get("execute-count", TAGS)
        assert first is second

    def test_views_are_read_only(self):
        store = populated_store()
        series = store.get("execute-count", TAGS)
        assert not series.values.flags.writeable
        assert not series.timestamps.flags.writeable

    def test_write_invalidates_the_cached_view(self):
        store = populated_store()
        before = store.get("execute-count", TAGS)
        version = store.data_version("t")
        store.write("execute-count", 300, 5.0, TAGS)
        assert store.data_version("t") > version
        after = store.get("execute-count", TAGS)
        assert after is not before
        assert len(after) == len(before) + 1

    def test_query_reuses_the_same_frozen_views(self):
        store = populated_store()
        (first,) = store.query("execute-count", {"topology": "t"}).values()
        (second,) = store.query("execute-count", {"topology": "t"}).values()
        assert first is second

    def test_unrelated_series_keep_their_cache(self):
        store = populated_store()
        other_tags = {"topology": "t", "component": "other"}
        store.write("execute-count", 0, 1.0, other_tags)
        cached = store.get("execute-count", TAGS)
        store.write("execute-count", 60, 2.0, other_tags)
        assert store.get("execute-count", TAGS) is cached

    def test_retention_trim_invalidates(self):
        store = MetricsStore(retention_seconds=120)
        for minute in range(3):
            store.write("execute-count", minute * 60, float(minute), TAGS)
        before = store.get("execute-count", TAGS)
        store.write("execute-count", 300, 9.0, TAGS)  # trims old minutes
        after = store.get("execute-count", TAGS)
        assert after is not before
        assert int(after.timestamps[0]) >= 300 - 120
