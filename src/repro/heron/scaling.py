"""The ``heron update`` command: scaling a topology's parallelism.

DSPSs "provide scaling commands to update the parallelism of their
components ... Heron provides an update command" (paper Section V).  The
paper's headline use case runs that command in **dry-run mode**: the new
packing plan is computed, Caladrius predicts the expected throughput for
it, and nothing is deployed — cutting the plan→deploy→stabilize→analyze
loop down to a model evaluation.

:class:`ScalingCommand` implements both modes against the in-process
tracker.  Real deployment here means re-registering the topology with its
new plan; driving a new simulation from the updated plans is the caller's
choice (the experiment harness does exactly that to validate predictions).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import TopologyError
from repro.heron.packing import PackingPlan, RoundRobinPacking
from repro.heron.topology import LogicalTopology
from repro.heron.tracker import TopologyTracker, TrackedTopology

__all__ = ["UpdateResult", "ScalingCommand"]


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of an update command.

    ``deployed`` is False for dry runs; the proposed plans are returned
    either way so a performance model can evaluate them.
    """

    topology: LogicalTopology
    packing: PackingPlan
    changes: Mapping[str, int]
    dry_run: bool

    @property
    def deployed(self) -> bool:
        """True when the tracker now reflects the new plan."""
        return not self.dry_run


class ScalingCommand:
    """Executes parallelism updates against a tracker.

    Parameters
    ----------
    tracker:
        The metadata service holding running topologies.
    packer:
        Packing algorithm used to lay out updated topologies; defaults to
        Heron's round robin with the paper's per-instance resources.
    """

    def __init__(
        self,
        tracker: TopologyTracker,
        packer: RoundRobinPacking | None = None,
    ) -> None:
        self.tracker = tracker
        self.packer = packer or RoundRobinPacking()

    def update(
        self,
        name: str,
        changes: Mapping[str, int],
        dry_run: bool = False,
        cluster: str = "local",
        environ: str = "test",
        num_containers: int | None = None,
    ) -> UpdateResult:
        """Apply (or propose) new parallelisms for a running topology.

        Parameters
        ----------
        name:
            Registered topology name.
        changes:
            Component name → new parallelism.  Unmentioned components are
            unchanged.  Values must be >= 1; no-op changes are permitted.
        dry_run:
            When True, compute the updated logical topology and packing
            plan but leave the tracker untouched — the paper's
            fast-tuning mode.
        num_containers:
            Container count for the new plan.  Defaults to keeping the
            current plan's container count when the instances still fit,
            otherwise growing to the round-robin default density.
        """
        record = self.tracker.get(name, cluster, environ)
        self._validate_changes(record, changes)
        updated = record.topology.with_parallelism(changes)
        containers = self._choose_containers(record, updated, num_containers)
        packing = self.packer.pack(updated, containers)
        if not dry_run:
            self.tracker.update(name, updated, packing, cluster, environ)
        return UpdateResult(updated, packing, dict(changes), dry_run)

    def _validate_changes(
        self, record: TrackedTopology, changes: Mapping[str, int]
    ) -> None:
        if not changes:
            raise TopologyError("update requires at least one parallelism change")
        components = record.topology.components
        for component, parallelism in changes.items():
            if component not in components:
                raise TopologyError(
                    f"topology {record.name!r} has no component {component!r}"
                )
            if parallelism < 1:
                raise TopologyError(
                    f"parallelism for {component!r} must be >= 1, "
                    f"got {parallelism}"
                )

    def _choose_containers(
        self,
        record: TrackedTopology,
        updated: LogicalTopology,
        requested: int | None,
    ) -> int:
        if requested is not None:
            return requested
        current = record.packing.num_containers()
        if updated.total_instances() >= current:
            return current
        # Shrunk below one instance per container: drop empty containers.
        return updated.total_instances()
