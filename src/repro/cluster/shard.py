"""Shard process lifecycle: spawn, watch, restart, promote, stop.

A shard is one ``caladrius serve`` worker process bound to a private
data directory (and, when replication is on, one follower process its
WAL segments ship to).  :class:`ShardManager` owns the whole fleet:

* **spawn** — start follower (first, so the worker has somewhere to
  ship) then worker, parse the announce line for the ephemeral port,
  then probe ``/readyz`` until the worker admits traffic.  Every worker
  spawn bumps the shard's persistent epoch (see
  :mod:`repro.cluster.epoch`) so writes from superseded generations are
  fenced off;
* **supervise** — a monitor thread polls the processes; a worker that
  dies (``kill -9``, OOM, crash) is respawned on the *same* data
  directory, so WAL replay recovers every acknowledged write.  While it
  replays, the shard reports ``restarting`` and the router answers 503
  + ``Retry-After`` for its topologies.  Ready workers are also probed
  over HTTP — a live-but-wedged process (SIGSTOP, deadlock) is killed
  after ``unresponsive_timeout_seconds`` and takes the normal death
  path;
* **promote** — before respawning, the data directory is validated
  against the follower's applied LSN.  A directory that would recover
  *less* than its replica holds (wiped, truncated, corrupt checkpoint)
  triggers automatic promotion: the worker is fenced off, the
  follower's byte-mirror directory becomes the new primary, a fresh
  follower is spawned, and the epoch + ring version advance.  A
  crash-looping shard gets one promotion attempt too before the
  manager gives up (``gave_up``);
* **resize** — growing the fleet spawns new shard ids, shrinking drains
  and stops the highest ids; surviving ids keep their data directories
  and ring points;
* **stop** — SIGTERM every process (workers drain and checkpoint),
  escalating to SIGKILL after a bound.  A shutdown flag is checked
  before every respawn so a shard killed during shutdown is never
  respawned into a half-torn-down cluster.

Everything here is transport-free; the HTTP front door lives in
:mod:`repro.cluster.router`.
"""

from __future__ import annotations

import http.client
import json
import logging
import re
import signal
import subprocess
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any

from repro.api.client import CaladriusClient
from repro.cluster.epoch import EpochStore
from repro.durability.recovery import peek_recoverable_lsn
from repro.errors import DurabilityError, ReproError

__all__ = [
    "ShardManager",
    "ShardHandle",
    "ClusterError",
    "STARTING",
    "READY",
    "RESTARTING",
    "PROMOTING",
    "FAILED",
    "GAVE_UP",
    "STOPPED",
]

logger = logging.getLogger("repro.cluster.shard")

STARTING = "starting"
READY = "ready"
RESTARTING = "restarting"
PROMOTING = "promoting"
FAILED = "failed"
GAVE_UP = "gave_up"
STOPPED = "stopped"

_ANNOUNCE = re.compile(r"serving on ([\d.]+):(\d+)")
#: A worker that dies this quickly after becoming ready is crash-looping.
_MIN_HEALTHY_UPTIME = 2.0
#: Consecutive rapid deaths before the manager gives up on a shard.
_MAX_RAPID_RESTARTS = 5
#: Cadence of the liveness probe against ready workers.
_PROBE_INTERVAL = 1.0
#: Socket timeout of one liveness probe.
_PROBE_TIMEOUT = 1.0


class ClusterError(ReproError):
    """A cluster-tier operation failed."""


def _drain(stream: IO[str] | None, sink: list[str] | None = None) -> None:
    """Read a child's pipe to EOF so it never blocks on a full buffer."""
    if stream is None:
        return
    try:
        for line in stream:
            if sink is not None:
                sink.append(line)
                del sink[:-50]  # keep the tail for error reports
    except (OSError, ValueError):
        pass


@dataclass
class _Child:
    """One spawned process plus its parsed announce address."""

    process: subprocess.Popen
    port: int
    stderr_tail: list[str]


def _spawn_announced(
    argv: list[str],
    announce_timeout: float,
    env: dict[str, str] | None = None,
) -> _Child:
    """Start ``argv`` and wait for its ``… serving on host:port`` line."""
    process = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    stderr_tail: list[str] = []
    threading.Thread(
        target=_drain, args=(process.stderr, stderr_tail), daemon=True
    ).start()
    deadline = time.monotonic() + announce_timeout
    while time.monotonic() < deadline:
        assert process.stdout is not None
        line = process.stdout.readline()
        if line:
            match = _ANNOUNCE.search(line)
            if match:
                port = int(match.group(2))
                threading.Thread(
                    target=_drain, args=(process.stdout,), daemon=True
                ).start()
                return _Child(process, port, stderr_tail)
        elif process.poll() is not None:
            break
        else:
            time.sleep(0.01)
    tail = "".join(stderr_tail[-10:])
    if process.poll() is None:
        process.kill()
        process.wait(timeout=10)
    raise ClusterError(
        f"process {argv[:4]}… never announced a port within "
        f"{announce_timeout:.0f}s\n{tail}"
    )


def _terminate(
    process: subprocess.Popen, timeout: float, label: str
) -> int | None:
    """SIGTERM then (after ``timeout``) SIGKILL; returns the exit code."""
    if process.poll() is not None:
        return process.returncode
    try:
        process.send_signal(signal.SIGTERM)
    except (ProcessLookupError, OSError):
        return process.poll()
    try:
        return process.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        logger.warning("%s ignored SIGTERM for %.1fs; killing", label, timeout)
        process.kill()
        return process.wait(timeout=10)


def _kill(process: subprocess.Popen) -> None:
    """SIGKILL and reap; lands on SIGSTOPped processes too."""
    try:
        process.kill()
    except (ProcessLookupError, OSError):
        return
    try:
        process.wait(timeout=10)
    except subprocess.TimeoutExpired:  # pragma: no cover - kernel oddity
        pass


class ShardHandle:
    """Mutable supervision state for one shard (guarded by the manager)."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.state = STARTING
        self.worker: _Child | None = None
        self.follower: _Child | None = None
        self.restarts = 0
        self.rapid_deaths = 0
        self.promotions = 0
        self.crash_loop_promotions = 0
        self.epoch = 0
        self.became_ready: float | None = None
        self.last_probe_at = 0.0
        self.last_probe_ok: float | None = None
        self.last_error: str | None = None

    def status(self) -> dict[str, Any]:
        """JSON shape for ``/cluster/stats`` and ``/cluster/ring``."""
        payload: dict[str, Any] = {
            "shard_id": self.shard_id,
            "state": self.state,
            "restarts": self.restarts,
            "epoch": self.epoch,
            "promotions": self.promotions,
        }
        if self.rapid_deaths:
            payload["rapid_deaths"] = self.rapid_deaths
        if self.worker is not None:
            payload["port"] = self.worker.port
            payload["pid"] = self.worker.process.pid
        if self.follower is not None:
            payload["follower_port"] = self.follower.port
            payload["follower_pid"] = self.follower.process.pid
        if self.last_error:
            payload["last_error"] = self.last_error
        return payload


class ShardManager:
    """Spawns and supervises the worker (and follower) processes.

    Parameters
    ----------
    worker_argv:
        ``(shard_id, ship_to, epoch)`` → the worker's command line.
        ``ship_to`` is ``"host:port"`` of the shard's follower (or
        ``None``); ``epoch`` is the writer generation the worker must
        stamp and enforce.
    follower_argv:
        ``shard_id`` → the follower's command line, or ``None`` to run
        without replication.
    host:
        Address the workers bind (they announce their ephemeral port).
    ready_timeout / announce_timeout:
        Bounds on worker boot: announce covers process start + WAL
        replay, ready covers the ``/readyz`` probe after that.
    restart_backoff_seconds:
        Delay before respawning a dead worker.
    shard_dirs:
        ``shard_id`` → ``(worker_dir, replica_dir)``.  Required for
        automatic promotion: the manager validates the worker dir
        against the follower before respawning and swaps the
        directories when promoting.  ``None`` disables promotion (and
        validation) entirely.
    epoch_path:
        Where per-shard epochs persist (``None`` keeps them in memory,
        which forfeits fencing across full-cluster restarts).
    unresponsive_timeout_seconds:
        A ready worker whose ``/healthz`` has not answered for this
        long is SIGKILLed (and then recovered normally).  ``0`` turns
        the liveness probe off.
    """

    def __init__(
        self,
        worker_argv: Callable[[int, str | None, int], list[str]],
        follower_argv: Callable[[int], list[str]] | None = None,
        host: str = "127.0.0.1",
        ready_timeout: float = 60.0,
        announce_timeout: float = 120.0,
        restart_backoff_seconds: float = 0.2,
        poll_interval_seconds: float = 0.1,
        shard_dirs: Callable[[int], tuple[Path, Path]] | None = None,
        epoch_path: str | Path | None = None,
        unresponsive_timeout_seconds: float = 10.0,
    ) -> None:
        self._worker_argv = worker_argv
        self._follower_argv = follower_argv
        self.host = host
        self.ready_timeout = ready_timeout
        self.announce_timeout = announce_timeout
        self.restart_backoff_seconds = restart_backoff_seconds
        self.poll_interval_seconds = poll_interval_seconds
        self.unresponsive_timeout_seconds = unresponsive_timeout_seconds
        self._shard_dirs = shard_dirs
        self._epochs = EpochStore(epoch_path)
        self._lock = threading.RLock()
        self._handles: dict[int, ShardHandle] = {}
        self._version = 0
        self._stopping = threading.Event()
        self._monitor: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Fleet lifecycle
    # ------------------------------------------------------------------
    def start(self, shards: int) -> None:
        """Boot ``shards`` workers (and followers) and start supervising."""
        if shards < 1:
            raise ClusterError("a cluster needs at least one shard")
        with self._lock:
            if self._handles:
                raise ClusterError("cluster already started")
            for shard_id in range(shards):
                self._handles[shard_id] = ShardHandle(shard_id)
        for shard_id in range(shards):
            self._boot_shard(shard_id)
        with self._lock:
            self._version += 1
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="cluster-monitor", daemon=True
        )
        self._monitor.start()

    def _boot_shard(self, shard_id: int) -> None:
        """Start follower (if any) then worker, then wait for readiness.

        Bumps the shard's epoch before the worker spawns, so every
        generation — first boot, crash respawn, promotion — is uniquely
        fenced.  A no-op while the manager is stopping: a shard must
        never be (re)spawned into a half-torn-down cluster.
        """
        if self._stopping.is_set():
            return
        handle = self._handles[shard_id]
        try:
            ship_to = None
            if (
                handle.follower is not None
                and handle.follower.process.poll() is not None
            ):
                # A dead follower gets a fresh process on the same
                # replica dir; the 409 offset handshake resynchronises
                # the shipper onto whatever the dir already holds.
                handle.follower = None
            if self._follower_argv is not None and handle.follower is None:
                follower = _spawn_announced(
                    self._follower_argv(shard_id), self.announce_timeout
                )
                handle.follower = follower
            if handle.follower is not None:
                ship_to = f"{self.host}:{handle.follower.port}"
            epoch = self._epochs.bump(shard_id)
            with self._lock:
                handle.epoch = epoch
            child = _spawn_announced(
                self._worker_argv(shard_id, ship_to, epoch),
                self.announce_timeout,
            )
            with self._lock:
                handle.worker = child
            if self._stopping.is_set():
                self._stop_handle(handle, timeout=10.0)
                return
            client = CaladriusClient(
                self.host, child.port, timeout=5.0, retries=0
            )
            client.wait_ready(timeout=self.ready_timeout)
            client.close()
            with self._lock:
                handle.state = READY
                handle.became_ready = time.monotonic()
                handle.last_probe_at = 0.0
                handle.last_probe_ok = handle.became_ready
                handle.last_error = None
        except ReproError as exc:
            with self._lock:
                handle.state = FAILED
                handle.last_error = str(exc)
            raise

    def resize(self, shards: int) -> dict[str, Any]:
        """Grow or shrink the fleet; returns what changed.

        Surviving shard ids keep their processes, data directories and
        ring points, so consistent hashing moves only the topologies
        that must move.  No data migration happens here: a topology
        whose owner changes starts with an empty metrics window on the
        new owner (the old owner's data directory keeps the history).
        """
        if shards < 1:
            raise ClusterError("a cluster needs at least one shard")
        with self._lock:
            current = sorted(self._handles)
            added = [i for i in range(shards) if i not in self._handles]
            removed = [i for i in current if i >= shards]
            for shard_id in added:
                self._handles[shard_id] = ShardHandle(shard_id)
        for shard_id in added:
            self._boot_shard(shard_id)
        for shard_id in removed:
            with self._lock:
                handle = self._handles.pop(shard_id)
                handle.state = STOPPED
            self._stop_handle(handle, timeout=30.0)
        with self._lock:
            self._version += 1
        return {"added": added, "removed": removed, "shards": self.shard_ids()}

    def stop_all(self, timeout: float = 30.0) -> None:
        """SIGTERM the whole fleet (workers drain + checkpoint), then kill."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5)
            self._monitor = None
        with self._lock:
            handles = list(self._handles.values())
            for handle in handles:
                handle.state = STOPPED
        for handle in handles:
            self._stop_handle(handle, timeout)

    def _stop_handle(self, handle: ShardHandle, timeout: float) -> None:
        if handle.worker is not None:
            _terminate(
                handle.worker.process, timeout, f"shard-{handle.shard_id}"
            )
        if handle.follower is not None:
            _terminate(
                handle.follower.process,
                timeout,
                f"follower-{handle.shard_id}",
            )

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stopping.wait(self.poll_interval_seconds):
            self._probe_health()
            with self._lock:
                now = time.monotonic()
                for handle in self._handles.values():
                    if (
                        handle.state == READY
                        and handle.became_ready is not None
                        and now - handle.became_ready > _MIN_HEALTHY_UPTIME
                    ):
                        # The shard survived its post-promotion boot;
                        # a future crash loop earns a fresh attempt.
                        handle.crash_loop_promotions = 0
                dead = [
                    handle
                    for handle in self._handles.values()
                    if handle.state == READY
                    and handle.worker is not None
                    and handle.worker.process.poll() is not None
                ]
                for handle in dead:
                    uptime = (
                        now - handle.became_ready
                        if handle.became_ready is not None
                        else 0.0
                    )
                    handle.rapid_deaths = (
                        handle.rapid_deaths + 1
                        if uptime < _MIN_HEALTHY_UPTIME
                        else 0
                    )
                    handle.state = RESTARTING
                    handle.restarts += 1
                    handle.last_error = (
                        f"worker exited with {handle.worker.process.returncode}"
                    )
            for handle in dead:
                if self._stopping.is_set():
                    return
                if handle.rapid_deaths > _MAX_RAPID_RESTARTS:
                    self._give_up(handle)
                    continue
                logger.warning(
                    "shard %d died (%s); recovering",
                    handle.shard_id,
                    handle.last_error,
                )
                time.sleep(self.restart_backoff_seconds)
                if self._stopping.is_set():
                    return
                try:
                    self._recover_shard(handle)
                except ReproError:
                    logger.exception(
                        "shard %d failed to restart", handle.shard_id
                    )

    def _probe_health(self) -> None:
        """HTTP-probe ready workers; kill the ones wedged past the bound.

        ``kill -9`` handles processes that *die*; this handles the ones
        that merely stop answering (SIGSTOP, deadlock, runaway GC).
        SIGKILL lands on stopped processes too, after which the normal
        dead-worker path — validation, respawn or promotion — takes
        over.  A pause shorter than the bound resumes unharmed.
        """
        if self.unresponsive_timeout_seconds <= 0:
            return
        now = time.monotonic()
        with self._lock:
            targets = [
                handle
                for handle in self._handles.values()
                if handle.state == READY
                and handle.worker is not None
                and handle.worker.process.poll() is None
                and now - handle.last_probe_at >= _PROBE_INTERVAL
            ]
        for handle in targets:
            if self._stopping.is_set():
                return
            worker = handle.worker
            if worker is None:
                continue
            handle.last_probe_at = time.monotonic()
            if self._probe_once(worker.port):
                handle.last_probe_ok = time.monotonic()
                continue
            silent_for = (
                time.monotonic() - handle.last_probe_ok
                if handle.last_probe_ok is not None
                else 0.0
            )
            if silent_for > self.unresponsive_timeout_seconds:
                logger.warning(
                    "shard %d unresponsive for %.1fs; killing the worker",
                    handle.shard_id,
                    silent_for,
                )
                _kill(worker.process)

    def _probe_once(self, port: int) -> bool:
        try:
            connection = http.client.HTTPConnection(
                self.host, port, timeout=_PROBE_TIMEOUT
            )
            try:
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                response.read()
                return response.status == 200
            finally:
                connection.close()
        except (OSError, http.client.HTTPException):
            return False

    # ------------------------------------------------------------------
    # Recovery and promotion
    # ------------------------------------------------------------------
    def _recover_shard(self, handle: ShardHandle) -> None:
        """Respawn a dead worker — or promote its follower instead.

        The data directory is validated first: when it would recover
        less than the follower holds (or its checkpoint is corrupt),
        respawning would silently resurrect the shard on lost state, so
        the follower's mirror is promoted instead.
        """
        reason = self._promotion_reason(handle)
        if reason is not None:
            logger.warning(
                "shard %d: %s; promoting its follower",
                handle.shard_id,
                reason,
            )
            self._promote(handle)
            return
        self._boot_shard(handle.shard_id)
        with self._lock:
            self._version += 1

    def _promotion_reason(self, handle: ShardHandle) -> str | None:
        """Why the shard must be promoted rather than respawned, if so."""
        if self._shard_dirs is None:
            return None
        applied = self._follower_applied_lsn(handle)
        if applied is None:
            return None  # no live follower to compare against (or promote)
        worker_dir, _ = self._shard_dirs(handle.shard_id)
        try:
            recoverable = peek_recoverable_lsn(worker_dir)
        except DurabilityError as exc:
            return f"data dir failed recovery validation ({exc})"
        if recoverable < applied:
            return (
                f"data dir would recover lsn {recoverable} but the "
                f"follower holds lsn {applied}"
            )
        return None

    def _follower_applied_lsn(self, handle: ShardHandle) -> int | None:
        """The live follower's applied LSN, or ``None`` when unreachable."""
        follower = handle.follower
        if follower is None or follower.process.poll() is not None:
            return None
        try:
            connection = http.client.HTTPConnection(
                self.host, follower.port, timeout=2.0
            )
            try:
                connection.request("GET", "/replica/status")
                response = connection.getresponse()
                raw = response.read()
            finally:
                connection.close()
            if response.status != 200:
                return None
            return int(json.loads(raw.decode("utf8")).get("applied_lsn", 0))
        except (OSError, ValueError, http.client.HTTPException):
            return None

    def _promotable(self, handle: ShardHandle) -> bool:
        return (
            self._shard_dirs is not None
            and handle.follower is not None
            and handle.follower.process.poll() is None
        )

    def _give_up(self, handle: ShardHandle) -> None:
        """Crash loop: promote the follower once, else mark ``gave_up``."""
        if self._promotable(handle) and handle.crash_loop_promotions < 1:
            logger.error(
                "shard %d is crash-looping; promoting its follower",
                handle.shard_id,
            )
            with self._lock:
                handle.crash_loop_promotions += 1
            self._promote(handle)
            return
        with self._lock:
            handle.state = GAVE_UP
            handle.last_error = (
                "crash loop: worker died "
                f"{handle.rapid_deaths} times within "
                f"{_MIN_HEALTHY_UPTIME:.0f}s of becoming ready"
            )
            self._version += 1
        logger.error(
            "shard %d is crash-looping; giving up", handle.shard_id
        )

    def _promote(self, handle: ShardHandle) -> None:
        """Swap the follower's mirror in as the shard's primary.

        The dead (or wedged) worker is SIGKILLed and its directory
        renamed aside as ``…-fenced-e{epoch}`` — preserved for
        forensics, and the bumped epoch guarantees any zombie still
        holding it can never be mistaken for the owner.  The follower
        is drained, its byte-mirror becomes the worker directory, and
        the shard boots a new generation with a fresh, empty follower.
        """
        assert self._shard_dirs is not None
        shard_id = handle.shard_id
        old_epoch = self._epochs.current(shard_id)
        with self._lock:
            handle.state = PROMOTING
            handle.last_error = None
        try:
            if handle.worker is not None:
                _kill(handle.worker.process)
                handle.worker = None
            if handle.follower is not None:
                # SIGTERM lets the follower fsync + checkpoint its
                # replica dir before we take it over.
                _terminate(
                    handle.follower.process, 10.0, f"follower-{shard_id}"
                )
                handle.follower = None
            worker_dir, replica_dir = (
                Path(p) for p in self._shard_dirs(shard_id)
            )
            if worker_dir.exists():
                worker_dir.rename(
                    worker_dir.with_name(
                        f"{worker_dir.name}-fenced-e{old_epoch}"
                    )
                )
            replica_dir.rename(worker_dir)
            replica_dir.mkdir(parents=True, exist_ok=True)
            with self._lock:
                handle.rapid_deaths = 0
                handle.promotions += 1
            self._boot_shard(shard_id)
            with self._lock:
                self._version += 1
            logger.warning(
                "shard %d: follower promoted (epoch %d -> %d)",
                shard_id,
                old_epoch,
                self._epochs.current(shard_id),
            )
        except (OSError, ReproError) as exc:
            with self._lock:
                handle.state = FAILED
                handle.last_error = f"promotion failed: {exc}"
                self._version += 1
            logger.exception("shard %d promotion failed", shard_id)

    # ------------------------------------------------------------------
    # Introspection (the router reads these)
    # ------------------------------------------------------------------
    def shard_ids(self) -> list[int]:
        """Current member ids (the ring is built from these)."""
        with self._lock:
            return sorted(self._handles)

    @property
    def version(self) -> int:
        """Bumped on membership, address or recovery changes."""
        with self._lock:
            return self._version

    def handle(self, shard_id: int) -> ShardHandle | None:
        with self._lock:
            return self._handles.get(shard_id)

    def address_of(self, shard_id: int) -> tuple[str, int] | None:
        """``(host, port)`` when the shard is ready, else ``None``."""
        with self._lock:
            handle = self._handles.get(shard_id)
            if (
                handle is None
                or handle.state != READY
                or handle.worker is None
            ):
                return None
            return self.host, handle.worker.port

    def follower_address_of(self, shard_id: int) -> tuple[str, int] | None:
        """``(host, port)`` of the shard's *live* follower, else ``None``.

        The router serves opted-in stale reads from here while the
        primary is restarting or promoting.
        """
        with self._lock:
            handle = self._handles.get(shard_id)
            if handle is None or handle.follower is None:
                return None
            if handle.follower.process.poll() is not None:
                return None
            return self.host, handle.follower.port

    def epoch_of(self, shard_id: int) -> int:
        """The shard's current writer-generation epoch."""
        return self._epochs.current(shard_id)

    def epochs(self) -> dict[int, int]:
        """Epochs of all current members (published in the ring)."""
        with self._lock:
            ids = list(self._handles)
        return {shard_id: self._epochs.current(shard_id) for shard_id in ids}

    def state_of(self, shard_id: int) -> str | None:
        with self._lock:
            handle = self._handles.get(shard_id)
            return None if handle is None else handle.state

    def all_ready(self) -> bool:
        with self._lock:
            return bool(self._handles) and all(
                h.state == READY for h in self._handles.values()
            )

    def statuses(self) -> list[dict[str, Any]]:
        with self._lock:
            return [
                self._handles[shard_id].status()
                for shard_id in sorted(self._handles)
            ]
