"""Tests for the reactive baseline and the model-guided scaler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autoscaler import (
    ModelGuidedScaler,
    ReactiveScaler,
    ScalingRound,
    ScalingTrace,
    SimulatedCluster,
)
from repro.errors import ModelError
from repro.heron.simulation import SimulationConfig
from repro.heron.wordcount import WordCountParams

M = 1e6
DEMAND = 40 * M
ALPHA = 7.635
SLO = 0.95 * ALPHA * DEMAND  # keep up with the words the demand implies


def undersized_cluster(seed: int) -> SimulatedCluster:
    """Splitter 2 / Counter 2 under a 40M demand, with a traffic ramp."""
    cluster = SimulatedCluster(
        word_count_params=WordCountParams(
            splitter_parallelism=2, counter_parallelism=2
        ),
        config=SimulationConfig(seed=seed),
    )
    for rate in np.arange(8 * M, DEMAND + 1, 8 * M):
        cluster.set_source_rate("sentence-spout", float(rate))
        cluster.run(2)
    return cluster


@pytest.fixture(scope="module")
def reactive_trace() -> ScalingTrace:
    cluster = undersized_cluster(seed=1)
    return ReactiveScaler(cluster, slo_output_tpm=SLO, observe_minutes=3).run()


@pytest.fixture(scope="module")
def guided_trace() -> ScalingTrace:
    cluster = undersized_cluster(seed=2)
    scaler = ModelGuidedScaler(cluster, slo_output_tpm=SLO, observe_minutes=3)
    return scaler.run(source_tpm=DEMAND)


class TestCluster:
    def test_redeploy_keeps_metric_history_continuous(self):
        cluster = SimulatedCluster(
            word_count_params=WordCountParams(
                splitter_parallelism=2, counter_parallelism=2
            )
        )
        cluster.set_source_rate("sentence-spout", 10 * M)
        cluster.run(2)
        first_end = cluster.now
        cluster.deploy({"splitter": 3})
        assert cluster.now == first_end
        cluster.run(2)
        series = cluster.store.aggregate(
            "execute-count",
            {"topology": "word-count", "component": "splitter"},
        )
        # Four continuous minutes across the redeployment.
        assert list(series.timestamps) == [0, 60, 120, 180]

    def test_redeploy_preserves_source_rate(self):
        cluster = SimulatedCluster(
            word_count_params=WordCountParams(
                splitter_parallelism=2, counter_parallelism=2
            )
        )
        cluster.set_source_rate("sentence-spout", 10 * M)
        cluster.deploy({"splitter": 3})
        cluster.run(2)
        out = cluster.recent_output_tpm(1)
        assert out == pytest.approx(ALPHA * 10 * M, rel=0.05)

    def test_tracker_follows_deployments(self):
        cluster = SimulatedCluster(
            word_count_params=WordCountParams(
                splitter_parallelism=2, counter_parallelism=2
            )
        )
        revision = cluster.tracker.get("word-count").revision
        cluster.deploy({"splitter": 4})
        record = cluster.tracker.get("word-count")
        assert record.revision > revision
        assert record.topology.parallelism("splitter") == 4

    def test_observation_windows(self):
        cluster = SimulatedCluster(
            word_count_params=WordCountParams(
                splitter_parallelism=1, counter_parallelism=2
            )
        )
        cluster.set_source_rate("sentence-spout", 14 * M)  # saturating
        cluster.run(3)
        assert cluster.recent_backpressure_ms(2) > 10_000
        per_component = cluster.component_backpressure_ms(2)
        assert per_component["splitter"] > per_component["counter"]


class TestReactiveScaler:
    def test_converges_to_slo(self, reactive_trace):
        assert reactive_trace.converged

    def test_takes_multiple_rounds(self, reactive_trace):
        """The paper's criticism: several rounds, several deployments."""
        assert len(reactive_trace.rounds) >= 4
        assert reactive_trace.deployments >= 3

    def test_scales_the_symptomatic_component(self, reactive_trace):
        first = reactive_trace.rounds[0]
        # The splitter throttles first in the undersized deployment.
        assert "splitter" in first.action

    def test_final_configuration_sized_for_demand(self, reactive_trace):
        final = reactive_trace.rounds[-1].parallelisms
        assert final["splitter"] >= 4  # ceil(40M / 11M)
        assert final["counter"] >= 5  # ceil(305M / 70M)

    def test_parameter_validation(self):
        cluster = SimulatedCluster(
            word_count_params=WordCountParams(
                splitter_parallelism=1, counter_parallelism=1
            )
        )
        with pytest.raises(ModelError):
            ReactiveScaler(cluster, slo_output_tpm=0)
        with pytest.raises(ModelError):
            ReactiveScaler(cluster, slo_output_tpm=1.0, observe_minutes=0)


class TestModelGuidedScaler:
    def test_converges_in_one_deployment(self, guided_trace):
        assert guided_trace.converged
        assert guided_trace.deployments == 1
        assert len(guided_trace.rounds) == 2

    def test_sizes_both_bottlenecks_at_once(self, guided_trace):
        final = guided_trace.rounds[-1].parallelisms
        assert final["splitter"] >= 4
        assert final["counter"] >= 5

    def test_noop_when_slo_already_met(self):
        cluster = SimulatedCluster(
            word_count_params=WordCountParams(
                splitter_parallelism=4, counter_parallelism=5
            ),
            config=SimulationConfig(seed=3),
        )
        cluster.set_source_rate("sentence-spout", 10 * M)
        cluster.run(2)
        scaler = ModelGuidedScaler(
            cluster, slo_output_tpm=0.9 * ALPHA * 10 * M, observe_minutes=3
        )
        trace = scaler.run(source_tpm=10 * M)
        assert trace.converged
        assert trace.deployments == 0
        assert "no scaling needed" in trace.rounds[0].action

    def test_parameter_validation(self):
        cluster = SimulatedCluster(
            word_count_params=WordCountParams(
                splitter_parallelism=1, counter_parallelism=1
            )
        )
        with pytest.raises(ModelError):
            ModelGuidedScaler(cluster, slo_output_tpm=-1)
        with pytest.raises(ModelError):
            ModelGuidedScaler(cluster, slo_output_tpm=1.0, headroom=0.5)
        scaler = ModelGuidedScaler(cluster, slo_output_tpm=1.0)
        with pytest.raises(ModelError):
            scaler.run(source_tpm=0)


class TestComparison:
    def test_guided_needs_fewer_deployments(self, reactive_trace, guided_trace):
        """The paper's headline: model-guided scaling collapses the
        plan->deploy->stabilize->analyze loop to one deployment."""
        assert guided_trace.deployments < reactive_trace.deployments
        assert len(guided_trace.rounds) < len(reactive_trace.rounds)

    def test_both_reach_the_same_slo(self, reactive_trace, guided_trace):
        assert reactive_trace.rounds[-1].output_tpm >= SLO
        assert guided_trace.rounds[-1].output_tpm >= SLO


class TestTraceTypes:
    def test_trace_summary(self):
        trace = ScalingTrace("s", 100.0)
        trace.rounds.append(
            ScalingRound(0, {"a": 1}, 50.0, 0.0, False, "scale")
        )
        trace.rounds.append(
            ScalingRound(1, {"a": 2}, 120.0, 0.0, True, "done")
        )
        assert trace.converged
        assert trace.deployments == 1
        assert trace.observe_minutes(3) == 6
        summary = trace.summary()
        assert summary["rounds"] == 2
        assert summary["final_parallelisms"] == {"a": 2}

    def test_empty_trace(self):
        trace = ScalingTrace("s", 100.0)
        assert not trace.converged
        assert trace.deployments == 0
