"""The paper's evaluation workload: the 3-stage Word Count topology.

Fig. 1 of the paper: a sentence spout feeds a Splitter bolt over shuffle
grouping; the Splitter splits sentences into words and feeds a Counter
bolt over fields grouping on the word.  The spout reads sentences from a
literary corpus (here the synthetic Gatsby substitute), so the Splitter's
I/O coefficient is the corpus's mean sentence length (~7.63).

Default rates are tuned to land near the paper's measurements:

* Splitter instance saturation point ≈ 11 M tuples/minute input
  (Fig. 4), hence ``capacity_tps`` ≈ 183,333;
* Counter component (p=3) saturation ≈ 210 M tuples/minute input
  (Fig. 9), hence per-instance ``capacity_tps`` ≈ 1.167 M;
* saturated Splitter instance CPU ≈ 1.15 cores (Figs. 11-12).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.heron.corpus import SyntheticCorpus
from repro.heron.groupings import FieldsGrouping, ShuffleGrouping
from repro.heron.packing import PackingPlan, Resources, RoundRobinPacking
from repro.heron.simulation import ComponentLogic, SpoutLogic
from repro.heron.topology import LogicalTopology, TopologyBuilder

__all__ = ["WordCountParams", "build_word_count"]

SPOUT = "sentence-spout"
SPLITTER = "splitter"
COUNTER = "counter"


@dataclass(frozen=True)
class WordCountParams:
    """Tunable parameters of the Word Count evaluation topology.

    Parallelisms default to the paper's Section V-A setup: spout 8 (fixed
    "unless mentioned otherwise"), Splitter and Counter as configured per
    experiment.
    """

    spout_parallelism: int = 8
    splitter_parallelism: int = 3
    counter_parallelism: int = 3
    corpus: SyntheticCorpus = field(default_factory=SyntheticCorpus)
    splitter_capacity_tps: float = 11.0e6 / 60.0
    counter_capacity_tps: float = 70.0e6 / 60.0
    sentence_bytes: float = 60.0
    word_bytes: float = 16.0
    splitter_worker_cores: float = 0.85
    splitter_gateway_cores_per_tuple: float = 1.8e-7
    counter_worker_cores: float = 0.85
    counter_gateway_cores_per_tuple: float = 1.2e-7
    capacity_noise: float = 0.015
    spout_fetch_multiplier: float = 10.0
    containers: int | None = None

    def num_containers(self) -> int:
        """Container count: explicit, or ~2 instances per container."""
        if self.containers is not None:
            return self.containers
        total = (
            self.spout_parallelism
            + self.splitter_parallelism
            + self.counter_parallelism
        )
        return -(-total // 2)


def build_word_count(
    params: WordCountParams | None = None,
) -> tuple[LogicalTopology, PackingPlan, dict[str, SpoutLogic | ComponentLogic]]:
    """Build the Word Count topology, its packing plan and its logic.

    Returns everything :class:`~repro.heron.simulation.HeronSimulation`
    needs.  The word stream out of the Splitter is fields-grouped on the
    ``word`` field using the corpus's word-frequency distribution, exactly
    as the real topology's routing would hash real words.
    """
    params = params or WordCountParams()
    builder = TopologyBuilder("word-count")
    builder.add_spout(SPOUT, params.spout_parallelism)
    builder.add_bolt(SPLITTER, params.splitter_parallelism)
    builder.add_bolt(COUNTER, params.counter_parallelism)
    builder.connect(SPOUT, SPLITTER, ShuffleGrouping())
    builder.connect(
        SPLITTER,
        COUNTER,
        FieldsGrouping(["word"], params.corpus.word_distribution()),
    )
    topology = builder.build()
    packing = RoundRobinPacking(Resources(cpu=1.0, ram_bytes=2 * 1024**3)).pack(
        topology, params.num_containers()
    )
    logic: dict[str, SpoutLogic | ComponentLogic] = {
        SPOUT: SpoutLogic(
            fetch_multiplier=params.spout_fetch_multiplier,
            alphas={"default": 1.0},
        ),
        SPLITTER: ComponentLogic(
            capacity_tps=params.splitter_capacity_tps,
            alphas={"default": params.corpus.words_per_sentence()},
            input_tuple_bytes=params.sentence_bytes,
            worker_cores=params.splitter_worker_cores,
            gateway_cores_per_tuple=params.splitter_gateway_cores_per_tuple,
            capacity_noise=params.capacity_noise,
        ),
        COUNTER: ComponentLogic(
            capacity_tps=params.counter_capacity_tps,
            alphas={},
            input_tuple_bytes=params.word_bytes,
            worker_cores=params.counter_worker_cores,
            gateway_cores_per_tuple=params.counter_gateway_cores_per_tuple,
            capacity_noise=params.capacity_noise,
        ),
    }
    return topology, packing, logic
