"""The component throughput model (paper Eq. 6-11).

A component's rate is the sum over its ``p`` instances (Eq. 6-7).  How
the component's source rate divides among instances depends on the
upstream grouping:

* **shuffle** (Eq. 8-9): every instance receives ``t/p``, so the
  component curve is the instance curve scaled by ``p``, and a new
  parallelism ``p' = gamma * p`` scales the curve by ``gamma``;
* **fields** (Eq. 10-11): instances receive shares given by the key
  distribution under ``hash % p``.  At fixed parallelism, scaling the
  source rate by ``beta`` scales each instance's input by ``beta`` (the
  paper's steady-bias assumption) — Eq. 11.  Changing parallelism
  re-hashes keys, so predictions either assume a load-balanced data set
  (Eq. 9 applies) or take a measured/known share vector for the new
  parallelism, the "customized key grouping" escape hatch the paper
  describes.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.core.instance_model import DEFAULT_STREAM, InstanceModel
from repro.errors import ModelError

__all__ = ["ComponentModel"]


class ComponentModel:
    """Throughput model of one component: ``p`` identical instances.

    Parameters
    ----------
    name:
        Component name (used in reports and chained predictions).
    instance:
        The per-instance model; all instances run the same code
        (Section IV-B2: "a component's instances have the same code").
    parallelism:
        Number of instances, ``p``.
    input_shares:
        Fraction of the component's source rate each instance receives.
        Defaults to uniform (shuffle grouping / unbiased fields
        grouping).  Must have length ``p`` and sum to 1.
    """

    def __init__(
        self,
        name: str,
        instance: InstanceModel,
        parallelism: int,
        input_shares: Sequence[float] | None = None,
    ) -> None:
        if parallelism < 1:
            raise ModelError("parallelism must be >= 1")
        self.name = name
        self.instance = instance
        self.parallelism = parallelism
        if input_shares is None:
            shares = np.full(parallelism, 1.0 / parallelism)
        else:
            shares = np.asarray(list(input_shares), dtype=np.float64)
            if shares.shape[0] != parallelism:
                raise ModelError(
                    f"{shares.shape[0]} shares for parallelism {parallelism}"
                )
            if np.any(shares < 0):
                raise ModelError("input shares must be non-negative")
            total = float(shares.sum())
            if not math.isclose(total, 1.0, rel_tol=1e-6):
                raise ModelError(f"input shares must sum to 1, got {total}")
        self.input_shares = shares

    # ------------------------------------------------------------------
    # Forward model (Eq. 6-7)
    # ------------------------------------------------------------------
    def instance_input_rates(self, source_rate: float) -> np.ndarray:
        """Eq. 6 split: per-instance source rates for a component rate."""
        if source_rate < 0:
            raise ModelError("source_rate must be non-negative")
        return self.input_shares * source_rate

    def processed_rate(self, source_rate: float) -> float:
        """Tuples processed per unit time across all instances."""
        rates = self.instance_input_rates(source_rate)
        return float(
            np.minimum(rates, self.instance.saturation_point).sum()
        )

    def output_rate(
        self, source_rate: float, stream: str = DEFAULT_STREAM
    ) -> float:
        """Eq. 7: summed instance outputs on one stream.

        Evaluated as one vectorized ``alpha * min(rates, SP)`` reduction
        so the plan-sweep batch kernel, which stacks many plans into one
        matrix and reduces along the instance axis, produces bitwise
        identical sums.
        """
        rates = self.instance_input_rates(source_rate)
        alpha = self.instance.alpha(stream)
        return float(
            (alpha * np.minimum(rates, self.instance.saturation_point)).sum()
        )

    def total_output_rate(self, source_rate: float) -> float:
        """Summed instance outputs over all streams."""
        rates = self.instance_input_rates(source_rate)
        alpha = self.instance.total_alpha()
        return float(
            (alpha * np.minimum(rates, self.instance.saturation_point)).sum()
        )

    # ------------------------------------------------------------------
    # Saturation
    # ------------------------------------------------------------------
    def saturation_point(self) -> float:
        """Source rate at which the first instance saturates.

        With uniform shares this is ``p * SP_i`` (the Eq. 9 inflection);
        with bias it is ``SP_i / max(share)`` — the hottest instance
        saturates first and triggers backpressure for the whole topology.
        """
        max_share = float(self.input_shares.max())
        if max_share == 0:
            return math.inf
        if math.isinf(self.instance.saturation_point):
            return math.inf
        return self.instance.saturation_point / max_share

    def saturation_throughput(self, stream: str = DEFAULT_STREAM) -> float:
        """Output rate once every instance is saturated.

        Instances with zero share never saturate (they also never emit),
        so this is ``alpha * SP`` summed over instances with traffic.
        """
        st = self.instance.saturation_throughput(stream)
        active = int(np.count_nonzero(self.input_shares))
        return st * active

    def is_saturated(self, source_rate: float) -> bool:
        """True when the hottest instance is at or past its SP."""
        return source_rate >= self.saturation_point()

    # ------------------------------------------------------------------
    # Inverse model
    # ------------------------------------------------------------------
    def required_source_rate(
        self, output_rate: float, stream: str = DEFAULT_STREAM
    ) -> float:
        """Source rate needed for a target output rate (Eq. 13 step).

        In the linear region this is exact.  Between the first instance
        saturating and full component saturation the curve is still
        monotonic, so the value is found by bisection; outputs beyond
        the component's saturation throughput raise.
        """
        if output_rate < 0:
            raise ModelError("output_rate must be non-negative")
        if output_rate == 0:
            return 0.0
        st_component = self.saturation_throughput(stream)
        if output_rate > st_component * (1 + 1e-9):
            raise ModelError(
                f"component {self.name!r} cannot produce {output_rate}; "
                f"its saturation throughput is {st_component}"
            )
        sp = self.saturation_point()
        alpha = self.instance.alpha(stream)
        if alpha == 0:
            raise ModelError(
                f"stream {stream!r} has alpha=0; only zero output is feasible"
            )
        # Uniform shares: closed form.
        if np.allclose(self.input_shares, self.input_shares[0]):
            return min(output_rate / alpha, sp)
        # Biased shares: the output curve is piecewise linear and
        # monotone in source rate; bisect on it.
        lo, hi = 0.0, sp if not math.isinf(sp) else output_rate / alpha
        while self.output_rate(hi, stream) < output_rate * (1 - 1e-12):
            hi *= 2.0
            if hi > 1e18:
                raise ModelError("failed to bracket the inverse")
        for _ in range(100):
            mid = (lo + hi) / 2.0
            if self.output_rate(mid, stream) < output_rate:
                lo = mid
            else:
                hi = mid
        return hi

    # ------------------------------------------------------------------
    # What-if derivations (Eq. 9 and Eq. 11)
    # ------------------------------------------------------------------
    def with_parallelism(
        self,
        new_parallelism: int,
        new_shares: Sequence[float] | None = None,
    ) -> "ComponentModel":
        """Eq. 9: the model under a different parallelism.

        With shuffle-grouped (or load-balanced fields-grouped) inputs the
        instance curve is reused and shares stay uniform — the paper's
        gamma-scaling of the observed component line.  For biased fields
        grouping the caller must supply ``new_shares`` measured or
        computed for the new parallelism (re-hashing is not invertible,
        Section IV-B2b).
        """
        if new_shares is None and not np.allclose(
            self.input_shares, self.input_shares[0]
        ):
            raise ModelError(
                f"component {self.name!r} has biased input shares; "
                "changing parallelism requires new_shares for the new "
                "instance count (hash re-assignment is not predictable)"
            )
        return ComponentModel(
            self.name, self.instance, new_parallelism, new_shares
        )

    def outputs_under_traffic_scale(
        self,
        observed_source_rate: float,
        beta: float,
        stream: str = DEFAULT_STREAM,
    ) -> float:
        """Eq. 11: output when the source traffic scales by ``beta``.

        Shares are assumed stable over time (the paper's steady-bias
        assumption), so each instance's input scales by ``beta`` and its
        output clips at its saturation throughput.
        """
        if beta < 0:
            raise ModelError("beta must be non-negative")
        return self.output_rate(observed_source_rate * beta, stream)

    def __repr__(self) -> str:
        return (
            f"ComponentModel({self.name!r}, p={self.parallelism}, "
            f"SP_i={self.instance.saturation_point:g})"
        )
